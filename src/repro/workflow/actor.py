"""Workflow actors: the unit of computation in the Kepler model."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional


class ActorError(Exception):
    """An actor fired with bad inputs or failed during execution."""


class Actor:
    """A computation with named input and output ports.

    Subclasses implement :meth:`fire`, receiving a dict keyed by input port
    and returning a dict keyed by output port.  ``params`` are static
    configuration recorded into provenance.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        params: Optional[Mapping[str, Any]] = None,
        cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None,
    ):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.params = dict(params or {})
        self._cost_model = cost_model
        if len(set(self.inputs)) != len(self.inputs):
            raise ActorError(f"actor {name!r}: duplicate input ports")
        if len(set(self.outputs)) != len(self.outputs):
            raise ActorError(f"actor {name!r}: duplicate output ports")

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        """Execute the actor.  Must return a value for every output port."""
        raise NotImplementedError

    def cost(self, inputs: Mapping[str, Any]) -> float:
        """Simulated execution time in seconds (for
        :class:`~repro.workflow.director.SimulatedDirector`)."""
        if self._cost_model is not None:
            return float(self._cost_model(inputs))
        return 0.0

    def _check_fire(self, inputs: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ports around a :meth:`fire` call (used by directors)."""
        missing = set(self.inputs) - set(inputs)
        if missing:
            raise ActorError(f"actor {self.name!r}: missing inputs {sorted(missing)}")
        try:
            produced = self.fire({k: inputs[k] for k in self.inputs})
        except ActorError:
            raise
        except Exception as exc:
            raise ActorError(f"actor {self.name!r} failed: {exc}") from exc
        produced = dict(produced or {})
        absent = set(self.outputs) - set(produced)
        if absent:
            raise ActorError(f"actor {self.name!r}: outputs not produced: {sorted(absent)}")
        return {k: produced[k] for k in self.outputs}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Actor {self.name} {list(self.inputs)}->{list(self.outputs)}>"


class FunctionActor(Actor):
    """Wrap a plain function as an actor.

    The function receives the input-port values as keyword arguments and
    returns either a dict keyed by output port, or — when there is exactly
    one output port — the bare value.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = ("out",),
        params: Optional[Mapping[str, Any]] = None,
        cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None,
    ):
        super().__init__(name, inputs, outputs, params, cost_model)
        self.fn = fn

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        result = self.fn(**inputs, **self.params)
        if isinstance(result, Mapping):
            return dict(result)
        if len(self.outputs) == 1:
            return {self.outputs[0]: result}
        raise ActorError(
            f"actor {self.name!r}: function returned {type(result).__name__}, "
            f"but {len(self.outputs)} output ports need a mapping"
        )
