"""Provenance: workflow firings recorded into the metadata repository.

    "Data from finished workflows stored and tagged in DB" — slide 12.

A :class:`ProvenanceRecorder` turns an :class:`ExecutionTrace` into the
chained processing records of slide 8: each actor firing becomes one
``METADATA N`` record on the dataset the workflow ran over, with the
graph's wiring expressed through the records' ``parent`` links (an actor's
parent is its last upstream actor in the trace).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.metadata.store import MetadataStore
from repro.workflow.director import ExecutionTrace
from repro.workflow.graph import WorkflowGraph


def _serialisable(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """Keep only JSON-friendly values; stringify the rest."""
    out: dict[str, Any] = {}
    for key, value in mapping.items():
        if isinstance(value, (str, int, float, bool, type(None))):
            out[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (str, int, float, bool, type(None))) for v in value
        ):
            out[key] = list(value)
        else:
            out[key] = repr(value)
    return out


class ProvenanceRecorder:
    """Writes workflow execution traces into a :class:`MetadataStore`."""

    def __init__(self, store: MetadataStore, tag_on_success: Optional[str] = "processed"):
        self.store = store
        self.tag_on_success = tag_on_success

    def record(
        self,
        dataset_id: str,
        graph: WorkflowGraph,
        trace: ExecutionTrace,
    ) -> list[str]:
        """Append the trace's firings as a chained processing history.

        Returns the new step ids, in firing order.  On a fully successful
        trace the dataset is additionally tagged (``tag_on_success``).
        """
        step_ids: dict[str, str] = {}  # actor name -> step_id
        created: list[str] = []
        for firing in trace.firings:
            # Parent: the upstream actor whose output feeds this one (first
            # wired input, which is the chain shape of the slide-8 figure).
            parent_step: Optional[str] = None
            actor = graph.actors[firing.actor]
            for port in actor.inputs:
                conn = graph.upstream_of(firing.actor, port)
                if conn is not None and conn.src_actor in step_ids:
                    parent_step = step_ids[conn.src_actor]
                    break
            record = self.store.add_processing(
                dataset_id,
                name=f"{graph.name}/{firing.actor}",
                params=_serialisable({**actor.params, "workflow": graph.name}),
                results=_serialisable(firing.outputs),
                started=firing.started,
                finished=firing.finished,
                status="success" if firing.status == "success" else "failed",
                parent=parent_step,
            )
            step_ids[firing.actor] = record.step_id
            created.append(record.step_id)
        if trace.status == "success" and self.tag_on_success:
            self.store.tag(dataset_id, self.tag_on_success)
        return created
