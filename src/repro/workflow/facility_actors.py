"""Pre-built actors over the facility's glue layer.

The workflows that the DataBrowser triggers in production are not arbitrary
Python — they read data through ADAL, checksum it, run analyses, write
derived products back, and tag datasets.  This module packages those
recurring steps as reusable actors so that example and user workflows are
assembled, not re-implemented.

All actors are pure glue (no simulation time); attach ``cost_model``s when
running them under a :class:`~repro.workflow.director.SimulatedDirector`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.adal.api import AdalClient, checksum_bytes
from repro.metadata.store import MetadataStore
from repro.mapreduce.local import LocalJob, run_local
from repro.workflow.actor import Actor, ActorError


class AdalReadActor(Actor):
    """Read an object through ADAL: ``url`` -> ``data`` (bytes)."""

    def __init__(self, client: AdalClient, name: str = "adal-read",
                 verify: bool = False,
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name, inputs=("url",), outputs=("data",),
                         params={"verify": verify}, cost_model=cost_model)
        self.client = client

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        return {"data": self.client.get(inputs["url"], verify=self.params["verify"])}


class AdalWriteActor(Actor):
    """Write a derived product through ADAL: ``url, data`` -> ``info``."""

    def __init__(self, client: AdalClient, name: str = "adal-write",
                 overwrite: bool = True,
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name, inputs=("url", "data"), outputs=("info",),
                         params={"overwrite": overwrite}, cost_model=cost_model)
        self.client = client

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        info = self.client.put(inputs["url"], inputs["data"],
                               overwrite=self.params["overwrite"])
        return {"info": info}


class ChecksumActor(Actor):
    """Verify bytes against an expected checksum: raises on mismatch."""

    def __init__(self, name: str = "checksum",
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name, inputs=("data", "expected"), outputs=("checksum",),
                         cost_model=cost_model)

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        actual = checksum_bytes(inputs["data"])
        expected = inputs["expected"]
        if expected and actual != expected:
            raise ActorError(
                f"checksum mismatch: expected {expected[:12]}…, got {actual[:12]}…"
            )
        return {"checksum": actual}


class MetadataTagActor(Actor):
    """Tag a dataset in the repository: ``dataset_id`` -> ``tagged``."""

    def __init__(self, store: MetadataStore, tags: Sequence[str],
                 name: str = "tag",
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name, inputs=("dataset_id",), outputs=("tagged",),
                         params={"tags": list(tags)}, cost_model=cost_model)
        self.store = store

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        self.store.tag(inputs["dataset_id"], *self.params["tags"])
        return {"tagged": list(self.params["tags"])}


class LocalMapReduceActor(Actor):
    """Run a real :class:`LocalJob` inside a workflow: ``splits`` -> ``output``.

    The job result's counters are exposed on the ``stats`` port so a
    downstream actor (or provenance) can record them.
    """

    def __init__(self, job: LocalJob, reducers: int = 4,
                 name: Optional[str] = None,
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name or f"mr:{job.name}", inputs=("splits",),
                         outputs=("output", "stats"),
                         params={"reducers": reducers, "job": job.name},
                         cost_model=cost_model)
        self.job = job
        self.reducers = reducers

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        result = run_local(self.job, inputs["splits"], reducers=self.reducers)
        stats = {
            "map_input_records": result.map_input_records,
            "map_output_records": result.map_output_records,
            "shuffle_records": result.shuffle_records,
            "reduce_output_records": result.reduce_output_records,
        }
        return {"output": result.output, "stats": stats}


class RegisterProductActor(Actor):
    """Register a derived data product as a new dataset with a processing
    lineage pointer back to its source: ``info, source_id`` -> ``dataset_id``."""

    def __init__(self, store: MetadataStore, project: str, basic_fn,
                 name: str = "register-product",
                 cost_model: Optional[Callable[[Mapping[str, Any]], float]] = None):
        super().__init__(name, inputs=("info", "source_id"), outputs=("dataset_id",),
                         params={"project": project}, cost_model=cost_model)
        self.store = store
        self.project = project
        self.basic_fn = basic_fn

    def fire(self, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        info = inputs["info"]
        source_id = inputs["source_id"]
        dataset_id = f"{source_id}::{self.name}"
        self.store.register_dataset(
            dataset_id=dataset_id,
            project=self.project,
            url=info.url,
            size=info.size,
            checksum=info.checksum,
            basic=self.basic_fn(inputs),
            tags={"derived"},
        )
        return {"dataset_id": dataset_id}
