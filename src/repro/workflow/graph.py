"""Workflow wiring: a validated DAG of actors.

Connections are ``(src_actor, src_port) -> (dst_actor, dst_port)``.  Each
input port has at most one writer; unconnected input ports must be supplied
as workflow inputs at run time; output ports may fan out freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.workflow.actor import Actor, ActorError


class PortError(ActorError):
    """Bad wiring: unknown port, double-connected input."""


class CycleError(ActorError):
    """The workflow graph is not a DAG."""


@dataclass(frozen=True)
class Connection:
    """One wire between two actor ports."""

    src_actor: str
    src_port: str
    dst_actor: str
    dst_port: str


class WorkflowGraph:
    """A named DAG of actors with port-level wiring."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self.actors: dict[str, Actor] = {}
        self.connections: list[Connection] = []
        self._input_writers: dict[tuple[str, str], Connection] = {}

    def add(self, actor: Actor) -> Actor:
        """Add an actor (names must be unique)."""
        if actor.name in self.actors:
            raise ActorError(f"duplicate actor name {actor.name!r}")
        self.actors[actor.name] = actor
        return actor

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> Connection:
        """Wire an output port to an input port."""
        if src not in self.actors:
            raise PortError(f"unknown source actor {src!r}")
        if dst not in self.actors:
            raise PortError(f"unknown destination actor {dst!r}")
        if src_port not in self.actors[src].outputs:
            raise PortError(f"{src!r} has no output port {src_port!r}")
        if dst_port not in self.actors[dst].inputs:
            raise PortError(f"{dst!r} has no input port {dst_port!r}")
        key = (dst, dst_port)
        if key in self._input_writers:
            raise PortError(f"input port {dst}.{dst_port} already connected")
        conn = Connection(src, src_port, dst, dst_port)
        self.connections.append(conn)
        self._input_writers[key] = conn
        return conn

    # -- analysis ------------------------------------------------------------
    def free_inputs(self) -> list[tuple[str, str]]:
        """Input ports with no upstream writer — the workflow's inputs."""
        out = []
        for actor in self.actors.values():
            for port in actor.inputs:
                if (actor.name, port) not in self._input_writers:
                    out.append((actor.name, port))
        return out

    def _digraph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.actors)
        for conn in self.connections:
            g.add_edge(conn.src_actor, conn.dst_actor)
        return g

    def validate(self) -> None:
        """Raise :class:`CycleError` unless the wiring is a DAG."""
        g = self._digraph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise CycleError(f"workflow {self.name!r} has a cycle: {cycle}")

    def topo_order(self) -> list[str]:
        """Deterministic topological order of actor names."""
        self.validate()
        return list(nx.lexicographical_topological_sort(self._digraph()))

    def waves(self) -> list[list[str]]:
        """Actors grouped into dependency waves (each wave's actors are
        mutually independent — what :class:`DataflowDirector` parallelises)."""
        self.validate()
        return [sorted(wave) for wave in nx.topological_generations(self._digraph())]

    def upstream_of(self, actor: str, port: str) -> Connection | None:
        """The connection feeding an input port, if any."""
        return self._input_writers.get((actor, port))

    def __len__(self) -> int:
        return len(self.actors)
