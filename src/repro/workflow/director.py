"""Directors: execution semantics for a :class:`WorkflowGraph`.

Kepler separates *what* a workflow computes (the actor graph) from *how* it
executes (the director).  Three directors are provided:

:class:`SequentialDirector`
    Fires actors one at a time in topological order — simple and fully
    deterministic.
:class:`DataflowDirector`
    Fires dependency *waves*; actors within a wave are independent.  Results
    are identical to sequential execution (actors are pure w.r.t. ports);
    the wave structure is also what the simulated director parallelises.
:class:`SimulatedDirector`
    Executes the graph inside a DES: each actor still *really fires* (its
    Python side effects happen), but consumes ``actor.cost(inputs)``
    simulated seconds, and waves run concurrently in simulated time.  Used
    to measure workflow-automation throughput in E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Optional

from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.simkit.rand import RandomSource
from repro.workflow.actor import ActorError
from repro.workflow.graph import WorkflowGraph


@dataclass
class FiringRecord:
    """Provenance of one actor firing."""

    actor: str
    started: float
    finished: float
    status: str  # "success" | "failed" | "retried"
    inputs: dict[str, Any] = field(default_factory=dict)
    outputs: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: 1-based firing attempt this record describes (retries increment it).
    attempt: int = 1


@dataclass
class ExecutionTrace:
    """Full record of one workflow run."""

    workflow: str
    started: float
    finished: float
    status: str
    firings: list[FiringRecord] = field(default_factory=list)
    outputs: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Total failed firings that were retried (simulated director only).
    retries: int = 0

    @property
    def duration(self) -> float:
        """Run time (wall seconds for real directors, simulated seconds for
        the simulated one)."""
        return self.finished - self.started

    def output(self, actor: str, port: str) -> Any:
        """Convenience accessor for one actor output."""
        return self.outputs[actor][port]


class _BaseDirector:
    """Shared input-gathering logic."""

    def _gather_inputs(
        self,
        graph: WorkflowGraph,
        actor_name: str,
        produced: Mapping[str, dict[str, Any]],
        workflow_inputs: Mapping[tuple[str, str], Any],
    ) -> dict[str, Any]:
        actor = graph.actors[actor_name]
        inputs: dict[str, Any] = {}
        for port in actor.inputs:
            conn = graph.upstream_of(actor_name, port)
            if conn is not None:
                inputs[port] = produced[conn.src_actor][conn.src_port]
            elif (actor_name, port) in workflow_inputs:
                inputs[port] = workflow_inputs[(actor_name, port)]
            else:
                raise ActorError(
                    f"workflow input {actor_name}.{port} not connected and not supplied"
                )
        return inputs


class SequentialDirector(_BaseDirector):
    """Fire actors one at a time in topological order (wall clock)."""

    def run(
        self,
        graph: WorkflowGraph,
        inputs: Optional[Mapping[tuple[str, str], Any]] = None,
        clock: Optional[Any] = None,
    ) -> ExecutionTrace:
        """Execute the workflow; raises :class:`ActorError` on failure
        (after recording the failed firing in the trace attached to the
        exception as ``exc.trace``)."""
        import time

        tick = clock or time.monotonic
        workflow_inputs = dict(inputs or {})
        produced: dict[str, dict[str, Any]] = {}
        trace = ExecutionTrace(graph.name, tick(), 0.0, "running")
        for name in graph.topo_order():
            actor = graph.actors[name]
            actor_inputs = self._gather_inputs(graph, name, produced, workflow_inputs)
            start = tick()
            try:
                outputs = actor._check_fire(actor_inputs)
            except ActorError as exc:
                trace.firings.append(
                    FiringRecord(name, start, tick(), "failed", actor_inputs, {}, str(exc))
                )
                trace.finished = tick()
                trace.status = "failed"
                exc.trace = trace  # type: ignore[attr-defined]
                raise
            produced[name] = outputs
            trace.firings.append(FiringRecord(name, start, tick(), "success", actor_inputs, outputs))
        trace.outputs = produced
        trace.finished = tick()
        trace.status = "success"
        return trace


class DataflowDirector(SequentialDirector):
    """Fire dependency waves (results identical to sequential; the wave
    structure is recorded so callers can see the available parallelism)."""

    def run(
        self,
        graph: WorkflowGraph,
        inputs: Optional[Mapping[tuple[str, str], Any]] = None,
        clock: Optional[Any] = None,
    ) -> ExecutionTrace:
        import time

        tick = clock or time.monotonic
        workflow_inputs = dict(inputs or {})
        produced: dict[str, dict[str, Any]] = {}
        trace = ExecutionTrace(graph.name, tick(), 0.0, "running")
        for wave in graph.waves():
            for name in wave:
                actor = graph.actors[name]
                actor_inputs = self._gather_inputs(graph, name, produced, workflow_inputs)
                start = tick()
                try:
                    outputs = actor._check_fire(actor_inputs)
                except ActorError as exc:
                    trace.firings.append(
                        FiringRecord(name, start, tick(), "failed", actor_inputs, {}, str(exc))
                    )
                    trace.finished = tick()
                    trace.status = "failed"
                    exc.trace = trace  # type: ignore[attr-defined]
                    raise
                produced[name] = outputs
                trace.firings.append(
                    FiringRecord(name, start, tick(), "success", actor_inputs, outputs)
                )
        trace.outputs = produced
        trace.finished = tick()
        trace.status = "success"
        return trace


class SimulatedDirector(_BaseDirector):
    """Execute a workflow inside the DES with per-actor cost models.

    Actors in the same wave run concurrently in simulated time; each firing
    takes ``actor.cost(inputs)`` seconds.  The actor's Python ``fire`` still
    executes (its effects on the glue layer — metadata writes, tags — are
    real), so a simulated run leaves the same repository state as a real
    one.

    Parameters
    ----------
    sim:
        The simulator to run on.
    retry_policy:
        Optional bounded-retry policy for failed firings: a firing that
        raises :class:`~repro.workflow.actor.ActorError` is re-fired after
        the policy's backoff (slept on the simulator clock, re-paying the
        actor's cost), up to ``max_attempts`` total tries.  Each failed
        attempt is recorded in the trace as a ``"retried"`` firing; only
        exhaustion fails the workflow.  ``None`` keeps the fire-once seed
        behaviour.
    retry_rng:
        Random substream for backoff jitter (e.g.
        ``facility.resilience.rng.spawn("director")``).
    """

    def __init__(
        self,
        sim: Simulator,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[RandomSource] = None,
    ):
        self.sim = sim
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng

    def run(
        self,
        graph: WorkflowGraph,
        inputs: Optional[Mapping[tuple[str, str], Any]] = None,
    ) -> Event:
        """Start the workflow; the process-event yields an
        :class:`ExecutionTrace` in simulated time."""
        return self.sim.process(self._run(graph, dict(inputs or {})), name=f"wf:{graph.name}")

    def _run(
        self, graph: WorkflowGraph, workflow_inputs: dict[tuple[str, str], Any]
    ) -> Generator:
        produced: dict[str, dict[str, Any]] = {}
        trace = ExecutionTrace(graph.name, self.sim.now, 0.0, "running")
        for wave in graph.waves():
            procs = []
            for name in wave:
                actor_inputs = self._gather_inputs(graph, name, produced, workflow_inputs)
                procs.append(
                    self.sim.process(self._fire(graph, name, actor_inputs, produced, trace))
                )
            yield self.sim.all_of(procs)
        trace.outputs = produced
        trace.finished = self.sim.now
        trace.status = "success"
        return trace

    def _fire(
        self,
        graph: WorkflowGraph,
        name: str,
        actor_inputs: dict[str, Any],
        produced: dict[str, dict[str, Any]],
        trace: ExecutionTrace,
    ) -> Generator:
        actor = graph.actors[name]
        max_attempts = self.retry_policy.max_attempts if self.retry_policy else 1
        attempt = 1
        while True:
            start = self.sim.now
            cost = actor.cost(actor_inputs)
            if cost > 0:  # every attempt pays the firing cost again
                yield self.sim.timeout(cost)
            try:
                outputs = actor._check_fire(actor_inputs)
            except ActorError as exc:
                if attempt >= max_attempts:
                    raise  # exhausted -> process fails, as in the seed code
                trace.firings.append(
                    FiringRecord(name, start, self.sim.now, "retried",
                                 actor_inputs, {}, str(exc), attempt=attempt)
                )
                trace.retries += 1
                backoff = self.retry_policy.delay(attempt, self.retry_rng)
                if backoff > 0:
                    yield self.sim.timeout(backoff)
                attempt += 1
                continue
            produced[name] = outputs
            trace.firings.append(
                FiringRecord(name, start, self.sim.now, "success", actor_inputs,
                             outputs, attempt=attempt)
            )
            return
