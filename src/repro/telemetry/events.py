"""The structured event bus: typed facility events on the sim clock.

Discrete operational *occurrences* — chaos incidents, circuit-breaker
trips, dead-letter spills, scrub findings, trigger firings — don't fit
counters: operators need the *when/what/why* of each one.  The
:class:`EventBus` gives them a single spine: every publisher stamps the
simulated time, events land in a bounded ring buffer (old ones age out,
memory stays flat on long runs), per-kind totals survive ring eviction,
and consumers either query (:meth:`EventBus.events` / :meth:`tail`) or
subscribe with glob filters (``"breaker.*"``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Optional, Sequence

INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITIES = (INFO, WARNING, ERROR)


@dataclass(frozen=True)
class FacilityEvent:
    """One timestamped operational occurrence.

    ``kind`` is a dotted category (``"breaker.trip"``,
    ``"chaos.incident"``); ``subject`` names what it happened to (an
    array, a store, a dataset URL); ``data`` carries kind-specific
    details.
    """

    time: float
    kind: str
    subject: str = ""
    severity: str = INFO
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-able form."""
        return {
            "time": self.time,
            "kind": self.kind,
            "subject": self.subject,
            "severity": self.severity,
            "data": dict(self.data),
        }


class Subscription:
    """One registered callback with optional kind filters."""

    def __init__(self, bus: "EventBus", callback: Callable[[FacilityEvent], None],
                 kinds: Optional[Sequence[str]] = None):
        self._bus = bus
        self.callback = callback
        #: Glob patterns matched against the event kind (None = everything).
        self.kinds: Optional[tuple[str, ...]] = (
            tuple(kinds) if kinds is not None else None
        )
        self.delivered = 0

    def matches(self, kind: str) -> bool:
        """Whether an event of ``kind`` should be delivered here."""
        if self.kinds is None:
            return True
        return any(fnmatchcase(kind, pattern) for pattern in self.kinds)

    def cancel(self) -> None:
        """Detach this subscription from the bus."""
        self._bus._drop(self)


class EventBus:
    """Bounded ring buffer of :class:`FacilityEvent` plus subscriptions.

    Parameters
    ----------
    clock:
        Zero-argument callable giving the current (simulated) time; every
        published event is stamped with it.
    capacity:
        Ring-buffer retention; older events are evicted (per-kind counts
        are kept regardless).
    enabled:
        When ``False`` :meth:`publish` is a no-op — the telemetry-off
        ablation arm.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 4096, enabled: bool = True):
        if capacity < 1:
            raise ValueError("EventBus capacity must be >= 1")
        self._clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self.enabled = enabled
        self._ring: deque[FacilityEvent] = deque(maxlen=capacity)
        self._subscriptions: list[Subscription] = []
        self._counts: dict[str, int] = {}
        self._published = 0

    # -- publishing ---------------------------------------------------------
    def publish(self, kind: str, subject: str = "", severity: str = INFO,
                **data: Any) -> Optional[FacilityEvent]:
        """Stamp and record one event; deliver it to matching subscribers.

        Returns the event, or ``None`` when the bus is disabled.
        """
        if not self.enabled:
            return None
        if severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        event = FacilityEvent(
            time=self._clock(), kind=kind, subject=subject,
            severity=severity, data=data,
        )
        self._ring.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._published += 1
        if self._subscriptions:
            # Snapshot so a callback that (un)subscribes mid-delivery
            # doesn't perturb this fan-out; skipped when nobody listens.
            for subscription in list(self._subscriptions):
                if subscription.matches(kind):
                    subscription.delivered += 1
                    subscription.callback(event)
        return event

    # -- subscriptions ------------------------------------------------------
    def subscribe(self, callback: Callable[[FacilityEvent], None],
                  kinds: Optional[Sequence[str]] = None) -> Subscription:
        """Deliver future events (matching the ``kinds`` globs) to
        ``callback``; returns the cancellable :class:`Subscription`."""
        subscription = Subscription(self, callback, kinds)
        self._subscriptions.append(subscription)
        return subscription

    def _drop(self, subscription: Subscription) -> None:
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    # -- queries ------------------------------------------------------------
    def events(self, kind: Optional[str] = None, subject: Optional[str] = None,
               since: Optional[float] = None) -> list[FacilityEvent]:
        """Retained events, oldest first, optionally filtered.

        ``kind`` is a glob pattern; ``since`` keeps events with
        ``time >= since``.
        """
        out = []
        for event in self._ring:
            if kind is not None and not fnmatchcase(event.kind, kind):
                continue
            if subject is not None and event.subject != subject:
                continue
            if since is not None and event.time < since:
                continue
            out.append(event)
        return out

    def tail(self, n: int = 20, kind: Optional[str] = None) -> list[FacilityEvent]:
        """The last ``n`` (optionally kind-filtered) retained events."""
        matching = self.events(kind=kind)
        return matching[-n:] if n >= 0 else matching

    def counts(self) -> dict[str, int]:
        """Total events ever published, per kind (survives ring eviction)."""
        return dict(sorted(self._counts.items()))

    @property
    def published(self) -> int:
        """Total events ever published (retained or evicted)."""
        return self._published

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<EventBus retained={len(self)}/{self.capacity} "
                f"published={self._published}>")
