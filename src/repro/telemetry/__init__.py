"""The facility telemetry spine: one metrics registry, one event bus.

The LSDF is an *operations* paper — the facility lives on knowing its
ingest rates, transfer failures, HSM migrations and HDFS health.  Before
this package every subsystem kept private counters that
:mod:`repro.core.reporting` hand-assembled; now there is one spine:

:class:`MetricsRegistry`
    Labelled counters, gauges (direct or callback-backed), fixed-bucket
    histograms and exact-quantile summaries, registered under stable
    dotted names (``ingest.frames_total``,
    ``hsm.migrations_total{direction=...}``).
:class:`EventBus`
    Typed facility events with simulated timestamps — chaos incidents,
    breaker trips, dead-letter spills, scrub findings, trigger firings —
    kept in a bounded ring buffer with filterable subscriptions.
:class:`TelemetryHub`
    The per-simulator bundle of both (plus the sim clock); subsystems
    reach it via :meth:`TelemetryHub.for_sim` so a whole facility shares
    one spine without threading it through every constructor.
:class:`MonitorBridge`
    Sim-clock sampling of registry metrics into
    :class:`repro.simkit.monitor.TimeSeries` for plotting-style output.

Exports live in :mod:`repro.telemetry.export` (Prometheus text + JSON);
the CLI surfaces them as ``python -m repro.cli metrics`` / ``events``.
See ``docs/observability.md`` for naming conventions and examples.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    Summary,
)
from repro.telemetry.events import EventBus, FacilityEvent, Subscription
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.bridge import MonitorBridge
from repro.telemetry.export import to_json, to_prometheus

__all__ = [
    "Counter",
    "EventBus",
    "FacilityEvent",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "MonitorBridge",
    "Subscription",
    "Summary",
    "TelemetryHub",
    "to_json",
    "to_prometheus",
]
