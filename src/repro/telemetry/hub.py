"""The per-simulator telemetry bundle.

One :class:`TelemetryHub` per :class:`~repro.simkit.core.Simulator` holds
the facility's :class:`~repro.telemetry.metrics.MetricsRegistry`, its
:class:`~repro.telemetry.events.EventBus` and the shared sim clock.
Subsystems call :meth:`TelemetryHub.for_sim` in their constructors — the
hub is created on first use and cached on the simulator — so every
component of a facility lands on the same spine without the hub being
threaded through every constructor signature.

Components with no simulator of their own (the ADAL client, the trigger
engine) accept an explicit hub, falling back to a private unclocked one
so they stay usable standalone.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.bridge import MonitorBridge
from repro.telemetry.events import EventBus
from repro.telemetry.metrics import MetricsRegistry


class TelemetryHub:
    """Registry + bus + clock for one facility (or one standalone sim).

    Parameters
    ----------
    clock:
        Zero-argument current-time callable (``lambda: sim.now``); when
        ``None`` every event is stamped ``0.0``.
    enabled:
        Master switch: ``False`` makes every counter increment and event
        publication a no-op (the E15 overhead-ablation arm).  Callback
        gauges still read live state.
    event_capacity:
        Event-bus ring-buffer retention.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True, event_capacity: int = 4096):
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.bus = EventBus(clock=self.clock, capacity=event_capacity,
                            enabled=enabled)
        self.bridge = MonitorBridge(self)
        self._name_sequences: dict[str, int] = {}

    @classmethod
    def for_sim(cls, sim, enabled: Optional[bool] = None,
                event_capacity: int = 4096) -> "TelemetryHub":
        """The hub attached to ``sim``, created (and cached) on first use.

        ``enabled`` only takes effect at creation; later callers share
        whatever hub already exists.  The facility composition root calls
        this first, so its config decides.
        """
        hub = getattr(sim, "telemetry", None)
        if hub is None:
            hub = cls(
                clock=lambda: sim.now,
                enabled=True if enabled is None else enabled,
                event_capacity=event_capacity,
            )
            sim.telemetry = hub
        return hub

    def unique_name(self, prefix: str) -> str:
        """A deterministic per-hub sequence name (``prefix-0``, ``prefix-1``).

        Used to disambiguate label values when several instances of one
        component (e.g. ingest pipelines) share a facility.
        """
        n = self._name_sequences.get(prefix, 0)
        self._name_sequences[prefix] = n + 1
        return f"{prefix}-{n}"

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TelemetryHub enabled={self.enabled} "
                f"metrics={len(self.registry)} events={self.bus.published}>")
