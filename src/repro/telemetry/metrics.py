"""The metrics registry: labelled instruments under stable names.

A :class:`MetricsRegistry` owns one :class:`MetricFamily` per metric name;
a family owns one instrument per label set (get-or-create, Prometheus
style).  Four instrument kinds cover the reproduction's needs:

:class:`Counter`
    Monotonic counts and sums — API-compatible with
    :class:`repro.simkit.monitor.Counter` (``add``/``value``/``events``/
    ``rate``) so subsystem migration is a drop-in.
:class:`Gauge`
    A settable level, or a *callback* gauge reading live object state
    (pool fill, DLQ depth, breaker state) at collection time.
:class:`Histogram`
    Fixed-bucket distribution (cumulative bucket counts, sum, count).
:class:`Summary`
    Exact-sample distribution backed by
    :class:`repro.simkit.monitor.Tally` — keeps the mean/percentile
    queries the reports and benches already rely on.

A registry built with ``enabled=False`` turns every mutation into a no-op
(the E15 ablation arm); values stay readable as zeros and callback gauges
still reflect live state.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterable, Optional

from repro.simkit.monitor import Tally

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
SUMMARY = "summary"

_KINDS = (COUNTER, GAUGE, HISTOGRAM, SUMMARY)

#: Default duration buckets (seconds) — spans sub-ms op overheads to the
#: multi-hour horizons of tape recalls and scrub passes.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
    300.0, 1800.0, 7200.0, 43200.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricError(Exception):
    """Registry misuse: bad names, kind clashes, label-set mismatches."""


class Instrument:
    """One (family, label set) time series."""

    __slots__ = ("family", "labels", "_on")

    def __init__(self, family: "MetricFamily", labels: dict[str, str]):
        self.family = family
        self.labels = labels
        self._on = family.registry.enabled

    @property
    def name(self) -> str:
        """The owning family's metric name."""
        return self.family.name

    def _label_suffix(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f"{k}={v!r}" for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}{self._label_suffix()}>"


class Counter(Instrument):
    """A labelled monotonic accumulator."""

    __slots__ = ("value", "events")

    def __init__(self, family: "MetricFamily", labels: dict[str, str]):
        super().__init__(family, labels)
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be >= 0).

        The disabled check comes first so a disabled registry pays a single
        attribute test per call; negative increments still raise whether or
        not the registry is enabled.
        """
        if self._on:
            if amount < 0:
                raise MetricError(f"{self.name}: counter increments must be >= 0")
            self.value += amount
            self.events += 1
        elif amount < 0:
            raise MetricError(f"{self.name}: counter increments must be >= 0")

    def rate(self, elapsed: float) -> float:
        """Average accumulation rate over ``elapsed`` seconds."""
        return self.value / elapsed if elapsed > 0 else math.nan


class Gauge(Instrument):
    """A labelled level — directly set, or backed by a live callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self, family: "MetricFamily", labels: dict[str, str]):
        super().__init__(family, labels)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    @property
    def value(self) -> float:
        """Current level (callback gauges read live state)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def set(self, value: float) -> None:
        """Set the level (direct gauges only)."""
        if self._fn is not None:
            raise MetricError(f"{self.name}: cannot set a callback gauge")
        if self._on:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the level by ``delta`` (direct gauges only)."""
        if self._fn is not None:
            raise MetricError(f"{self.name}: cannot add to a callback gauge")
        if self._on:
            self._value += float(delta)

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Back this gauge with a zero-argument live-state callback."""
        self._fn = fn


class Histogram(Instrument):
    """Fixed-bucket distribution: per-bucket counts plus sum/count."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "_min", "_max")

    def __init__(self, family: "MetricFamily", labels: dict[str, str]):
        super().__init__(family, labels)
        self.buckets: tuple[float, ...] = family.buckets
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._on:
            return
        value = float(value)
        self.count += 1
        self.sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.sum / self.count if self.count else math.nan

    @property
    def min(self) -> float:
        """Smallest observation (NaN when empty)."""
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        """Largest observation (NaN when empty)."""
        return self._max if self.count else math.nan

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((math.inf, running + self.bucket_counts[-1]))
        return out


class Summary(Instrument):
    """Exact-sample distribution (Tally-backed): mean, std, percentiles."""

    __slots__ = ("_tally",)

    def __init__(self, family: "MetricFamily", labels: dict[str, str]):
        super().__init__(family, labels)
        self._tally = Tally(name=family.name)

    def record(self, value: float) -> None:
        """Add one sample."""
        if self._on:
            self._tally.record(value)

    # Pass-through statistics (the monitor.Tally read API).
    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._tally.count

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._tally.mean

    @property
    def std(self) -> float:
        """Sample standard deviation (NaN when empty)."""
        return self._tally.std

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty)."""
        return self._tally.min

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty)."""
        return self._tally.max

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return self._tally.total

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the samples (NaN when empty)."""
        return self._tally.percentile(q)

    def values(self):
        """All samples as an array (copy)."""
        return self._tally.values()


_INSTRUMENTS = {
    COUNTER: Counter,
    GAUGE: Gauge,
    HISTOGRAM: Histogram,
    SUMMARY: Summary,
}


class MetricFamily:
    """All instruments sharing one metric name (one per label set)."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str = "",
        unit: str = "",
        buckets: Optional[Iterable[float]] = None,
    ):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.unit = unit
        self.buckets: tuple[float, ...] = tuple(
            sorted(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        self._label_names: Optional[tuple[str, ...]] = None
        self._children: dict[tuple[tuple[str, str], ...], Instrument] = {}

    def child(self, labels: dict[str, str]) -> Instrument:
        """Get-or-create the instrument for one label set.

        Call sites should resolve their children once (at construction)
        and keep the handle.  Repeat lookups against an already-registered
        label-name set take a fast path with no per-call sorting or regex
        validation — the names were validated when the set was first seen,
        so only the values need keying.
        """
        names = self._label_names
        if names is not None and len(labels) == len(names):
            try:
                key = tuple((name, str(labels[name])) for name in names)
            except KeyError:
                pass  # different label names: full validation below
            else:
                child = self._children.get(key)
                if child is None:
                    child = _INSTRUMENTS[self.kind](self, dict(key))
                    self._children[key] = child
                return child
        names = tuple(sorted(labels))
        for label in names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"{self.name}: bad label name {label!r}")
        if self._label_names is None:
            self._label_names = names
        elif names != self._label_names:
            raise MetricError(
                f"{self.name}: label set {names} != registered {self._label_names}"
            )
        key = tuple((k, str(labels[k])) for k in names)
        child = self._children.get(key)
        if child is None:
            child = _INSTRUMENTS[self.kind](self, dict(key))
            self._children[key] = child
        return child

    def samples(self) -> list[tuple[dict[str, str], Instrument]]:
        """``(labels, instrument)`` rows in stable (sorted-label) order."""
        return [
            (dict(key), child) for key, child in sorted(self._children.items())
        ]

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricFamily {self.kind} {self.name} children={len(self)}>"


class MetricsRegistry:
    """One family per metric name; the facility's single source of numbers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}

    # -- registration -------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        unit: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> MetricFamily:
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise MetricError(
                    f"bad metric name {name!r} (want dotted lower_snake segments)"
                )
            family = MetricFamily(self, name, kind, help=help, unit=unit,
                                  buckets=buckets)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise MetricError(
                    f"{name}: registered as {family.kind}, requested {kind}"
                )
            if help and not family.help:
                family.help = help
        return family

    def counter(self, name: str, help: str = "", unit: str = "",
                **labels: str) -> Counter:
        """The counter for ``name``/``labels`` (created on first use)."""
        return self._family(name, COUNTER, help, unit).child(labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", unit: str = "",
              **labels: str) -> Gauge:
        """The direct gauge for ``name``/``labels``."""
        return self._family(name, GAUGE, help, unit).child(labels)  # type: ignore[return-value]

    def gauge_fn(self, name: str, fn: Callable[[], float], help: str = "",
                 unit: str = "", **labels: str) -> Gauge:
        """Register a callback gauge reading live state at collection time."""
        gauge = self.gauge(name, help=help, unit=unit, **labels)
        gauge.set_fn(fn)
        return gauge

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  help: str = "", unit: str = "", **labels: str) -> Histogram:
        """The fixed-bucket histogram for ``name``/``labels``."""
        return self._family(name, HISTOGRAM, help, unit, buckets=buckets).child(labels)  # type: ignore[return-value]

    def summary(self, name: str, help: str = "", unit: str = "",
                **labels: str) -> Summary:
        """The exact-sample summary for ``name``/``labels``."""
        return self._family(name, SUMMARY, help, unit).child(labels)  # type: ignore[return-value]

    # -- queries ------------------------------------------------------------
    def has(self, name: str) -> bool:
        """Whether any instrument is registered under ``name``."""
        return name in self._families

    def family(self, name: str) -> MetricFamily:
        """The family for ``name`` (raises :class:`MetricError` if absent)."""
        try:
            return self._families[name]
        except KeyError:
            raise MetricError(f"no metric registered under {name!r}") from None

    def families(self) -> list[MetricFamily]:
        """All families, name-sorted (the deterministic export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._families)

    def series(self, name: str, **labels: str) -> Optional[Instrument]:
        """The instrument for one exact label set (``None`` when absent)."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple((k, str(labels[k])) for k in sorted(labels))
        return family._children.get(key)

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Scalar value of one counter/gauge series (``default`` if absent)."""
        child = self.series(name, **labels)
        if child is None:
            return default
        return float(child.value)  # type: ignore[union-attr]

    @staticmethod
    def _scalar(family: MetricFamily, child: Instrument) -> float:
        if family.kind in (COUNTER, GAUGE):
            return float(child.value)  # type: ignore[union-attr]
        if family.kind == SUMMARY:
            return float(child.total)  # type: ignore[union-attr]
        return float(child.sum)  # type: ignore[union-attr]

    def total(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Sum over every series of ``name`` whose labels include ``labels``.

        Counters and gauges contribute their value, summaries and
        histograms their sample sum; ``default`` when nothing matches.
        The label filter lets views aggregate, e.g. all
        ``ingest.frames_total`` children regardless of ``agent``.
        """
        family = self._families.get(name)
        if family is None:
            return default
        want = {(k, str(v)) for k, v in labels.items()}
        out, matched = 0.0, False
        for key, child in family._children.items():
            if want <= set(key):
                out += self._scalar(family, child)
                matched = True
        return out if matched else default

    def count(self, name: str, **labels: str) -> int:
        """Observation count over matching series (0 when nothing matches).

        Summaries/histograms report samples recorded, counters report
        increment events; gauges always count as 0.
        """
        family = self._families.get(name)
        if family is None:
            return 0
        want = {(k, str(v)) for k, v in labels.items()}
        out = 0
        for key, child in family._children.items():
            if want <= set(key):
                if family.kind in (SUMMARY, HISTOGRAM):
                    out += child.count  # type: ignore[union-attr]
                elif family.kind == COUNTER:
                    out += child.events  # type: ignore[union-attr]
        return out

    def samples(self, name: str) -> list[tuple[dict[str, str], Instrument]]:
        """``(labels, instrument)`` rows of one family ([] if absent)."""
        family = self._families.get(name)
        return family.samples() if family is not None else []

    def snapshot(self) -> list[dict]:
        """JSON-able dump of every family and sample."""
        out: list[dict] = []
        for family in self.families():
            rows: list[dict] = []
            for labels, child in family.samples():
                row: dict = {"labels": labels}
                if family.kind in (COUNTER, GAUGE):
                    row["value"] = float(child.value)  # type: ignore[union-attr]
                    if family.kind == COUNTER:
                        row["events"] = child.events  # type: ignore[union-attr]
                elif family.kind == HISTOGRAM:
                    row.update(
                        count=child.count, sum=child.sum,  # type: ignore[union-attr]
                        buckets=[
                            {"le": "+Inf" if math.isinf(upper) else upper,
                             "count": n}
                            for upper, n in child.cumulative()  # type: ignore[union-attr]
                        ],
                    )
                else:  # summary
                    row.update(count=child.count)  # type: ignore[union-attr]
                    if child.count:  # type: ignore[union-attr]
                        row.update(
                            mean=child.mean, min=child.min, max=child.max,  # type: ignore[union-attr]
                            p50=child.percentile(50),  # type: ignore[union-attr]
                            p95=child.percentile(95),  # type: ignore[union-attr]
                            p99=child.percentile(99),  # type: ignore[union-attr]
                        )
                rows.append(row)
            out.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "unit": family.unit,
                "samples": rows,
            })
        return out

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricsRegistry families={len(self)} enabled={self.enabled}>"
