"""Telemetry exports: Prometheus-style text and JSON.

``to_prometheus`` renders a :class:`~repro.telemetry.metrics.MetricsRegistry`
in the Prometheus exposition text format (dotted metric names are mangled
to underscores, label values escaped, histogram buckets cumulative with a
``+Inf`` bound, summaries as quantile series).  ``to_json`` bundles the
registry snapshot with the event bus's per-kind totals and recent tail —
the machine-readable dashboard feed behind
``python -m repro.cli metrics --format json``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.telemetry.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.hub import TelemetryHub


def _mangle(name: str) -> str:
    """Dotted metric name -> Prometheus-legal name."""
    return name.replace(".", "_").replace("-", "_")


def _escape(value: str) -> str:
    """Escape a label value for the exposition format."""
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus exposition text format."""
    lines: list[str] = []
    for family in registry.families():
        name = _mangle(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        # Exposition kinds: exact-sample summaries render as "summary".
        lines.append(f"# TYPE {name} {family.kind}")
        for labels, child in family.samples():
            if family.kind in (COUNTER, GAUGE):
                lines.append(f"{name}{_labels(labels)} {_num(child.value)}")  # type: ignore[union-attr]
            elif family.kind == HISTOGRAM:
                for upper, cumulative in child.cumulative():  # type: ignore[union-attr]
                    le = "+Inf" if math.isinf(upper) else _num(upper)
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{name}_bucket{_labels(labels, le_label)} {cumulative}"
                    )
                lines.append(f"{name}_sum{_labels(labels)} {_num(child.sum)}")  # type: ignore[union-attr]
                lines.append(f"{name}_count{_labels(labels)} {child.count}")  # type: ignore[union-attr]
            else:  # summary
                if child.count:  # type: ignore[union-attr]
                    for q in (0.5, 0.95, 0.99):
                        value = child.percentile(q * 100)  # type: ignore[union-attr]
                        q_label = 'quantile="%g"' % q
                        lines.append(
                            f"{name}{_labels(labels, q_label)} {_num(value)}"
                        )
                lines.append(f"{name}_sum{_labels(labels)} {_num(child.total)}")  # type: ignore[union-attr]
                lines.append(f"{name}_count{_labels(labels)} {child.count}")  # type: ignore[union-attr]
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(hub: "TelemetryHub", events_tail: int = 50) -> dict:
    """JSON-able bundle: registry snapshot + event counts + recent events."""
    return {
        "time": hub.clock(),
        "enabled": hub.enabled,
        "metrics": hub.registry.snapshot(),
        "events": {
            "published": hub.bus.published,
            "retained": len(hub.bus),
            "counts": hub.bus.counts(),
            "recent": [event.as_dict() for event in hub.bus.tail(events_tail)],
        },
    }
