"""Sim-clock time-series sampling of registry metrics.

The registry answers "what is the value *now*"; experiments also want
"how did it evolve" (queue depths, pool fill, DLQ growth under chaos).
The :class:`MonitorBridge` closes the loop back to
:mod:`repro.simkit.monitor`: :meth:`MonitorBridge.track` spawns a
simulation process that samples one registry series every ``interval``
simulated seconds into a :class:`~repro.simkit.monitor.TimeSeries`.

Tracking is bounded by construction — a ``horizon`` (sim time to stop
at) or an explicit :meth:`TrackHandle.stop` — so an idle facility's
``sim.run()`` still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.simkit.monitor import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.hub import TelemetryHub


class TrackHandle:
    """Control handle for one running sampling loop."""

    def __init__(self, series: TimeSeries):
        self.series = series
        self._stopped = False

    def stop(self) -> None:
        """Ask the sampling loop to exit after the current tick."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped


class MonitorBridge:
    """Samples registry series into :class:`TimeSeries` on the sim clock."""

    def __init__(self, hub: "TelemetryHub"):
        self.hub = hub
        #: (metric name, sorted label items) -> recorded series.
        self.series: dict[tuple, TimeSeries] = {}

    def track(
        self,
        sim,
        name: str,
        interval: float,
        horizon: Optional[float] = None,
        **labels: str,
    ) -> TrackHandle:
        """Sample ``name``/``labels`` every ``interval`` sim-seconds.

        Sampling starts immediately and runs until ``horizon`` (absolute
        sim time) or :meth:`TrackHandle.stop`.  One of the two bounds is
        required unless the caller owns run-loop termination some other
        way — an unbounded tracker keeps the event queue non-empty.
        Returns the handle; the recorded series is ``handle.series``.
        """
        if interval <= 0:
            raise ValueError("track interval must be > 0")
        key = (name, tuple(sorted(labels.items())))
        series = self.series.get(key)
        if series is None:
            label = name if not labels else (
                name + "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            )
            series = TimeSeries(name=label)
            self.series[key] = series
        handle = TrackHandle(series)
        if self.hub.enabled:
            sim.process(self._sample_loop(sim, handle, name, labels, interval, horizon),
                        name=f"telemetry.track:{name}")
        return handle

    def series_for(self, name: str, **labels: str) -> Optional[TimeSeries]:
        """The recorded series for one tracked metric (None if untracked)."""
        return self.series.get((name, tuple(sorted(labels.items()))))

    def _sample_loop(self, sim, handle: TrackHandle, name: str,
                     labels: dict[str, str], interval: float,
                     horizon: Optional[float]) -> Generator:
        while not handle.stopped:
            handle.series.record(sim.now, self.hub.registry.value(name, **labels))
            if horizon is not None and sim.now + interval > horizon:
                return
            yield sim.timeout(interval)
