"""Facility-wide durability state: WAL'd catalog, scrubber, auditor, repair.

The :class:`DurabilityKit` is to durable faults what the
:class:`~repro.resilience.kit.ResilienceKit` is to transient ones: one
bundle per facility holding the durability archive (verified copies), the
:class:`~repro.durability.scrubber.IntegrityScrubber`, the
:class:`~repro.durability.audit.ConsistencyAuditor`, the
:class:`~repro.durability.repair.RepairPlanner`, the chaos hooks
(``silent_corruption`` injects through :meth:`corrupt_objects`), and the
mean-time-to-detect bookkeeping the Durability report section renders.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.adal.api import BackendRegistry
from repro.adal.backends.faulty import FaultyBackend
from repro.adal.backends.memory import MemoryBackend
from repro.durability.audit import CHECKSUM_MISMATCH, ConsistencyAuditor, Finding
from repro.durability.durable import DurableMetadataStore
from repro.durability.repair import RepairOutcome, RepairPlanner
from repro.durability.scrubber import IntegrityScrubber
from repro.metadata.store import MetadataStore
from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.simkit.rand import RandomSource
from repro.telemetry.events import ERROR
from repro.telemetry.hub import TelemetryHub


class DurabilityError(Exception):
    """Durability-layer usage errors."""


class DurabilityKit:
    """Shared durability state for one facility.

    Parameters
    ----------
    sim:
        The facility simulator.
    registry:
        ADAL backend registry (scrub/audit/repair target).
    metadata:
        The metadata repository — a
        :class:`~repro.durability.durable.DurableMetadataStore` gets
        crash/recover chaos support; a plain store degrades gracefully.
    stores:
        Store names under durability management.
    hdfs, hsm, dlq:
        Repair-path collaborators (HDFS re-replication, tape recall,
        dead-lettering).
    scrub_bandwidth, scrub_interval:
        Scrubber budget and daemon cadence.
    enabled:
        When ``False`` the scrubber never archives or repairs and the E14
        ablation arm measures the undefended facility.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: BackendRegistry,
        metadata: MetadataStore,
        stores: Sequence[str] = ("lsdf",),
        hdfs=None,
        hsm=None,
        dlq=None,
        replica_stores: Sequence[str] = (),
        scrub_bandwidth: float = 500e6,
        scrub_interval: float = 6 * 3600.0,
        enabled: bool = True,
    ):
        self.sim = sim
        self.registry = registry
        self.metadata = metadata
        self.stores = tuple(stores)
        self.enabled = enabled
        self.rng = sim.random.spawn("durability")
        #: Verified copies the scrubber lays down; the repair restore source.
        self.archive = MemoryBackend()
        # Scrub/repair run during exactly the incidents that make backends
        # flaky — every backend touch goes through a retry guard with its
        # own seeded jitter substream.
        self.retry_policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        self.planner = RepairPlanner(
            sim, registry, self.archive, replica_stores=replica_stores,
            hdfs=hdfs, hsm=hsm, dlq=dlq,
            retry_policy=self.retry_policy,
            retry_rng=self.rng.spawn("repair-retry"),
        )
        self.auditor = ConsistencyAuditor(
            metadata, registry, stores=self.stores,
            namenode=hdfs.namenode if hdfs is not None else None,
            clock=lambda: sim.now,
        )
        self.scrubber = IntegrityScrubber(
            sim, registry, metadata=metadata, stores=self.stores,
            bandwidth=scrub_bandwidth, interval=scrub_interval,
            archive=self.archive if enabled else None,
            planner=self.planner if enabled else None,
            on_detect=self._note_detection,
            retry_policy=self.retry_policy,
            retry_rng=self.rng.spawn("scrub-retry"),
        )
        # -- chaos / MTTD bookkeeping ------------------------------------------
        self._corrupted_at: dict[str, float] = {}
        self._hub = TelemetryHub.for_sim(sim)
        reg = self._hub.registry
        self.corruptions_injected = reg.counter(
            "durability.corruptions_injected_total",
            "Silent corruptions injected by chaos")
        self.corruptions_detected = reg.counter(
            "durability.corruptions_detected_total",
            "Checksum mismatches caught by scrub/audit")
        self.detect_latency = reg.summary(
            "durability.detect_latency_seconds",
            "Injection -> detection latency (MTTD)", unit="seconds")
        reg.gauge_fn("durability.enabled",
                     lambda: 1.0 if self.enabled else 0.0,
                     "Whether the durability layer is active")
        reg.gauge_fn("durability.audits_total",
                     lambda: float(self.auditor.audits_run),
                     "Consistency audits run")
        reg.gauge_fn("durability.unrepairable_total",
                     lambda: float(sum(1 for o in self.planner.outcomes
                                       if not o.repaired)),
                     "Findings no repair action could fix")
        reg.gauge_fn("durability.archive_objects",
                     lambda: float(len(self.archive.listdir(""))),
                     "Verified copies held by the durability archive")

    # -- chaos hooks ----------------------------------------------------------
    def corrupt_objects(
        self,
        store: str,
        count: int = 1,
        paths: Optional[Sequence[str]] = None,
        rng: Optional[RandomSource] = None,
    ) -> list[str]:
        """Flip bytes of stored objects *without touching any metadata*.

        The backend's own stat keeps reporting the original checksum — the
        corruption is silent, exactly what the scrubber exists to catch.
        Returns the corrupted paths.  Used by the ``silent_corruption``
        incident.
        """
        rng = rng or self.rng
        backend = self.registry.resolve(store)
        if isinstance(backend, FaultyBackend):
            backend = backend.inner  # corrupt the bytes, not the fault injector
        objects = getattr(backend, "_objects", None)
        if objects is None:
            raise DurabilityError(
                f"store {store!r} ({backend.kind}) does not support byte-level "
                "corruption injection"
            )
        if paths is None:
            candidates = sorted(p for p, (data, _info) in objects.items() if data)
            if not candidates:
                return []
            count = min(count, len(candidates))
            chosen = []
            for _ in range(count):
                pick = candidates[rng.integers(0, len(candidates))]
                candidates.remove(pick)
                chosen.append(pick)
        else:
            chosen = list(paths)
        corrupted = []
        for path in chosen:
            data, info = objects[path]
            if not data:
                continue
            flipped = bytearray(data)
            flipped[rng.integers(0, len(flipped))] ^= 0xFF
            objects[path] = (bytes(flipped), info)  # stat stays pristine
            url = f"adal://{store}/{path}"
            self._corrupted_at[url] = self.sim.now
            self.corruptions_injected.add(1)
            corrupted.append(path)
        return corrupted

    def _note_detection(self, finding: Finding) -> None:
        if finding.kind != CHECKSUM_MISMATCH:
            return  # dark/lost/under-replicated findings are not corruptions
        injected = self._corrupted_at.pop(finding.subject, None)
        self.corruptions_detected.add(1)
        if injected is not None:
            self.detect_latency.record(finding.detected_at - injected)
        self._hub.bus.publish(
            "durability.corruption_found", subject=finding.subject,
            severity=ERROR, detail=finding.detail,
            detect_latency=(finding.detected_at - injected
                            if injected is not None else None))

    # -- crash / recovery -------------------------------------------------------
    def crash_metadata(self, torn_tail_bytes: int = 0) -> None:
        """Kill the metadata repository (``metadata_crash`` incident)."""
        if isinstance(self.metadata, DurableMetadataStore):
            self.metadata.crash(torn_tail_bytes=torn_tail_bytes)
        else:  # no WAL to tear: the best a plain store can do is go down
            self.metadata.set_available(False)

    def recover_metadata(self) -> int:
        """Replay snapshot+WAL back into the same store object; returns
        records replayed (0 for a plain store, which merely comes back up)."""
        if isinstance(self.metadata, DurableMetadataStore):
            return self.metadata.recover()
        self.metadata.set_available(True)
        return 0

    # -- the full loop -----------------------------------------------------------
    def audit_and_repair(self, verify_content: bool = True) -> Event:
        """Audit, repair every finding, then re-audit (a sim process).

        The event's value is ``(final_report, outcomes)`` — the repairs
        executed and the post-repair audit proving (or disproving) a clean
        facility.
        """
        return self.sim.process(self._audit_and_repair(verify_content),
                                name="durability.audit")

    def _audit_and_repair(self, verify_content: bool) -> Generator:
        report = self.auditor.audit(verify_content=verify_content)
        for finding in report.findings:
            self._note_detection(finding)
        outcomes: list[RepairOutcome] = []
        if report.findings:
            outcomes = yield self.planner.execute(report)
        final = self.auditor.audit(verify_content=verify_content)
        return final, outcomes

    # -- reporting ------------------------------------------------------------
    def stats(self) -> dict:
        """Headline durability numbers (machine-readable)."""
        last_audit = self.auditor.last_report
        out = {
            "enabled": self.enabled,
            "scrub_passes": len(self.scrubber.passes),
            "scrub_objects": int(self.scrubber.objects_scanned.value),
            "scrub_bytes": self.scrubber.bytes_scanned.value,
            "scrub_coverage": self.scrubber.coverage(),
            "corruptions_injected": int(self.corruptions_injected.value),
            "corruptions_detected": int(self.corruptions_detected.value),
            "mean_time_to_detect": (
                self.detect_latency.mean if self.detect_latency.count else None
            ),
            "repairs": self.planner.counts(),
            "unrepairable": sum(
                1 for o in self.planner.outcomes if not o.repaired
            ),
            "audits_run": self.auditor.audits_run,
            "last_audit": last_audit.by_kind() if last_audit else None,
            "archive_objects": len(self.archive.listdir("")),
        }
        if isinstance(self.metadata, DurableMetadataStore):
            out["metadata"] = self.metadata.durability_stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DurabilityKit enabled={self.enabled} "
            f"scrub_passes={len(self.scrubber.passes)} "
            f"detected={int(self.corruptions_detected.value)}>"
        )
