"""The metadata write-ahead log: framed, checksummed, torn-tail tolerant.

Every mutating :class:`~repro.metadata.store.MetadataStore` operation is
appended to a :class:`WriteAheadLog` before it is applied, so a crash of the
(in-memory) repository loses nothing that was acknowledged: recovery loads
the last checkpoint snapshot and replays the log.

Record framing
--------------
Each record is laid out as::

    +---------+---------+------------------+
    | length  | crc32   | payload          |
    | 4 bytes | 4 bytes | ``length`` bytes |
    +---------+---------+------------------+

with little-endian unsigned header fields and a UTF-8 JSON payload
``{"seq": n, "op": name, "args": {...}}``.  The framing makes a *torn tail*
— a record that was mid-append when the process died — detectable: replay
stops at the first record whose header is incomplete, whose payload is
shorter than ``length``, or whose CRC does not match, and reports how many
bytes it discarded.  Everything before the tear is trusted (CRC-verified);
nothing after it is.

The log writes to a :class:`WalStorage` — the "durable medium" that survives
a simulated crash.  :class:`MemoryWalStorage` (default) keeps the bytes in a
bytearray; :class:`FileWalStorage` puts them in a real file pair
(``<path>`` + ``<path>.snap``) for cross-process durability.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional

_HEADER = struct.Struct("<II")  # (payload length, payload crc32)


class WalError(Exception):
    """Write-ahead-log usage errors (not torn tails — those are expected)."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    op: str
    args: dict

    def encode(self) -> bytes:
        """The framed on-medium form of this record."""
        payload = json.dumps(
            {"seq": self.seq, "op": self.op, "args": self.args},
            sort_keys=True,
        ).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "WalRecord":
        """Decode one CRC-verified payload."""
        data = json.loads(payload.decode("utf-8"))
        return cls(seq=int(data["seq"]), op=str(data["op"]), args=dict(data["args"]))


class WalStorage:
    """The durable medium behind a :class:`WriteAheadLog`.

    Subclasses persist two things: the log bytes and the latest checkpoint
    snapshot.  Both survive a :meth:`DurableMetadataStore.crash
    <repro.durability.durable.DurableMetadataStore.crash>` — only the
    in-memory store state is lost.
    """

    def read(self) -> bytes:
        """The full current log contents."""
        raise NotImplementedError

    def append(self, data: bytes) -> None:
        """Append bytes to the log."""
        raise NotImplementedError

    def truncate(self, nbytes: int) -> None:
        """Drop the last ``nbytes`` bytes of the log (torn-write chaos)."""
        raise NotImplementedError

    def checkpoint(self, snapshot: bytes) -> None:
        """Atomically store a snapshot and clear the log."""
        raise NotImplementedError

    def read_snapshot(self) -> Optional[bytes]:
        """The latest checkpoint snapshot, or None."""
        raise NotImplementedError


class MemoryWalStorage(WalStorage):
    """Log + snapshot in process memory (the default simulated medium)."""

    def __init__(self) -> None:
        self._log = bytearray()
        self._snapshot: Optional[bytes] = None

    def read(self) -> bytes:
        return bytes(self._log)

    def append(self, data: bytes) -> None:
        self._log.extend(data)

    def truncate(self, nbytes: int) -> None:
        if nbytes > 0:
            del self._log[max(0, len(self._log) - nbytes):]

    def checkpoint(self, snapshot: bytes) -> None:
        self._snapshot = bytes(snapshot)
        self._log.clear()

    def read_snapshot(self) -> Optional[bytes]:
        return self._snapshot


class FileWalStorage(WalStorage):
    """Log in ``<path>``, snapshot in ``<path>.snap`` (real durability)."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self.snapshot_path = self.path + ".snap"
        if not os.path.exists(self.path):
            with open(self.path, "wb"):
                pass

    def read(self) -> bytes:
        with open(self.path, "rb") as fh:
            return fh.read()

    def append(self, data: bytes) -> None:
        with open(self.path, "ab") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def truncate(self, nbytes: int) -> None:
        size = os.path.getsize(self.path)
        with open(self.path, "ab") as fh:
            fh.truncate(max(0, size - nbytes))

    def checkpoint(self, snapshot: bytes) -> None:
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(snapshot)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        with open(self.path, "wb"):
            pass  # log cleared only after the snapshot is durable

    def read_snapshot(self) -> Optional[bytes]:
        if not os.path.exists(self.snapshot_path):
            return None
        with open(self.snapshot_path, "rb") as fh:
            return fh.read()


@dataclass
class ReplayResult:
    """What :meth:`WriteAheadLog.replay` could trust."""

    records: list[WalRecord]
    #: Bytes after the first undecodable frame (torn tail / corruption).
    discarded_bytes: int

    @property
    def torn(self) -> bool:
        """Whether the log ended in an unreadable tail."""
        return self.discarded_bytes > 0


class WriteAheadLog:
    """Append-only, CRC-framed operation log with checkpoint snapshots."""

    def __init__(self, storage: Optional[WalStorage] = None):
        self.storage = storage or MemoryWalStorage()
        self._seq = self._last_seq_on_medium()
        #: Records appended since construction (monitoring only).
        self.appended = 0
        #: Batched flushes performed via :meth:`append_batch`.
        self.group_commits = 0

    def _last_seq_on_medium(self) -> int:
        result = self.replay()
        return result.records[-1].seq if result.records else 0

    # -- writing ------------------------------------------------------------
    def append(self, op: str, args: Mapping[str, Any]) -> WalRecord:
        """Frame and append one operation record; returns the record."""
        self._seq += 1
        record = WalRecord(seq=self._seq, op=op, args=dict(args))
        self.storage.append(record.encode())
        self.appended += 1
        return record

    def append_batch(
        self, ops: list[tuple[str, Mapping[str, Any]]]
    ) -> list[WalRecord]:
        """Frame N operation records and append them in ONE storage flush.

        The group-commit fast path: on a :class:`FileWalStorage` this is
        one ``write``+``fsync`` for the whole batch instead of one per
        record.  The bytes on the medium are identical to ``len(ops)``
        sequential :meth:`append` calls — same seqs, same framing — so
        replay (and crash-replay equivalence) is unchanged, and a torn
        tail still invalidates only the records past the tear.
        """
        if not ops:
            return []
        buffer = bytearray()
        records: list[WalRecord] = []
        for op, args in ops:
            self._seq += 1
            record = WalRecord(seq=self._seq, op=op, args=dict(args))
            records.append(record)
            buffer.extend(record.encode())
        self.storage.append(bytes(buffer))
        self.appended += len(records)
        self.group_commits += 1
        return records

    def checkpoint(self, snapshot: bytes) -> None:
        """Store a full-state snapshot and clear the log."""
        self.storage.checkpoint(snapshot)

    @property
    def snapshot(self) -> Optional[bytes]:
        """The latest checkpoint snapshot bytes (None before the first)."""
        return self.storage.read_snapshot()

    @property
    def size_bytes(self) -> int:
        """Current log length on the medium."""
        return len(self.storage.read())

    # -- chaos hooks ----------------------------------------------------------
    def torn_tail(self, nbytes: int) -> None:
        """Simulate a crash mid-append: drop the final ``nbytes`` bytes."""
        if nbytes < 0:
            raise WalError("torn_tail takes a non-negative byte count")
        self.storage.truncate(nbytes)

    # -- reading ---------------------------------------------------------------
    def replay(self) -> ReplayResult:
        """Decode every trustworthy record, stopping at the first bad frame.

        A record is trusted iff its header is complete, its payload is fully
        present, and the CRC matches.  The first violation ends the replay;
        the remaining bytes are reported as discarded (a torn tail, or
        corruption — either way nothing past it can be trusted).
        """
        data = self.storage.read()
        records: list[WalRecord] = []
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                break  # torn header
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            payload = data[start:start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or corrupt payload
            try:
                records.append(WalRecord.decode_payload(payload))
            except (ValueError, KeyError):
                break  # CRC passed but the payload is not a record
            offset = start + length
        return ReplayResult(records=records, discarded_bytes=len(data) - offset)
