"""A crash-durable metadata repository: WAL + snapshot + replay.

:class:`DurableMetadataStore` extends the in-memory
:class:`~repro.metadata.store.MetadataStore` so that every mutating
operation (``register_project``, ``register_dataset``, ``add_processing``,
``tag``/``untag``, ``index_field``) is appended to a
:class:`~repro.durability.wal.WriteAheadLog` *before* it is applied.  The
in-memory state can then be wiped at any moment — the ``metadata_crash``
chaos incident does exactly that, optionally tearing the final WAL record —
and :meth:`recover` reconstructs the exact pre-crash state from the last
checkpoint snapshot plus the trustworthy WAL prefix.

Replay is exact because every mutator is atomic: all validation happens
before the first state change, so an operation either fully applies or
leaves the store untouched.  A logged operation that *failed* when it was
first attempted (write-once violation, schema error) deterministically
fails again on replay and is skipped — recovering the same end state.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Optional

from repro.metadata.errors import (
    MetadataError,
    MetadataUnavailableError,
    WriteOnceError,
)
from repro.metadata.records import DatasetRecord, ProcessingRecord
from repro.metadata.schema import Schema
from repro.metadata.store import MetadataStore, ProjectInfo
from repro.durability.wal import WriteAheadLog

_SNAPSHOT_KIND = "lsdf-metadata-snapshot"


class DurableMetadataStore(MetadataStore):
    """A :class:`MetadataStore` whose mutations survive a process crash.

    Parameters
    ----------
    wal:
        The write-ahead log (default: a fresh in-memory one).
    snapshot_every:
        Automatically checkpoint after this many WAL appends (None = only
        on explicit :meth:`snapshot` calls).  Checkpointing bounds recovery
        replay time and WAL growth.
    """

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        snapshot_every: Optional[int] = None,
    ):
        super().__init__()
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.wal = wal or WriteAheadLog()
        self.snapshot_every = snapshot_every
        self._replaying = False
        self._appends_since_snapshot = 0
        #: Monitoring counters (rendered by the Durability report section).
        self.snapshots = 0
        self.recoveries = 0
        self.crashes = 0
        self.replayed_records = 0
        self.discarded_tail_bytes = 0

    # -- logging ------------------------------------------------------------
    def _log(self, op: str, args: Mapping[str, Any]) -> None:
        if self._replaying:
            return
        self.wal.append(op, args)
        self._appends_since_snapshot += 1

    def _maybe_snapshot(self) -> None:
        """Auto-checkpoint — called *after* a logged op has applied.

        Checkpointing before the apply would capture a state missing the op
        while simultaneously clearing its WAL record: acknowledged data
        silently lost.  Tested by the crash-at-snapshot-boundary cases.
        """
        if self._replaying:
            return
        if (
            self.snapshot_every is not None
            and self._appends_since_snapshot >= self.snapshot_every
        ):
            self.snapshot()

    # -- logged mutators ------------------------------------------------------
    def register_project(
        self,
        name: str,
        basic_schema: Schema,
        processing_schemas: Optional[Mapping[str, Schema]] = None,
    ) -> ProjectInfo:
        if name in self._projects:  # fail before logging: nothing will change
            raise MetadataError(f"project {name!r} already registered")
        self._log(
            "register_project",
            {
                "name": name,
                "basic_schema": basic_schema.to_dict(),
                "processing_schemas": {
                    step: schema.to_dict()
                    for step, schema in (processing_schemas or {}).items()
                },
            },
        )
        info = super().register_project(name, basic_schema, processing_schemas)
        self._maybe_snapshot()
        return info

    def register_dataset(
        self,
        dataset_id: str,
        project: str,
        url: str,
        size: int,
        checksum: str,
        basic: Mapping[str, Any],
        created: float = 0.0,
        tags: Iterable[str] = (),
    ) -> DatasetRecord:
        if not self._available:  # outage rejections are not WAL-worthy
            raise MetadataUnavailableError("metadata repository is down")
        self._log(
            "register_dataset",
            {
                "dataset_id": dataset_id,
                "project": project,
                "url": url,
                "size": int(size),
                "checksum": checksum,
                "basic": dict(basic),
                "created": float(created),
                "tags": sorted(tags),
            },
        )
        record = super().register_dataset(
            dataset_id, project, url, size, checksum, basic,
            created=created, tags=tags,
        )
        self._maybe_snapshot()
        return record

    def register_batch(
        self, items: list[Mapping[str, Any]]
    ) -> list[DatasetRecord]:
        """Register N datasets with ONE WAL flush (group commit).

        All-or-nothing: every item is validated — write-once, project
        existence, schema — *before* anything is logged or applied, so a
        bad item fails the whole batch with the store untouched (the wire
        service then retries items individually for per-op outcomes).

        The WAL receives ``len(items)`` ordinary ``register_dataset``
        records in one :meth:`~repro.durability.wal.WriteAheadLog.append_batch`
        flush; recovery replay is byte-for-byte identical to sequential
        registration, which the crash-replay equivalence test asserts.

        Each item is a kwargs mapping for :meth:`register_dataset`
        (``dataset_id``, ``project``, ``url``, ``size``, ``checksum``,
        ``basic``, optional ``created`` and ``tags``).
        """
        if not self._available:
            raise MetadataUnavailableError("metadata repository is down")
        seen: set[str] = set()
        for item in items:
            dataset_id = item["dataset_id"]
            if dataset_id in self._datasets or dataset_id in seen:
                raise WriteOnceError(
                    f"dataset {dataset_id!r} already registered")
            seen.add(dataset_id)
            info = self.project(item["project"])
            info.basic_schema.validate(item["basic"])
        if not self._replaying:
            self.wal.append_batch([
                (
                    "register_dataset",
                    {
                        "dataset_id": item["dataset_id"],
                        "project": item["project"],
                        "url": item["url"],
                        "size": int(item["size"]),
                        "checksum": item["checksum"],
                        "basic": dict(item["basic"]),
                        "created": float(item.get("created", 0.0)),
                        "tags": sorted(item.get("tags", ())),
                    },
                )
                for item in items
            ])
            self._appends_since_snapshot += len(items)
        records = [
            MetadataStore.register_dataset(
                self,
                item["dataset_id"], item["project"], item["url"],
                item["size"], item["checksum"], item["basic"],
                created=item.get("created", 0.0),
                tags=item.get("tags", ()),
            )
            for item in items
        ]
        self._maybe_snapshot()
        return records

    def add_processing(
        self,
        dataset_id: str,
        name: str,
        params: Mapping[str, Any],
        results: Mapping[str, Any],
        started: float,
        finished: float,
        status: str = "success",
        parent: Optional[str] = None,
    ) -> ProcessingRecord:
        self._log(
            "add_processing",
            {
                "dataset_id": dataset_id,
                "name": name,
                "params": dict(params),
                "results": dict(results),
                "started": float(started),
                "finished": float(finished),
                "status": status,
                "parent": parent,
            },
        )
        step = super().add_processing(
            dataset_id, name, params, results, started, finished,
            status=status, parent=parent,
        )
        self._maybe_snapshot()
        return step

    def tag(self, dataset_id: str, *tags: str) -> None:
        self._log("tag", {"dataset_id": dataset_id, "tags": list(tags)})
        super().tag(dataset_id, *tags)
        self._maybe_snapshot()

    def untag(self, dataset_id: str, *tags: str) -> None:
        self._log("untag", {"dataset_id": dataset_id, "tags": list(tags)})
        super().untag(dataset_id, *tags)
        self._maybe_snapshot()

    def index_field(self, name: str) -> None:
        if name in self._field_indexes:  # idempotent: re-logging is noise
            return
        self._log("index_field", {"name": name})
        super().index_field(name)
        self._maybe_snapshot()

    # -- snapshot / state ------------------------------------------------------
    def state_dict(self) -> dict:
        """The complete repository state in canonical JSON-ready form.

        Two stores are in the same state iff their ``state_dict``\\ s (and
        hence their :meth:`state_bytes`) are equal — the recovery tests
        compare these byte-for-byte.
        """
        return {
            "kind": _SNAPSHOT_KIND,
            "version": 1,
            "projects": [
                {
                    "name": info.name,
                    "basic_schema": info.basic_schema.to_dict(),
                    "processing_schemas": {
                        step: schema.to_dict()
                        for step, schema in info.processing_schemas.items()
                    },
                }
                for info in self._projects.values()
            ],
            "datasets": [record.to_dict() for record in self._datasets.values()],
            "indexed_fields": sorted(self._field_indexes),
            "step_seq": self._step_seq,
        }

    def state_bytes(self) -> bytes:
        """Canonical byte serialisation of :meth:`state_dict`."""
        return json.dumps(self.state_dict(), sort_keys=True).encode("utf-8")

    def snapshot(self) -> bytes:
        """Checkpoint: persist the full state, then clear the WAL."""
        data = self.state_bytes()
        self.wal.checkpoint(data)
        self._appends_since_snapshot = 0
        self.snapshots += 1
        return data

    def _load_state(self, data: bytes) -> None:
        state = json.loads(data.decode("utf-8"))
        if state.get("kind") != _SNAPSHOT_KIND:
            raise MetadataError("not a metadata snapshot")
        for proj in state["projects"]:
            super().register_project(
                proj["name"],
                Schema.from_dict(proj["basic_schema"]),
                {
                    step: Schema.from_dict(sdata)
                    for step, sdata in proj["processing_schemas"].items()
                },
            )
        for payload in state["datasets"]:
            record = DatasetRecord.from_dict(payload)
            self._datasets[record.dataset_id] = record
            self._url_index[record.url] = record.dataset_id
            self._projects[record.project].dataset_count += 1
            self._project_index.setdefault(record.project, set()).add(record.dataset_id)
            for tag in record.tags:
                self._tag_index.setdefault(tag, set()).add(record.dataset_id)
        self._step_seq = int(state["step_seq"])
        for name in state["indexed_fields"]:
            super().index_field(name)

    # -- crash / recovery -------------------------------------------------------
    def _wipe(self) -> None:
        """Drop all in-memory state (what a process death does)."""
        self._projects = {}
        self._datasets = {}
        self._tag_index = {}
        self._project_index = {}
        self._field_indexes = {}
        self._ordered_indexes = {}
        self._url_index = {}
        self._step_seq = 0

    def crash(self, torn_tail_bytes: int = 0) -> None:
        """Kill the in-memory store, optionally tearing the WAL tail.

        ``torn_tail_bytes`` models a record that was mid-append when the
        process died: the final bytes of the log vanish, leaving a frame
        that replay must (and does) reject.  The durable medium — WAL +
        snapshot — survives; everything else is gone and the store refuses
        operations until :meth:`recover` runs.
        """
        self._wipe()
        self._available = False
        self.crashes += 1
        if torn_tail_bytes:
            self.wal.torn_tail(torn_tail_bytes)

    def recover(self) -> int:
        """Rebuild state from snapshot + WAL; returns records replayed.

        Replays only the trustworthy WAL prefix (CRC-verified frames before
        the first tear).  Operations that failed when first attempted fail
        identically and are skipped.  The store comes back available.
        """
        self._wipe()
        self._available = True
        self._replaying = True
        try:
            snapshot = self.wal.snapshot
            if snapshot is not None:
                self._load_state(snapshot)
            result = self.wal.replay()
            for record in result.records:
                try:
                    self._apply(record.op, record.args)
                except (MetadataError, KeyError):
                    pass  # deterministic re-failure of an op that never applied
            self.discarded_tail_bytes += result.discarded_bytes
            self.replayed_records += len(result.records)
            self.recoveries += 1
            return len(result.records)
        finally:
            self._replaying = False

    def _apply(self, op: str, args: dict) -> None:
        if op == "register_project":
            super().register_project(
                args["name"],
                Schema.from_dict(args["basic_schema"]),
                {
                    step: Schema.from_dict(sdata)
                    for step, sdata in args["processing_schemas"].items()
                },
            )
        elif op == "register_dataset":
            super().register_dataset(
                args["dataset_id"], args["project"], args["url"], args["size"],
                args["checksum"], args["basic"], created=args["created"],
                tags=args["tags"],
            )
        elif op == "add_processing":
            super().add_processing(
                args["dataset_id"], args["name"], args["params"], args["results"],
                args["started"], args["finished"], status=args["status"],
                parent=args["parent"],
            )
        elif op == "tag":
            super().tag(args["dataset_id"], *args["tags"])
        elif op == "untag":
            super().untag(args["dataset_id"], *args["tags"])
        elif op == "index_field":
            super().index_field(args["name"])
        else:
            raise MetadataError(f"unknown WAL operation {op!r}")

    # -- reporting ------------------------------------------------------------
    def durability_stats(self) -> dict:
        """WAL / recovery counters for dashboards."""
        return {
            "wal_records": self.wal.appended,
            "wal_bytes": self.wal.size_bytes,
            "snapshots": self.snapshots,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "replayed_records": self.replayed_records,
            "discarded_tail_bytes": self.discarded_tail_bytes,
        }
