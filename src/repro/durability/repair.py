"""Automated repair of consistency findings.

The :class:`RepairPlanner` turns :class:`~repro.durability.audit.Finding`\\ s
into executed repairs, following a fixed decision tree (documented in
``docs/durability.md``):

* ``lost_data`` / ``checksum_mismatch`` — restore the bytes from the first
  source whose content hashes to the *cataloged* checksum:

  1. a healthy replica in one of the configured ``replica_stores``;
  2. the durability archive (the verified copies the scrubber lays down),
     preceded by a tape recall through the
     :class:`~repro.storage.hsm.HsmSystem` when the dataset's pool record
     sits on the tape tier — recalls cost real simulated time;
  3. nothing — the object is *unrepairable* and is spilled to the
     facility :class:`~repro.resilience.dlq.DeadLetterQueue` with the full
     story, never silently dropped.

* ``dark_data`` — quarantined: the payload is parked in the DLQ (audit
  trail + operator replay) and the object removed from the namespace, so
  quotas and listings are truthful again.

* ``under_replicated`` — handed to HDFS re-replication
  (:meth:`~repro.hdfs.cluster.HdfsCluster.rereplicate_pending`).

Every repair produces a :class:`RepairOutcome`; the Durability report
section renders the tallies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.adal.api import BackendRegistry, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, BackendUnavailableError, ObjectNotFoundError
from repro.durability.audit import (
    CHECKSUM_MISMATCH,
    DARK_DATA,
    LOST_DATA,
    UNDER_REPLICATED,
    AuditReport,
    Finding,
)
from repro.resilience.errors import RetriesExhaustedError
from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.simkit.rand import RandomSource

#: Repair actions the planner can take.
ACTIONS = (
    "restore_from_replica",
    "restore_from_archive",
    "tape_recall_restore",
    "quarantine",
    "rereplicate",
    "dead_letter",
)


@dataclass(frozen=True)
class RepairOutcome:
    """What happened to one finding."""

    finding: Finding
    action: str  # one of ACTIONS
    status: str  # "repaired" | "unrepairable"
    detail: str = ""
    finished_at: float = 0.0

    @property
    def repaired(self) -> bool:
        """True when the repair actually restored consistency."""
        return self.status == "repaired"


class RepairPlanner:
    """Executes the repair decision tree over audit/scrub findings.

    Parameters
    ----------
    sim:
        The facility simulator (tape recalls and HDFS copies take time).
    registry:
        ADAL registry holding the stores being repaired.
    archive:
        The durability archive backend (verified copies, keyed
        ``<store>/<path>``).
    replica_stores:
        Store names searched — in order — for healthy replicas.
    hdfs:
        Optional :class:`~repro.hdfs.cluster.HdfsCluster` for
        ``under_replicated`` findings.
    hsm:
        Optional :class:`~repro.storage.hsm.HsmSystem`; when the damaged
        dataset's pool record is on the tape tier, the archive restore is
        preceded by a staged recall.
    dlq:
        Dead-letter queue for unrepairable objects and quarantined dark
        data.
    retry_policy:
        :class:`~repro.resilience.policy.RetryPolicy` guarding every
        backend touch against transient
        :class:`~repro.adal.errors.BackendUnavailableError` blips (the
        repair path runs during exactly the incidents that make backends
        flaky).  ``None`` disables retries.
    retry_rng:
        Seeded :class:`~repro.simkit.rand.RandomSource` substream for the
        retry jitter draws.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: BackendRegistry,
        archive: StorageBackend,
        replica_stores: Sequence[str] = (),
        hdfs=None,
        hsm=None,
        dlq=None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[RandomSource] = None,
    ):
        self.sim = sim
        self.registry = registry
        self.archive = archive
        self.replica_stores = tuple(replica_stores)
        self.hdfs = hdfs
        self.hsm = hsm
        self.dlq = dlq
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        self.outcomes: list[RepairOutcome] = []

    def _guarded(self, fn, label: str):
        """One backend touch through the retry guard (direct when none)."""
        if self.retry_policy is None:
            return fn()
        return self.retry_policy.run_sync(
            fn, retry_on=(BackendUnavailableError,), rng=self.retry_rng,
            label=label)

    # -- public API ---------------------------------------------------------
    def execute(self, report: AuditReport) -> Event:
        """Repair every finding of an audit report (a sim process).

        The event's value is the list of :class:`RepairOutcome`\\ s, in
        finding order.
        """
        return self.sim.process(self._execute(report.findings), name="durability.repair")

    def repair_object(self, finding: Finding) -> Generator:
        """Repair one object finding (generator — run as/inside a process)."""
        outcome = yield from self._repair_one(finding)
        return outcome

    def counts(self) -> dict[str, int]:
        """Executed repairs tallied by action."""
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.action] = tally.get(outcome.action, 0) + 1
        return tally

    # -- internals ------------------------------------------------------------
    def _execute(self, findings: Sequence[Finding]) -> Generator:
        outcomes: list[RepairOutcome] = []
        blocks = [f for f in findings if f.kind == UNDER_REPLICATED]
        for finding in findings:
            if finding.kind == UNDER_REPLICATED:
                continue  # batched below
            outcome = yield from self._repair_one(finding)
            outcomes.append(outcome)
        if blocks:
            outcomes.extend((yield from self._rereplicate(blocks)))
        return outcomes

    def _record(self, finding: Finding, action: str, status: str,
                detail: str = "") -> RepairOutcome:
        outcome = RepairOutcome(finding, action, status, detail,
                                finished_at=self.sim.now)
        self.outcomes.append(outcome)
        return outcome

    def _split(self, url: str) -> tuple[str, str]:
        # "adal://store/path" -> (store, path)
        rest = url.split("://", 1)[1]
        store, _, path = rest.partition("/")
        return store, path

    def _repair_one(self, finding: Finding) -> Generator:
        if finding.kind == DARK_DATA:
            return self._quarantine(finding)
        if finding.kind in (LOST_DATA, CHECKSUM_MISMATCH):
            outcome = yield from self._restore(finding)
            return outcome
        return self._record(finding, "dead_letter", "unrepairable",
                            f"no repair rule for kind {finding.kind!r}")

    def _quarantine(self, finding: Finding) -> RepairOutcome:
        store, path = self._split(finding.subject)
        try:
            backend = self.registry.resolve(store)
            data = self._guarded(lambda: backend.get(path),
                                 label=f"repair.quarantine_read:{path}")
            if self.dlq is not None:
                self.dlq.push(
                    payload={"url": finding.subject, "data": data},
                    error="dark data: object had no catalog entry",
                    attempts=[(self.sim.now, "quarantined by repair planner")],
                    source="durability.quarantine",
                    time=self.sim.now,
                    nbytes=len(data),
                )
            self._guarded(lambda: backend.delete(path),
                          label=f"repair.quarantine_delete:{path}")
        except ObjectNotFoundError:
            return self._record(finding, "quarantine", "repaired",
                                "object already gone")
        except (AdalError, RetriesExhaustedError) as exc:
            return self._record(finding, "quarantine", "unrepairable", str(exc))
        return self._record(finding, "quarantine", "repaired",
                            "payload parked in DLQ, object removed")

    def _find_replica(self, path: str, expected: str) -> Optional[tuple[str, bytes]]:
        """A healthy copy at the same path in a replica store, if any."""
        for name in self.replica_stores:
            try:
                backend = self.registry.resolve(name)
                data = self._guarded(lambda: backend.get(path),
                                     label=f"repair.replica_read:{name}")
            except (AdalError, RetriesExhaustedError):
                continue
            if checksum_bytes(data) == expected:
                return name, data
        return None

    def _restore(self, finding: Finding) -> Generator:
        store, path = self._split(finding.subject)
        expected = finding.expected_checksum
        try:
            backend = self.registry.resolve(store)
        except AdalError as exc:
            return self._record(finding, "dead_letter", "unrepairable",
                                f"store unreachable: {exc}")
        if expected is None:
            return (yield from self._give_up(finding, "no cataloged checksum"))

        replica = self._find_replica(path, expected)
        if replica is not None:
            name, data = replica
            # lint: disable=write-once-overwrite -- repair restores the
            # canonical bytes over a detected-corrupt object, by design.
            self._guarded(lambda: backend.put(path, data, overwrite=True),
                          label=f"repair.restore_write:{path}")
            return self._record(finding, "restore_from_replica", "repaired",
                                f"from store {name!r}")

        archive_key = f"{store}/{path}"
        if self.archive.exists(archive_key):
            data = self.archive.get(archive_key)
            if checksum_bytes(data) == expected:
                action = "restore_from_archive"
                if self._on_tape(finding.dataset_id):
                    # The archive copy lives on tape: stage it back first.
                    yield self.hsm.access(finding.dataset_id)
                    action = "tape_recall_restore"
                # lint: disable=write-once-overwrite -- repair restores the
                # canonical bytes over a detected-corrupt object, by design.
                self._guarded(lambda: backend.put(path, data, overwrite=True),
                              label=f"repair.archive_restore:{path}")
                return self._record(finding, action, "repaired",
                                    "verified archive copy")

        outcome = yield from self._give_up(finding, "no healthy replica or archive copy")
        return outcome

    def _on_tape(self, dataset_id: Optional[str]) -> bool:
        if dataset_id is None or self.hsm is None:
            return False
        pool = self.hsm.pool
        return pool.contains(dataset_id) and pool.lookup(dataset_id).tier == "tape"

    def _give_up(self, finding: Finding, why: str) -> Generator:
        if self.dlq is not None:
            self.dlq.push(
                payload={"url": finding.subject, "kind": finding.kind},
                error=f"unrepairable: {why}",
                attempts=[(self.sim.now, why)],
                source="durability.repair",
                time=self.sim.now,
            )
        return self._record(finding, "dead_letter", "unrepairable", why)
        yield  # pragma: no cover - keeps this a generator for uniform callers

    def _rereplicate(self, findings: Sequence[Finding]) -> Generator:
        if self.hdfs is None:
            return [self._record(f, "rereplicate", "unrepairable", "no HDFS wired")
                    for f in findings]
        yield self.hdfs.rereplicate_pending()
        nn = self.hdfs.namenode
        outcomes = []
        for finding in findings:
            block_id = int(finding.subject.rsplit(":", 1)[1])
            if block_id in nn.under_replicated:
                outcomes.append(self._record(
                    finding, "rereplicate", "unrepairable",
                    "still under-replicated after a re-replication pass"))
            else:
                outcomes.append(self._record(finding, "rereplicate", "repaired"))
        return outcomes
