"""Background integrity scrubbing: re-hash everything, continuously.

ADAL verifies checksums only when a caller passes ``verify=True`` — so
silent bit-rot sits undetected until a (possibly much later) read.  The
:class:`IntegrityScrubber` closes that window: a daemon on the simulator
clock walks the audited stores at a configurable **bandwidth budget**
(scrubbing competes with production I/O; the budget is how operators keep
it polite), re-hashes every object's content against its stored checksum,
and on a mismatch raises a ``checksum_mismatch`` finding — repaired on the
spot when a :class:`~repro.durability.repair.RepairPlanner` is attached.

The scrubber is also what makes repair *possible*: every object it verifies
healthy is copied into the durability archive (Allcock-style verified
replicas), so a later corruption has a known-good source to restore from.
The E14 ablation measures exactly this: with the scrubber on, corruption is
detected and repaired before the first reader arrives; with it off, readers
eat the bit-rot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Sequence

from repro.adal.api import BackendRegistry, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, BackendUnavailableError, ObjectNotFoundError
from repro.durability.audit import CHECKSUM_MISMATCH, Finding
from repro.durability.repair import RepairPlanner
from repro.metadata.store import MetadataStore
from repro.resilience.errors import RetriesExhaustedError
from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.simkit.rand import RandomSource
from repro.telemetry.hub import TelemetryHub


@dataclass
class ScrubPass:
    """Summary of one complete scrub cycle."""

    started: float
    finished: float
    objects_scanned: int = 0
    bytes_scanned: float = 0.0
    corruptions_found: int = 0
    repaired: int = 0
    skipped: int = 0  # unreadable objects/stores (outage mid-scrub)


class IntegrityScrubber:
    """Walks ADAL stores on the sim clock, verifying content checksums.

    Parameters
    ----------
    sim:
        The facility simulator.
    registry:
        Backend registry; ``stores`` names the namespaces to scrub.
    metadata:
        The catalog — used to prefer the *cataloged* checksum as truth
        when the object is registered (backend stat checksums follow the
        stored bytes on honest backends, but the catalog is the paper's
        authority).
    bandwidth:
        Scrub budget in bytes/second of simulated time; each object costs
        ``size / bandwidth`` seconds before its hash is checked.
    interval:
        Daemon sleep between the end of one pass and the start of the next.
    archive:
        Optional backend receiving a copy of every object verified healthy
        (keyed ``<store>/<path>``) — the repair planner's restore source.
    planner:
        Optional repair planner; when attached, mismatches are repaired
        inline during the pass.
    on_detect:
        Optional callback ``(finding)`` — the kit uses it for
        mean-time-to-detect accounting.
    retry_policy:
        :class:`~repro.resilience.policy.RetryPolicy` guarding the
        per-object reads against transient backend blips, so a brown-out
        mid-pass degrades to retries instead of skipped objects.
        ``None`` disables retries (blips skip the object, as before).
    retry_rng:
        Seeded :class:`~repro.simkit.rand.RandomSource` substream for
        retry jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: BackendRegistry,
        metadata: Optional[MetadataStore] = None,
        stores: Sequence[str] = ("lsdf",),
        bandwidth: float = 500e6,
        interval: float = 6 * 3600.0,
        archive: Optional[StorageBackend] = None,
        planner: Optional[RepairPlanner] = None,
        on_detect: Optional[Callable[[Finding], None]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[RandomSource] = None,
    ):
        if bandwidth <= 0:
            raise ValueError("scrub bandwidth must be > 0")
        if interval <= 0:
            raise ValueError("scrub interval must be > 0")
        self.sim = sim
        self.registry = registry
        self.metadata = metadata
        self.stores = tuple(stores)
        self.bandwidth = float(bandwidth)
        self.interval = float(interval)
        self.archive = archive
        self.planner = planner
        self.on_detect = on_detect
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        self.passes: list[ScrubPass] = []
        reg = TelemetryHub.for_sim(sim).registry
        self.objects_scanned = reg.counter(
            "scrub.objects_total", "Objects re-hashed by the scrubber")
        self.bytes_scanned = reg.counter(
            "scrub.bytes_total", "Bytes re-hashed by the scrubber",
            unit="bytes")
        self.corruptions_found = reg.counter(
            "scrub.corruptions_found_total",
            "Checksum mismatches found while scrubbing")
        self.repairs = reg.counter(
            "scrub.repairs_total", "Mismatches repaired inline by the planner")
        self.pass_duration = reg.summary(
            "scrub.pass_duration_seconds", "Duration of one full scrub pass",
            unit="seconds")
        reg.gauge_fn("scrub.passes_total", lambda: float(len(self.passes)),
                     "Completed scrub passes")
        reg.gauge_fn("scrub.coverage_ratio", self.coverage,
                     "Fraction of stored objects covered by the last pass")
        self._daemon_running = False

    # -- public API ---------------------------------------------------------
    def start(self) -> None:
        """Start the periodic scrub daemon (idempotent).

        Like the HSM daemon, this keeps the event queue non-empty forever —
        run the simulation with a horizon once started.
        """
        if not self._daemon_running:
            self._daemon_running = True
            self.sim.process(self._daemon(), name="durability.scrubber")

    def scrub_once(self) -> Event:
        """Run a single full pass now; event value is the :class:`ScrubPass`."""
        return self.sim.process(self._pass(), name="durability.scrub_pass")

    def coverage(self) -> float:
        """Fraction of currently stored objects scanned in the last pass."""
        last = self.passes[-1] if self.passes else None
        if last is None:
            return 0.0
        current = 0
        for store in self.stores:
            try:
                current += len(self.registry.resolve(store).listdir(""))
            except AdalError:
                continue
        if current == 0:
            return 1.0
        return min(1.0, last.objects_scanned / current)

    # -- internals ------------------------------------------------------------
    def _guarded(self, fn, label: str):
        """One backend touch through the retry guard (direct when none)."""
        if self.retry_policy is None:
            return fn()
        return self.retry_policy.run_sync(
            fn, retry_on=(BackendUnavailableError,), rng=self.retry_rng,
            label=label)

    def _daemon(self) -> Generator:
        while True:
            yield self.sim.process(self._pass())
            yield self.sim.timeout(self.interval)

    def _expected_checksum(self, url: str, stored: str) -> str:
        """Catalog checksum when the object is registered, else the stored one."""
        if self.metadata is not None:
            record = self.metadata.by_url(url)
            if record is not None:
                return record.checksum
        return stored

    def _pass(self) -> Generator:
        summary = ScrubPass(started=self.sim.now, finished=self.sim.now)
        for store in self.stores:
            try:
                backend = self.registry.resolve(store)
                infos = self._guarded(lambda: backend.listdir(""),
                                      label=f"scrub.listdir:{store}")
            except (AdalError, RetriesExhaustedError):
                summary.skipped += 1
                continue
            for info in infos:
                if info.size > 0:
                    yield self.sim.timeout(info.size / self.bandwidth)
                try:
                    data = self._guarded(
                        lambda url=info.url: backend.get(url),
                        label=f"scrub.read:{store}")
                except ObjectNotFoundError:
                    continue  # deleted since listdir
                except (AdalError, RetriesExhaustedError):
                    summary.skipped += 1
                    continue
                summary.objects_scanned += 1
                summary.bytes_scanned += len(data)
                self.objects_scanned.add(1)
                self.bytes_scanned.add(len(data))
                url = f"adal://{store}/{info.url}"
                expected = self._expected_checksum(url, info.checksum)
                actual = checksum_bytes(data)
                if actual == expected:
                    if self.archive is not None:
                        # lint: disable=write-once-overwrite -- idempotent
                        # refresh of the scrubber's own archive copy, keyed by
                        # the object's canonical URL (verified-good bytes).
                        self.archive.put(f"{store}/{info.url}", data, overwrite=True)
                    continue
                summary.corruptions_found += 1
                self.corruptions_found.add(1)
                finding = Finding(
                    kind=CHECKSUM_MISMATCH, subject=url,
                    detected_at=self.sim.now, expected_checksum=expected,
                    dataset_id=(
                        self.metadata.by_url(url).dataset_id
                        if self.metadata is not None and self.metadata.by_url(url)
                        else None
                    ),
                    detail=f"scrub: expected {expected[:12]}… read {actual[:12]}…",
                )
                if self.on_detect is not None:
                    self.on_detect(finding)
                if self.planner is not None:
                    outcome = yield from self.planner.repair_object(finding)
                    if outcome.repaired:
                        summary.repaired += 1
                        self.repairs.add(1)
        summary.finished = self.sim.now
        self.pass_duration.record(summary.finished - summary.started)
        self.passes.append(summary)
        return summary
