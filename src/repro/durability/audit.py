"""Facility-wide consistency auditing: catalog vs storage vs block map.

Production data facilities run this continuously (Rucio's consistency
checks are the model): compare what the metadata repository *claims* exists
against what the storage namespaces *actually* hold, and classify every
divergence.  Finding kinds:

``dark_data``
    Bytes on storage with no catalog entry — invisible to every tool that
    navigates via metadata, and unaccounted in quotas.
``lost_data``
    A catalog entry whose bytes are gone from storage — a read is a
    guaranteed failure waiting for a user.
``checksum_mismatch``
    Object present but its content hash differs from the cataloged one —
    silent bit-rot (the object's *stored* checksum may still match the
    catalog; only re-hashing the content catches it).
``under_replicated``
    An HDFS block below its target replica count.

The auditor only *finds*; the
:class:`~repro.durability.repair.RepairPlanner` decides and executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.adal.api import BackendRegistry, checksum_bytes
from repro.adal.errors import AdalError, ObjectNotFoundError
from repro.metadata.store import MetadataStore

#: The finding taxonomy, in severity order.
FINDING_KINDS = ("lost_data", "checksum_mismatch", "dark_data", "under_replicated")

DARK_DATA = "dark_data"
LOST_DATA = "lost_data"
CHECKSUM_MISMATCH = "checksum_mismatch"
UNDER_REPLICATED = "under_replicated"


@dataclass(frozen=True)
class Finding:
    """One consistency divergence."""

    kind: str  # one of FINDING_KINDS
    #: ADAL URL for object findings; ``hdfs:block:<id>`` for block findings.
    subject: str
    detail: str = ""
    detected_at: float = 0.0
    #: Catalog checksum for object findings (repair target), when known.
    expected_checksum: Optional[str] = None
    #: Dataset id of the catalog record involved, when known.
    dataset_id: Optional[str] = None


@dataclass
class AuditReport:
    """Outcome of one full audit pass."""

    started: float
    finished: float
    objects_checked: int = 0
    records_checked: int = 0
    blocks_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    #: Stores that could not be listed this pass (outage mid-audit).
    skipped_stores: list[str] = field(default_factory=list)

    def by_kind(self) -> dict[str, int]:
        """Finding counts per kind (all kinds present, zero-filled)."""
        counts = {kind: 0 for kind in FINDING_KINDS}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts

    def of_kind(self, kind: str) -> list[Finding]:
        """All findings of one kind."""
        return [f for f in self.findings if f.kind == kind]

    @property
    def clean(self) -> bool:
        """True when the audit found no divergence at all."""
        return not self.findings and not self.skipped_stores


class ConsistencyAuditor:
    """Cross-checks ADAL stores, the metadata repository and HDFS.

    Parameters
    ----------
    metadata:
        The catalog of record.
    registry:
        ADAL backend registry; ``stores`` names which namespaces to audit.
    stores:
        Store names whose objects are catalog-managed.  Catalog entries
        with URLs outside these stores are out of scope (they may point at
        simulated-only placements).
    namenode:
        Optional HDFS namenode whose block map is checked for
        under-replication.
    clock:
        Timestamp source for findings (e.g. ``lambda: sim.now``).
    """

    def __init__(
        self,
        metadata: MetadataStore,
        registry: BackendRegistry,
        stores: Sequence[str] = ("lsdf",),
        namenode=None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.metadata = metadata
        self.registry = registry
        self.stores = tuple(stores)
        self.namenode = namenode
        self.clock = clock or (lambda: 0.0)
        self.audits_run = 0
        self.last_report: Optional[AuditReport] = None

    # -- the audit ----------------------------------------------------------
    def audit(self, verify_content: bool = True) -> AuditReport:
        """One full consistency pass; returns the classified findings.

        ``verify_content`` re-hashes every object's bytes against the
        catalog checksum (the only way to catch *silent* corruption, where
        the backend's own stat still reports the original hash).  With it
        off the audit only does namespace set-reconciliation — much
        cheaper, blind to bit-rot.
        """
        now = self.clock()
        report = AuditReport(started=now, finished=now)
        for store in self.stores:
            self._audit_store(store, report, verify_content)
        if self.namenode is not None:
            self._audit_blocks(report)
        report.finished = self.clock()
        self.audits_run += 1
        self.last_report = report
        return report

    def _catalog_for(self, store: str) -> dict[str, str]:
        """url -> dataset_id for every catalog entry inside one store."""
        prefix = f"adal://{store}/"
        return {
            record.url: record.dataset_id
            for record in self.metadata.datasets()
            if record.url.startswith(prefix)
        }

    def _audit_store(self, store: str, report: AuditReport, verify: bool) -> None:
        try:
            backend = self.registry.resolve(store)
            infos = {f"adal://{store}/{i.url}": i for i in backend.listdir("")}
        except AdalError:
            report.skipped_stores.append(store)
            return
        catalog = self._catalog_for(store)
        report.objects_checked += len(infos)
        report.records_checked += len(catalog)
        now = self.clock()

        for url, info in infos.items():
            dataset_id = catalog.get(url)
            if dataset_id is None:
                report.findings.append(Finding(
                    kind=DARK_DATA, subject=url, detected_at=now,
                    detail=f"{info.size} B on storage, no catalog entry",
                ))
        for url, dataset_id in catalog.items():
            expected = self.metadata.get(dataset_id).checksum
            info = infos.get(url)
            if info is None:
                report.findings.append(Finding(
                    kind=LOST_DATA, subject=url, detected_at=now,
                    expected_checksum=expected, dataset_id=dataset_id,
                    detail="catalog entry with no bytes on storage",
                ))
                continue
            actual = None
            if verify:
                try:
                    path = url.split("/", 3)[3]
                    actual = checksum_bytes(backend.get(path))
                except ObjectNotFoundError:
                    actual = None  # deleted between listdir and get
                except AdalError:
                    continue  # unreadable this pass; do not guess
            else:
                actual = info.checksum
            if actual is not None and actual != expected:
                report.findings.append(Finding(
                    kind=CHECKSUM_MISMATCH, subject=url, detected_at=now,
                    expected_checksum=expected, dataset_id=dataset_id,
                    detail=f"catalog {expected[:12]}… != stored {actual[:12]}…",
                ))

    def _audit_blocks(self, report: AuditReport) -> None:
        now = self.clock()
        nn = self.namenode
        report.blocks_checked += len(getattr(nn, "_blocks_by_id", {}))
        for block_id in sorted(nn.under_replicated):
            block = nn.block(block_id)
            report.findings.append(Finding(
                kind=UNDER_REPLICATED, subject=f"hdfs:block:{block_id}",
                detected_at=now,
                detail=f"{len(block.replicas)}/{nn.replication} replicas "
                       f"({block.path})",
            ))
