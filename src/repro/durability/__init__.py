"""Durability layer: WAL'd metadata, integrity scrubbing, consistency audit.

The resilience layer (PR 1) defends the facility against *transient* faults
— retries, timeouts, circuit breakers.  This package defends against the
*permanent* ones a petabyte facility actually loses data to:

* a metadata repository crash (``metadata_crash`` chaos) — survived by the
  :class:`~repro.durability.wal.WriteAheadLog` behind
  :class:`~repro.durability.durable.DurableMetadataStore`;
* silent bit-rot (``silent_corruption`` chaos) — caught by the
  :class:`~repro.durability.scrubber.IntegrityScrubber` re-hashing every
  object on a bandwidth budget;
* catalog/storage/block-map divergence — found by the
  :class:`~repro.durability.audit.ConsistencyAuditor` and fixed by the
  :class:`~repro.durability.repair.RepairPlanner`.

The :class:`~repro.durability.kit.DurabilityKit` bundles all of it per
facility, exactly like the :class:`~repro.resilience.kit.ResilienceKit`.
"""

from repro.durability.audit import (
    CHECKSUM_MISMATCH,
    DARK_DATA,
    FINDING_KINDS,
    LOST_DATA,
    UNDER_REPLICATED,
    AuditReport,
    ConsistencyAuditor,
    Finding,
)
from repro.durability.durable import DurableMetadataStore
from repro.durability.kit import DurabilityError, DurabilityKit
from repro.durability.repair import ACTIONS, RepairOutcome, RepairPlanner
from repro.durability.scrubber import IntegrityScrubber, ScrubPass
from repro.durability.wal import (
    FileWalStorage,
    MemoryWalStorage,
    ReplayResult,
    WalError,
    WalRecord,
    WalStorage,
    WriteAheadLog,
)

__all__ = [
    "ACTIONS",
    "CHECKSUM_MISMATCH",
    "DARK_DATA",
    "FINDING_KINDS",
    "LOST_DATA",
    "UNDER_REPLICATED",
    "AuditReport",
    "ConsistencyAuditor",
    "DurabilityError",
    "DurabilityKit",
    "DurableMetadataStore",
    "FileWalStorage",
    "Finding",
    "IntegrityScrubber",
    "MemoryWalStorage",
    "RepairOutcome",
    "RepairPlanner",
    "ReplayResult",
    "ScrubPass",
    "WalError",
    "WalRecord",
    "WalStorage",
    "WriteAheadLog",
]
