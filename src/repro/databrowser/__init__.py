"""The DataBrowser (slides 9 and 12).

    "For end-users: DataBrowser — graphical tool for exploring and managing
    the LSDF data, based on ADAL-API, connects to the meta-data repository."
    "Allow tagging data and triggering execution via DataBrowser.  Data from
    finished workflows stored and tagged in DB — used for zebrafish
    microscopy data."

This is the headless core of that tool: directory-style navigation over
ADAL, joined views of objects + their metadata records, find-by-query, and
the production feature — **tag-triggered workflow execution**: applying a
tag that matches a registered :class:`TriggerRule` launches the rule's
workflow on the dataset and records provenance back into the repository.

Public surface
--------------
:class:`DataBrowser`
    Navigation (cd/ls/stat), joined listings, find, tag.
:class:`TriggerEngine`, :class:`TriggerRule`, :class:`TriggerEvent`
    The tag -> workflow automation.
"""

from repro.databrowser.browser import DataBrowser, Listing
from repro.databrowser.triggers import (
    TriggerEngine,
    TriggerEvent,
    TriggerFailure,
    TriggerRule,
)
from repro.databrowser.webgui import export_site, render_dataset, render_listing, render_search

__all__ = [
    "DataBrowser",
    "Listing",
    "TriggerEngine",
    "TriggerEvent",
    "TriggerFailure",
    "TriggerRule",
    "export_site",
    "render_dataset",
    "render_listing",
    "render_search",
]
