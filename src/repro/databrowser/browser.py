"""Headless DataBrowser: ADAL navigation joined with metadata.

The browser holds a *current URL* (like a shell's cwd), lists objects under
it with their linked dataset records, finds data by metadata query, and is
the entry point for tagging — which feeds the
:class:`~repro.databrowser.triggers.TriggerEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adal.api import AdalClient, ObjectInfo
from repro.metadata.query import Query
from repro.metadata.records import DatasetRecord
from repro.metadata.store import MetadataStore
from repro.databrowser.triggers import TriggerEngine


@dataclass
class Listing:
    """One row of a DataBrowser listing: object + its dataset record."""

    info: ObjectInfo
    record: Optional[DatasetRecord]

    @property
    def registered(self) -> bool:
        """Whether the object has metadata in the repository."""
        return self.record is not None

    @property
    def tags(self) -> set[str]:
        """Dataset tags (empty for unregistered objects)."""
        return set(self.record.tags) if self.record else set()


class DataBrowser:
    """Explore and manage LSDF data (headless core of the GUI tool)."""

    def __init__(
        self,
        adal: AdalClient,
        store: MetadataStore,
        triggers: Optional[TriggerEngine] = None,
        home: str = "adal://",
    ):
        self.adal = adal
        self.store = store
        self.triggers = triggers
        self._cwd = home.rstrip("/")

    # -- navigation ---------------------------------------------------------
    @property
    def cwd(self) -> str:
        """Current URL."""
        return self._cwd

    def cd(self, target: str) -> str:
        """Change the current URL (absolute ``adal://`` or relative path)."""
        if target.startswith("adal://"):
            self._cwd = target.rstrip("/")
        elif target == "..":
            base, _slash, _leaf = self._cwd.rpartition("/")
            if base.endswith(":/"):  # do not climb above adal://store
                base = self._cwd
            self._cwd = base
        else:
            self._cwd = f"{self._cwd}/{target.strip('/')}"
        return self._cwd

    def ls(self, path: str = "") -> list[Listing]:
        """List objects under the cwd (or a subpath), joined with metadata."""
        url = self._cwd if not path else f"{self._cwd}/{path.strip('/')}"
        rows = []
        for info in self.adal.listdir(url):
            rows.append(Listing(info=info, record=self.store.by_url(info.url)))
        return rows

    def stat(self, path: str) -> Listing:
        """Object info + dataset record for one path."""
        url = path if path.startswith("adal://") else f"{self._cwd}/{path.strip('/')}"
        info = self.adal.stat(url)
        return Listing(info=info, record=self.store.by_url(url))

    # -- metadata views --------------------------------------------------------
    def find(self, query: Query) -> list[DatasetRecord]:
        """Metadata search across the repository."""
        return self.store.query(query)

    def show(self, dataset_id: str) -> dict:
        """Full record view (what the GUI's detail pane renders)."""
        record = self.store.get(dataset_id)
        return record.to_dict()

    def history(self, dataset_id: str) -> list[str]:
        """Human-readable processing history of a dataset."""
        record = self.store.get(dataset_id)
        return [
            f"[{p.started:.1f}-{p.finished:.1f}] {p.name} ({p.status})"
            for p in record.processing
        ]

    # -- tagging / triggering -----------------------------------------------------
    def tag(self, dataset_id: str, *tags: str) -> list:
        """Tag a dataset; fires matching trigger rules.

        Returns the trigger results (traces or DES process events), one per
        fired rule.
        """
        self.store.tag(dataset_id, *tags)
        fired = []
        if self.triggers is not None:
            for tag in tags:
                fired.extend(self.triggers.on_tag(dataset_id, tag))
        return fired

    def untag(self, dataset_id: str, *tags: str) -> None:
        """Remove tags (never triggers anything)."""
        self.store.untag(dataset_id, *tags)

    def tagged(self, tag: str) -> list[DatasetRecord]:
        """All datasets carrying a tag."""
        return self.store.tagged(tag)
