"""Static web views of the DataBrowser (slide 9: "will be available as a
web GUI").

Renders the browser's three screens — directory listing, dataset detail
(with the chained processing history of slide 8), and search results — as
self-contained HTML, and :func:`export_site` writes a browsable static site
for a whole tree.  No server, no JavaScript dependencies: the output opens
from disk, which is exactly what a facility hands to a community that just
wants to *look* at its data.
"""

from __future__ import annotations

import html
import os
from pathlib import Path
from typing import Iterable

from repro.metadata.query import Query
from repro.metadata.records import DatasetRecord
from repro.simkit import units
from repro.databrowser.browser import DataBrowser, Listing

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; border-bottom: 2px solid #8aa; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #eef2f2; }
.tag { background: #dbeafe; border-radius: 8px; padding: 1px 8px;
       margin-right: 4px; font-size: 0.85em; }
.muted { color: #888; }
.chain { margin-left: 1em; border-left: 3px solid #8aa; padding-left: 1em; }
"""


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>{body}</body></html>"
    )


def _tags(tags: Iterable[str]) -> str:
    return "".join(f"<span class='tag'>{html.escape(t)}</span>" for t in sorted(tags))


def render_listing(browser: DataBrowser, path: str = "") -> str:
    """The directory screen: objects under the cwd joined with metadata."""
    rows = browser.ls(path)
    body = ["<table><tr><th>object</th><th>size</th><th>dataset</th>"
            "<th>tags</th></tr>"]
    for row in rows:
        dataset = (
            f"<a href='dataset-{html.escape(row.record.dataset_id)}.html'>"
            f"{html.escape(row.record.dataset_id)}</a>"
            if row.registered
            else "<span class='muted'>unregistered</span>"
        )
        body.append(
            "<tr>"
            f"<td>{html.escape(row.info.name)}</td>"
            f"<td>{units.fmt_bytes(row.info.size)}</td>"
            f"<td>{dataset}</td>"
            f"<td>{_tags(row.tags)}</td>"
            "</tr>"
        )
    body.append("</table>")
    body.append(f"<p class='muted'>{len(rows)} objects</p>")
    return _page(f"LSDF DataBrowser — {browser.cwd}{'/' + path if path else ''}",
                 "".join(body))


def render_dataset(record: DatasetRecord) -> str:
    """The detail screen: basic metadata + the processing chain."""
    body = ["<table>"]
    body.append(f"<tr><th>URL</th><td>{html.escape(record.url)}</td></tr>")
    body.append(f"<tr><th>project</th><td>{html.escape(record.project)}</td></tr>")
    body.append(f"<tr><th>size</th><td>{units.fmt_bytes(record.size)}</td></tr>")
    body.append(f"<tr><th>checksum</th><td><code>{html.escape(record.checksum)}"
                "</code></td></tr>")
    body.append(f"<tr><th>tags</th><td>{_tags(record.tags)}</td></tr>")
    for key, value in record.basic.items():
        body.append(f"<tr><th>{html.escape(str(key))}</th>"
                    f"<td>{html.escape(str(value))}</td></tr>")
    body.append("</table>")

    if record.processing:
        body.append("<h1>processing history</h1><div class='chain'>")
        for step in record.processing:
            results = ", ".join(
                f"{html.escape(str(k))}={html.escape(str(v))}"
                for k, v in step.results.items()
            )
            parent = (f" <span class='muted'>(after {html.escape(step.parent)})"
                      "</span>" if step.parent else "")
            body.append(
                f"<p><b>{html.escape(step.name)}</b> [{step.status}] "
                f"{step.started:.1f}&ndash;{step.finished:.1f}s "
                f"&rarr; {results}{parent}</p>"
            )
        body.append("</div>")
    return _page(f"dataset {record.dataset_id}", "".join(body))


def render_search(browser: DataBrowser, query: Query, label: str = "query") -> str:
    """The search screen: results of a metadata query."""
    hits = browser.find(query)
    body = ["<table><tr><th>dataset</th><th>project</th><th>size</th>"
            "<th>tags</th><th>steps</th></tr>"]
    for record in hits:
        body.append(
            "<tr>"
            f"<td><a href='dataset-{html.escape(record.dataset_id)}.html'>"
            f"{html.escape(record.dataset_id)}</a></td>"
            f"<td>{html.escape(record.project)}</td>"
            f"<td>{units.fmt_bytes(record.size)}</td>"
            f"<td>{_tags(record.tags)}</td>"
            f"<td>{len(record.processing)}</td>"
            "</tr>"
        )
    body.append("</table>")
    body.append(f"<p class='muted'>{len(hits)} hits for {html.escape(label)}</p>")
    return _page(f"LSDF search — {label}", "".join(body))


def export_site(browser: DataBrowser, out_dir: str | os.PathLike,
                listing_path: str = "") -> list[str]:
    """Write a browsable static site: index (listing) + one page per
    registered dataset.  Returns the written file names."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    (out / "index.html").write_text(render_listing(browser, listing_path),
                                    encoding="utf-8")
    written.append("index.html")
    for row in browser.ls(listing_path):
        if row.record is None:
            continue
        name = f"dataset-{row.record.dataset_id}.html"
        (out / name).write_text(render_dataset(row.record), encoding="utf-8")
        written.append(name)
    return written
