"""Tag-triggered workflow execution — the automation loop of slide 12.

A :class:`TriggerRule` binds a tag to a workflow graph plus a function that
derives the workflow's inputs from the dataset record.  The
:class:`TriggerEngine` watches tag applications (the
:class:`~repro.databrowser.browser.DataBrowser` calls it) and runs matching
rules — either immediately with a real director, or as DES processes with a
:class:`~repro.workflow.director.SimulatedDirector` (experiment E8).  Every
execution is recorded as provenance and logged as a :class:`TriggerEvent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.metadata.records import DatasetRecord
from repro.metadata.store import MetadataStore
from repro.workflow.actor import ActorError
from repro.workflow.director import DataflowDirector, ExecutionTrace, SimulatedDirector
from repro.workflow.graph import WorkflowGraph
from repro.workflow.provenance import ProvenanceRecorder

InputsFn = Callable[[DatasetRecord], dict[tuple[str, str], Any]]


@dataclass
class TriggerRule:
    """tag -> workflow binding."""

    tag: str
    graph: WorkflowGraph
    inputs_fn: InputsFn
    #: Tag applied to the dataset when the workflow succeeds.
    done_tag: Optional[str] = None
    #: Restrict the rule to one project (None = any).
    project: Optional[str] = None


@dataclass
class TriggerEvent:
    """Audit-log entry for one trigger execution."""

    dataset_id: str
    tag: str
    workflow: str
    status: str  # "success" | "failed"
    started: float
    finished: float
    error: Optional[str] = None


@dataclass
class TriggerFailure:
    """Returned by :meth:`TriggerEngine.on_tag` for a rule whose execution
    blew up outside the director's own error handling (bad ``inputs_fn``,
    non-:class:`~repro.workflow.actor.ActorError` escaping an actor).

    One broken rule must not starve the other rules matching the same tag —
    the engine records the failure, keeps going, and hands the caller this
    instead of a trace/process."""

    rule: TriggerRule
    dataset_id: str
    tag: str
    error: str


class TriggerEngine:
    """Executes :class:`TriggerRule`s when tags are applied.

    Parameters
    ----------
    store:
        The metadata repository (provenance target).
    director:
        A real director (default :class:`DataflowDirector`) or a
        :class:`SimulatedDirector` for DES runs.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryHub`; firings are
        counted per status and published as ``trigger.fired`` /
        ``trigger.failed`` events.  Standalone engines get a private
        unclocked hub.
    """

    def __init__(
        self,
        store: MetadataStore,
        director: Optional[DataflowDirector | SimulatedDirector] = None,
        telemetry=None,
    ):
        self.store = store
        self.director = director or DataflowDirector()
        self.provenance = ProvenanceRecorder(store, tag_on_success=None)
        self.rules: list[TriggerRule] = []
        self.log: list[TriggerEvent] = []
        #: In-flight DES processes (simulated mode only).
        self.inflight: list = []
        if telemetry is None:
            from repro.telemetry.hub import TelemetryHub

            telemetry = TelemetryHub()
        self.telemetry = telemetry
        telemetry.registry.gauge_fn(
            "triggers.rules", lambda: float(len(self.rules)),
            "Trigger rules installed")

    def _record(self, event: TriggerEvent) -> None:
        """Log one execution and mirror it onto the telemetry spine."""
        self.log.append(event)
        self.telemetry.registry.counter(
            "triggers.executions_total", "Trigger-rule executions by status",
            status=event.status).add(1)
        ok = event.status == "success"
        self.telemetry.bus.publish(
            "trigger.fired" if ok else "trigger.failed",
            subject=event.dataset_id, severity="info" if ok else "warning",
            tag=event.tag, workflow=event.workflow, error=event.error)

    def register(self, rule: TriggerRule) -> None:
        """Install a trigger rule."""
        rule.graph.validate()
        self.rules.append(rule)

    def matching_rules(self, record: DatasetRecord, tag: str) -> list[TriggerRule]:
        """Rules that fire for this (record, tag) pair."""
        return [
            r
            for r in self.rules
            if r.tag == tag and (r.project is None or r.project == record.project)
        ]

    # -- firing -----------------------------------------------------------
    def on_tag(self, dataset_id: str, tag: str) -> list:
        """Notification hook: run every matching rule.

        Returns one entry per matching rule, in registration order: an
        :class:`ExecutionTrace` (real director), a process event (simulated
        director), or a :class:`TriggerFailure` when that rule's execution
        raised — a failing rule is captured and logged, never allowed to
        starve the remaining matching rules.
        """
        import time

        record = self.store.get(dataset_id)
        results = []
        for rule in self.matching_rules(record, tag):
            simulated = isinstance(self.director, SimulatedDirector)
            tick = (lambda: self.director.sim.now) if simulated else time.monotonic
            start = tick()
            try:
                results.append(self._execute(rule, record, tag))
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                self._record(
                    TriggerEvent(dataset_id, tag, rule.graph.name, "failed",
                                 start, tick(), error=message)
                )
                results.append(TriggerFailure(rule, dataset_id, tag, message))
        return results

    def _execute(self, rule: TriggerRule, record: DatasetRecord, tag: str):
        inputs = rule.inputs_fn(record)
        if isinstance(self.director, SimulatedDirector):
            proc = self.director.sim.process(
                self._simulated_run(rule, record, tag, inputs),
                name=f"trigger:{rule.graph.name}:{record.dataset_id}",
            )
            self.inflight.append(proc)
            return proc
        return self._real_run(rule, record, tag, inputs)

    def _real_run(self, rule, record, tag, inputs) -> ExecutionTrace:
        import time

        # lint: disable=wall-clock -- real-director path: measures actual
        # external workflow runtime, never runs inside a simulation.
        start = time.monotonic()
        try:
            trace = self.director.run(rule.graph, inputs)
        except ActorError as exc:
            trace = getattr(exc, "trace", None)
            self._record(
                TriggerEvent(record.dataset_id, tag, rule.graph.name, "failed",
                             # lint: disable=wall-clock -- real-director path.
                             start, time.monotonic(), error=str(exc))
            )
            if trace is not None:
                self.provenance.record(record.dataset_id, rule.graph, trace)
            return trace
        self._finish(rule, record, tag, trace)
        return trace

    def _simulated_run(self, rule, record, tag, inputs):
        trace = yield self.director.run(rule.graph, inputs)
        self._finish(rule, record, tag, trace)
        return trace

    def _finish(self, rule: TriggerRule, record: DatasetRecord, tag: str,
                trace: ExecutionTrace) -> None:
        self.provenance.record(record.dataset_id, rule.graph, trace)
        if rule.done_tag:
            # Direct store tag: done_tags do not re-enter the trigger engine
            # (prevents accidental rule loops).
            self.store.tag(record.dataset_id, rule.done_tag)
        self._record(
            TriggerEvent(record.dataset_id, tag, rule.graph.name, trace.status,
                         trace.started, trace.finished)
        )

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """Execution counters."""
        ok = sum(1 for e in self.log if e.status == "success")
        return {
            "rules": len(self.rules),
            "executions": len(self.log),
            "succeeded": ok,
            "failed": len(self.log) - ok,
        }
