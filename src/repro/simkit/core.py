"""The simulation event loop.

:class:`Simulator` owns the clock and the event queue.  Events are totally
ordered by ``(time, priority, sequence-number)`` which — together with seeded
random streams — makes every simulation in this repository bit-for-bit
reproducible.  The queue itself is a pluggable backend (see
:mod:`repro.simkit.sched`): the default binary heap, or a calendar queue for
timer-heavy regimes; both produce the identical pop order, so the scheduler
choice never changes a trace.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.simkit.errors import SimkitError, StopSimulation
from repro.simkit.events import NORMAL, AllOf, AnyOf, Callback, Event, Process, Timeout
from repro.simkit.rand import RandomSource
from repro.simkit.sched import make_scheduler

_INFINITY = float("inf")


class Simulator:
    """A discrete-event simulation environment.

    Parameters
    ----------
    seed:
        Seed for the simulator's root :class:`~repro.simkit.rand.RandomSource`.
        Subsystems should derive substreams via :meth:`RandomSource.spawn`
        so adding a new consumer never perturbs existing ones.
    start:
        Initial simulation time (seconds).
    scheduler:
        Event-queue backend: ``"heap"`` (default), ``"calendar"``, or a
        pre-built :mod:`repro.simkit.sched` instance.  Backends are
        pop-order identical; the knob only trades constant factors.

    Example
    -------
    >>> sim = Simulator(seed=7)
    >>> def hello():
    ...     yield sim.timeout(3.5)
    ...     return sim.now
    >>> proc = sim.process(hello())
    >>> sim.run()
    >>> proc.value
    3.5
    """

    def __init__(self, seed: Optional[int] = 0, start: float = 0.0,
                 scheduler: Any = "heap"):
        self._now = float(start)
        self._sched = make_scheduler(scheduler)
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.random = RandomSource(seed)
        #: The telemetry hub for this simulation, attached lazily by
        #: :meth:`repro.telemetry.TelemetryHub.for_sim` (simkit itself
        #: never imports it — one-way layering).
        self.telemetry = None
        #: Arbitrary per-simulation scratch space for components to share.
        self.context: dict[str, Any] = {}
        #: Observers called as ``hook(when, priority, seq, event)`` for every
        #: event the loop processes (the determinism sanitizer's tap).
        self.trace_hooks: list[Callable[[float, int, int, Event], None]] = []
        # Optional race-detector mode: a seeded stream that randomises the
        # tie-break among same-(time, priority) events (see
        # ``enable_tie_shuffle``); ``None`` means strict insertion order.
        self._tie_rng: Optional[RandomSource] = None

    def enable_tie_shuffle(self, rng: RandomSource) -> None:
        """Randomise ordering among same-``(time, priority)`` events.

        Normally simultaneous events process in insertion order (the
        sequence number), which makes accidental order dependencies
        invisible.  With a tie-shuffle stream installed, each scheduled
        event gets a random tie-break drawn from ``rng`` *between*
        priority and sequence number — any behaviour that survives only
        because of insertion order now diverges, which is exactly what
        :mod:`repro.analysis.sanitize` looks for.  The stream must be
        independent of ``self.random`` so component draws are unaffected.
        """
        self._tie_rng = rng

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduler(self):
        """The event-queue backend instance (see :mod:`repro.simkit.sched`)."""
        return self._sched

    # -- event creation --------------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a pending :class:`Event` owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulation process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None], priority: int = NORMAL) -> Event:
        """Run ``fn()`` at absolute simulation time ``when``.

        ``priority`` orders the callback among same-time events (e.g.
        :data:`~repro.simkit.events.LOW` runs it after all normal work at
        that instant — how netsim batches same-instant rate solves).
        """
        if when < self._now:
            raise SimkitError(f"call_at({when}) is in the past (now={self._now})")
        return Callback(self, when, fn, priority=priority)

    # -- scheduling (kernel internal) -----------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimkitError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        if self._tie_rng is None:
            self._sched.push((self._now + delay, priority, 0, self._seq, event))
        else:
            tie = int(self._tie_rng.generator.integers(0, 2**31))
            self._sched.push((self._now + delay, priority, tie, self._seq, event))

    # -- execution ---------------------------------------------------------------
    @property
    def queue_empty(self) -> bool:
        """True when no future events remain."""
        return not self._sched

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the monotonic sequence counter)."""
        return self._seq

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek_time()

    def _dispatch(self, when: float, prio: int, seq: int, event: Event) -> None:
        """Process one popped event: advance the clock, tap the trace
        hooks, run the event, escalate undefused failures.

        This is the *single* event-execution path — :meth:`step` and
        :meth:`run` both land here, so the stepping path and the run loop
        cannot drift apart.
        """
        self._now = when
        for hook in self.trace_hooks:
            hook(when, prio, seq, event)
        event._process()
        if event._exception is not None and not event.defused:
            raise event._exception

    def step(self) -> None:
        """Pop and process the single next event.

        Raises the exception of a failed event that nobody *defused*
        (i.e. no process or condition was waiting to handle it) so
        programming errors inside processes surface instead of being
        silently dropped.
        """
        if not self._sched:
            raise SimkitError("step() on an empty event queue")
        when, prio, _tie, seq, event = self._sched.pop()
        self._dispatch(when, prio, seq, event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the event loop.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue drains;
            a number
                run until that simulation time (the clock is advanced to
                exactly ``until`` even if no event falls on it);
            an :class:`Event`
                run until that event is processed, returning its value.
        """
        stop_event: Optional[Event] = None
        stop_time = _INFINITY
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimkitError(f"run(until={stop_time}) is in the past (now={self._now})")

        # The loop binds the scheduler's methods once; every pop funnels
        # through _dispatch (shared with step()) so traced and untraced
        # runs execute identical event logic.
        sched = self._sched
        pop = sched.pop
        peek = sched.peek_time
        dispatch = self._dispatch
        try:
            while sched:
                if stop_event is not None and stop_event._state == Event.PROCESSED:
                    return stop_event._value if stop_event._exception is None else None
                if peek() > stop_time:
                    self._now = stop_time
                    return None
                when, prio, _tie, seq, event = pop()
                dispatch(when, prio, seq, event)
        except StopSimulation:
            return None
        if stop_event is not None:
            if stop_event.processed:
                return stop_event._value if stop_event.ok else None
            raise SimkitError("run(until=event): queue drained before event triggered")
        if stop_time is not _INFINITY and stop_time > self._now:
            self._now = stop_time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6g} queued={len(self._sched)}>"
