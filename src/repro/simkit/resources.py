"""Shared-resource primitives: :class:`Resource`, :class:`PriorityResource`,
:class:`Store` and :class:`Container`.

All follow the same request/grant protocol: ``request()``/``get()``/``put()``
return an :class:`~repro.simkit.events.Event` that a process ``yield``s; the
event triggers when the resource grants it.  Grants are FIFO (or priority
order for :class:`PriorityResource`) and therefore deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.simkit.errors import SimkitError
from repro.simkit.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.core import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource"):
        super().__init__(sim, name=f"Request({resource.name})")
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if self.triggered:
            raise SimkitError("cannot cancel a granted request; release() instead")
        try:
            self.resource._queue.remove(self)
        except ValueError:
            pass


class Resource:
    """A server pool with integer capacity and a FIFO wait queue.

    Usage from a process generator::

        req = resource.request()
        yield req
        try:
            ...  # hold the slot
        finally:
            resource.release(req)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._queue: list[Request] = []
        self._users: set[Request] = set()
        #: Peak simultaneous users observed (for reporting).
        self.peak_in_use = 0
        #: Total grants ever made.
        self.total_grants = 0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        req = Request(self.sim, self)
        self._queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise SimkitError(f"release() of a request not holding {self.name!r}")
        self._users.discard(request)
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._pop_next()
            self._users.add(req)
            self.total_grants += 1
            self.peak_in_use = max(self.peak_in_use, len(self._users))
            req.succeed(req)

    def _pop_next(self) -> Request:
        return self._queue.pop(0)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Resource {self.name} {self.in_use}/{self.capacity} queued={self.queue_length}>"


class PriorityRequest(Request):
    """Request carrying a priority (lower = more urgent) and an arrival seq."""

    __slots__ = ("priority", "seq")

    def __init__(self, sim: "Simulator", resource: "Resource", priority: int, seq: int):
        super().__init__(sim, resource)
        self.priority = priority
        self.seq = seq


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority, then FIFO."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "priority-resource"):
        super().__init__(sim, capacity, name)
        self._arrivals = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        self._arrivals += 1
        req = PriorityRequest(self.sim, self, priority, self._arrivals)
        self._queue.append(req)
        self._grant()
        return req

    def _pop_next(self) -> Request:
        best_index = min(
            range(len(self._queue)),
            key=lambda i: (self._queue[i].priority, self._queue[i].seq),  # type: ignore[attr-defined]
        )
        return self._queue.pop(best_index)


class Store:
    """An unbounded-or-bounded FIFO store of Python objects.

    ``put(item)`` and ``get()`` both return events.  ``get`` may take a
    ``predicate`` to match a specific item (FilterStore behaviour).
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "store"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[tuple[Event, Optional[Callable[[Any], bool]]]] = []
        self._putters: list[tuple[Event, Any]] = []

    def put(self, item: Any) -> Event:
        """Add an item; triggers once there is room."""
        ev = Event(self.sim, name=f"put({self.name})")
        self._putters.append((ev, item))
        self._settle()
        return ev

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return an item (optionally the first matching one)."""
        ev = Event(self.sim, name=f"get({self.name})")
        self._getters.append((ev, predicate))
        self._settle()
        return ev

    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while capacity remains.
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.pop(0)
                self.items.append(item)
                ev.succeed(item)
                progress = True
            # Serve getters.
            i = 0
            while i < len(self._getters):
                ev, predicate = self._getters[i]
                index = None
                if predicate is None:
                    index = 0 if self.items else None
                else:
                    for j, candidate in enumerate(self.items):
                        if predicate(candidate):
                            index = j
                            break
                if index is None:
                    i += 1
                    continue
                item = self.items.pop(index)
                self._getters.pop(i)
                ev.succeed(item)
                progress = True


class Container:
    """A continuous level (e.g. bytes of free capacity) with blocking put/get."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ):
        if init < 0 or init > capacity:
            raise ValueError("init level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._getters: list[tuple[Event, float]] = []
        self._putters: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("put amount must be >= 0")
        ev = Event(self.sim, name=f"put({self.name})")
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers once that much is available."""
        if amount < 0:
            raise ValueError("get amount must be >= 0")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds container capacity {self.capacity}")
        ev = Event(self.sim, name=f"get({self.name})")
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += amount
                    ev.succeed(amount)
                    progress = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.pop(0)
                    self._level -= amount
                    ev.succeed(amount)
                    progress = True
