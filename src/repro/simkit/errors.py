"""Exception types used by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimkitError(Exception):
    """Base class for all kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early.

    User code may raise it from a process to halt the whole simulation; the
    event loop catches it and returns cleanly.
    """


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the process was interrupted (e.g. a preempting transfer, a failed node).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
