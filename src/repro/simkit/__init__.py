"""Deterministic discrete-event simulation kernel for the LSDF reproduction.

``repro.simkit`` is a small, self-contained DES framework in the style of
SimPy: simulation *processes* are Python generators that ``yield`` events
(timeouts, resource requests, other processes) and are resumed by the
:class:`~repro.simkit.core.Simulator` event loop when those events trigger.

The kernel is the substrate for every simulated subsystem of the facility —
the 10 GE network, the disk arrays and tape library, HDFS, the MapReduce
scheduler, and the OpenNebula-style cloud.  Determinism is a hard guarantee:
given the same seed, every simulation in this repository replays the exact
same event trace (events are totally ordered by ``(time, priority, seq)``).

Public surface
--------------
:class:`Simulator`
    The event loop: ``now``, ``process()``, ``timeout()``, ``run()``.
:class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`, :class:`AnyOf`
    Event types usable from process generators.
:class:`Resource`, :class:`PriorityResource`, :class:`Store`, :class:`Container`
    Shared-resource primitives (servers, queues, capacity levels).
:class:`Interrupt`
    Exception thrown into a process by :meth:`Process.interrupt`.
:mod:`~repro.simkit.monitor`
    Statistics collection (tallies, counters, time-weighted series).
:mod:`~repro.simkit.rand`
    Seeded, spawnable random streams.
:mod:`~repro.simkit.units`
    Byte/second unit constants and formatting helpers.
"""

from repro.simkit.core import Simulator
from repro.simkit.errors import Interrupt, SimkitError, StopSimulation
from repro.simkit.events import AllOf, AnyOf, Event, Process, Timeout
from repro.simkit.monitor import Counter, Tally, TimeSeries, TimeWeighted
from repro.simkit.rand import RandomSource
from repro.simkit.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomSource",
    "Resource",
    "SimkitError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Tally",
    "TimeSeries",
    "TimeWeighted",
    "Timeout",
]
