"""Event types for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with an attached value (or
exception).  Events move through three states:

``pending``
    Created but not yet scheduled; nobody knows when (or if) it happens.
``triggered``
    ``succeed()``/``fail()`` was called; the event sits in the simulator's
    heap with a concrete fire time.
``processed``
    The event loop popped it and ran its callbacks (resuming any processes
    waiting on it).

Processes (:class:`Process`) are themselves events: they trigger when their
generator returns, carrying the generator's return value — so one process can
``yield`` another to join on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.simkit.errors import Interrupt, SimkitError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.core import Simulator

# Scheduling priorities: lower sorts earlier among simultaneous events.
URGENT = 0
NORMAL = 1
LOW = 2


class Event:
    """A one-shot simulation event with callbacks.

    Parameters
    ----------
    sim:
        The owning :class:`Simulator`.
    name:
        Optional label used in ``repr`` and traces.
    """

    __slots__ = ("sim", "_name", "callbacks", "_value", "_exception", "_state", "defused")

    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    def __init__(self, sim: "Simulator", name: Optional[str] = None):
        self.sim = sim
        self._name = name
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = Event.PENDING
        #: Set by a handler to acknowledge a failure so the kernel does not
        #: escalate an unhandled failed event to the top level.
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def name(self) -> Optional[str]:
        """Label used in ``repr`` and traces.

        A property (rather than a plain slot) so hot subclasses such as
        :class:`Timeout` can render their label *lazily* — formatting an
        f-string per event is pure overhead when nobody reads it.
        """
        return self._name

    @name.setter
    def name(self, value: Optional[str]) -> None:
        self._name = value

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event loop has run this event's callbacks."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self.triggered and self._exception is None

    @property
    def failed(self) -> bool:
        """True if the event triggered with an exception."""
        return self.triggered and self._exception is not None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed."""
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None``."""
        return self._exception

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully after ``delay`` sim-seconds."""
        if self._state != Event.PENDING:
            raise SimkitError(f"{self!r} has already been triggered")
        self._value = value
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay=delay, priority=priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception after ``delay`` sim-seconds."""
        if self._state != Event.PENDING:
            raise SimkitError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = Event.TRIGGERED
        self.sim._schedule(self, delay=delay, priority=priority)
        return self

    # -- kernel hooks -------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called exactly once, by the event loop."""
        self._state = Event.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = ("pending", "triggered", "processed")[self._state]
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` sim-seconds after creation.

    The hottest event type in the facility (every service time is one), so
    construction is inlined — slots are assigned directly rather than
    through :meth:`Event.__init__`, and the ``Timeout(...)`` label is
    rendered lazily by the :attr:`name` property.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._name = None
        self.callbacks = []
        self._value = value
        self._exception = None
        self._state = Event.TRIGGERED
        self.defused = False
        self.delay = delay
        sim._schedule(self, delay=delay, priority=priority)

    @property
    def name(self) -> str:
        """Lazily formatted ``Timeout(<delay>)`` label."""
        return f"Timeout({self.delay:.6g})"


class Callback(Event):
    """Internal event type behind :meth:`Simulator.call_at`.

    Runs a bare thunk when processed; the ``call_at(<when>)`` label is
    rendered lazily and construction bypasses :meth:`Event.__init__`
    (timer rescheduling in netsim creates one of these per rebalance).
    """

    __slots__ = ("fn", "when")

    def __init__(self, sim: "Simulator", when: float, fn: Callable[[], None], priority: int = NORMAL):
        self.sim = sim
        self._name = None
        self.callbacks = []
        self._value = None
        self._exception = None
        self._state = Event.TRIGGERED
        self.defused = False
        self.fn = fn
        self.when = when
        sim._schedule(self, delay=when - sim.now, priority=priority)

    @property
    def name(self) -> str:
        """Lazily formatted ``call_at(<when>)`` label."""
        return f"call_at({self.when:.6g})"

    def _process(self) -> None:
        self._state = Event.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        self.fn()
        for callback in callbacks:
            callback(self)


class Process(Event):
    """A running simulation process, wrapping a generator.

    The process is itself an event that triggers when the generator returns;
    its value is the generator's return value.  Inside the generator,
    ``yield <event>`` suspends until the event triggers; if the event failed,
    its exception is thrown into the generator (which may catch it).

    Other processes may call :meth:`interrupt` to throw an
    :class:`~repro.simkit.errors.Interrupt` into the generator at the current
    simulation time.
    """

    __slots__ = ("_gen", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._gen = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        boot = Event(sim, name=f"init:{self.name}")
        boot.callbacks.append(self._resume)
        boot.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == Event.PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process raises
        :class:`~repro.simkit.errors.SimkitError`; a process must not
        interrupt itself.
        """
        if not self.is_alive:
            raise SimkitError(f"cannot interrupt finished process {self.name!r}")
        if self.sim.active_process is self:
            raise SimkitError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(self._resume)
        poke.defused = True
        poke.fail(Interrupt(cause), priority=URGENT)

    # -- generator driving ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        self._target = None
        try:
            while True:
                try:
                    exc = event._exception
                    if exc is not None:
                        # Mark handled (a deliberate interrupt already is)
                        # and raise inside the generator.
                        event.defused = True
                        next_event = self._gen.throw(exc)
                    else:
                        next_event = self._gen.send(event._value)
                except StopIteration as stop:
                    self._state = Event.PENDING  # allow succeed()
                    self.succeed(stop.value, priority=URGENT)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self._state = Event.PENDING
                    self.fail(exc, priority=URGENT)
                    return

                if not isinstance(next_event, Event):
                    error = SimkitError(
                        f"process {self.name!r} yielded {next_event!r}, which is not an Event"
                    )
                    try:
                        self._gen.throw(error)
                    except StopIteration as stop:
                        self._state = Event.PENDING
                        self.succeed(stop.value, priority=URGENT)
                        return
                    except BaseException as exc2:
                        self._state = Event.PENDING
                        self.fail(exc2, priority=URGENT)
                        return
                    continue
                if next_event._state == Event.PROCESSED:
                    # Already happened: resume immediately with its outcome.
                    event = next_event
                    continue
                next_event.callbacks.append(self._resume)
                self._target = next_event
                return
        finally:
            self.sim._active_process = None


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"{name} requires Events, got {type(ev).__name__}")
            if ev.sim is not sim:
                raise SimkitError("cannot mix events from different simulators")
        self._pending = sum(1 for ev in self.events if not ev.processed)
        already_failed = next((ev for ev in self.events if ev.processed and ev.failed), None)
        if already_failed is not None:
            already_failed.defused = True
            self.fail(already_failed._exception, priority=URGENT)
            return
        if self._ready():
            self.succeed(self._collect(), priority=URGENT)
        else:
            for ev in self.events:
                if not ev.processed:
                    ev.callbacks.append(self._check)
                elif ev.failed:
                    ev.defused = True

    def _ready(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev._value for ev in self.events if ev.ok}

    def _check(self, event: Event) -> None:
        self._pending -= 1
        failed = event._exception is not None
        if self._state >= Event.TRIGGERED:
            if failed:
                event.defused = True
            return
        if failed:
            event.defused = True
            self.fail(event._exception, priority=URGENT)
        elif self._ready():
            self.succeed(self._collect(), priority=URGENT)


class AllOf(_Condition):
    """Triggers when *all* constituent events have triggered.

    Value is a dict mapping each event to its value.  Fails fast if any
    constituent fails.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "AllOf")

    def _ready(self) -> bool:
        return self._pending == 0 and all(ev.ok for ev in self.events)


class AnyOf(_Condition):
    """Triggers when *any* constituent event has *fired* (been processed).

    Merely-scheduled events don't count: a :class:`Timeout` is born
    triggered (it knows its fire time at creation), so testing ``ev.ok``
    here would make any race against a timer resolve instantly at
    construction instead of at the timer's deadline.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        if not tuple(events := tuple(events)):
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim, events, "AnyOf")

    def _ready(self) -> bool:
        return any(ev.processed and ev.ok for ev in self.events)

    def _collect(self) -> Any:
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}
