"""Pluggable event-queue backends for the simulation kernel.

The kernel orders events by the 5-tuple ``(time, priority, tie, seq,
event)`` and only ever needs three queue operations: ``push`` an entry,
``pop`` the minimum, and ``peek_time`` at the minimum's timestamp.  This
module factors that contract out of :class:`~repro.simkit.core.Simulator`
so the backing structure is a construction-time choice:

:class:`HeapScheduler`
    The classic binary heap (``heapq``) — O(log n) per operation, minimal
    constant factors, the default and the reference ordering oracle.

:class:`CalendarQueueScheduler`
    A calendar queue (Brown 1988): entries hash into time buckets of a
    fixed width and the pop scan walks the current "day" forward, giving
    O(1) amortised push/pop for the timer-heavy regimes fluid-mode runs
    produce.  Each bucket is itself a small heap over the *full* 5-tuple,
    and same-timestamp entries always land in the same bucket (the bucket
    index is a pure function of the timestamp) — so the pop order is
    **identical** to the heap's, tie-breaks included.  The differential
    property tests (``tests/simkit/test_scheduler.py``) assert exact
    pop-sequence equality between the two backends, which is what makes
    the calendar queue trustworthy: same seed, same scheduler-independent
    trace, byte for byte.

Entries must be pushed with non-decreasing *pop* progress in mind — the
kernel never schedules into the past — but the calendar queue tolerates
out-of-order pushes anyway (an earlier push rewinds the scan cursor), so
it is safe under ``call_at`` rewinds and priority games.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any

_INFINITY = float("inf")

#: Entry tuples are ``(time, priority, tie, seq, event)`` — the kernel's
#: total order.  Schedulers treat them opaquely beyond ``entry[0]``.
Entry = tuple  # (float, int, int, int, Any)


class HeapScheduler:
    """The default binary-heap event queue (and the ordering oracle)."""

    kind = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def push(self, entry: Entry) -> None:
        """Insert one entry."""
        heappush(self._heap, entry)

    def pop(self) -> Entry:
        """Remove and return the minimum entry (IndexError when empty)."""
        return heappop(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the minimum entry, or ``inf`` when empty."""
        heap = self._heap
        return heap[0][0] if heap else _INFINITY

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapScheduler queued={len(self._heap)}>"


class CalendarQueueScheduler:
    """A calendar queue preserving the exact heap pop order.

    Parameters
    ----------
    bucket_width:
        Initial seconds per bucket (self-tunes at every resize).
    nbuckets:
        Initial bucket count (grows/shrinks by doubling/halving between
        ``min_buckets`` and ``max_buckets`` as the population changes).

    Ordering guarantee
    ------------------
    The bucket index of an entry depends only on its timestamp, so any
    two entries with the same timestamp share a bucket, and each bucket
    is a heap over the full ``(time, priority, tie, seq, event)`` tuple.
    The scan pops a bucket's top only while it falls inside the current
    day's window, then moves to the next day — which visits timestamps in
    globally non-decreasing order.  Together that reproduces the binary
    heap's total order exactly (the property tests compare the two pop
    sequences element-wise).
    """

    kind = "calendar"

    __slots__ = ("_buckets", "_nb", "_width", "_day", "_n", "_far",
                 "_min_buckets", "_max_buckets", "_min_width")

    def __init__(self, bucket_width: float = 1.0, nbuckets: int = 64,
                 min_buckets: int = 16, max_buckets: int = 1 << 16) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be > 0")
        if nbuckets < 1 or min_buckets < 1 or max_buckets < min_buckets:
            raise ValueError("bad bucket-count bounds")
        self._width = float(bucket_width)
        self._min_width = 1e-9
        self._nb = int(nbuckets)
        self._min_buckets = int(min_buckets)
        self._max_buckets = int(max_buckets)
        self._buckets: list[list[Entry]] = [[] for _ in range(self._nb)]
        #: Current scan day: the window ``[day*width, (day+1)*width)``.
        self._day = 0
        self._n = 0
        #: Non-finite timestamps (``timeout(inf)``) cannot be bucketed;
        #: they wait in a plain heap and sort after every finite entry.
        self._far: list[Entry] = []

    def push(self, entry: Entry) -> None:
        """Insert one entry, rewinding the scan if it lands earlier."""
        when = entry[0]
        if not math.isfinite(when):
            heappush(self._far, entry)
            self._n += 1
            return
        day = int(when // self._width)
        heappush(self._buckets[day % self._nb], entry)
        self._n += 1
        if day < self._day:
            self._day = day
        if (self._n - len(self._far) > (self._nb << 1)
                and self._nb < self._max_buckets):
            self._resize(self._nb << 1)

    def pop(self) -> Entry:
        """Remove and return the minimum entry (IndexError when empty)."""
        if self._n == 0:
            raise IndexError("pop from an empty CalendarQueueScheduler")
        bucket = self._locate()
        self._n -= 1
        entry = heappop(bucket)
        if (self._n - len(self._far) < (self._nb >> 2)
                and self._nb > self._min_buckets):
            self._resize(self._nb >> 1)
        return entry

    def peek_time(self) -> float:
        """Timestamp of the minimum entry, or ``inf`` when empty.

        Advances the scan cursor past empty days as a side effect (safe:
        no entry precedes the committed cursor), so a peek immediately
        followed by the pop costs one scan, not two.
        """
        if self._n == 0:
            return _INFINITY
        return self._locate()[0][0]

    def _locate(self) -> list[Entry]:
        """The bucket whose top is the global minimum (cursor committed).

        Invariant on entry and exit: no finite entry's day precedes
        ``self._day`` (pushes rewind the cursor).  The scan therefore
        visits each bucket at most once per call; if a full lap finds
        nothing in-window the region is sparse and we jump straight to
        the earliest bucket top (never looping, even under floating-point
        ``//`` edge cases — the jump returns its bucket directly).
        """
        buckets, nb, width = self._buckets, self._nb, self._width
        if self._n == len(self._far):
            return self._far
        day = self._day
        for _ in range(nb):
            bucket = buckets[day % nb]
            # The day of the bucket top is recomputed with the *same*
            # floor division push used — a multiplied window bound
            # ((day+1)*width) can disagree with ``//`` by one ulp and
            # skip a bucket forever.
            if bucket and int(bucket[0][0] // width) == day:
                self._day = day
                return bucket
            day += 1
        best_bucket: list[Entry] | None = None
        best: Entry | None = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_bucket = bucket
        assert best_bucket is not None and best is not None
        self._day = int(best[0] // width)
        return best_bucket

    def _resize(self, new_nb: int) -> None:
        """Re-bucket everything into ``new_nb`` buckets, re-tuning width.

        The new width targets ~2 entries per bucket over the queue's
        current leading edge: twice the mean gap between the first (up
        to) 256 distinct timestamps.  Deterministic — a pure function of
        the queue contents — so same-seed runs resize identically.
        """
        entries = [entry for bucket in self._buckets for entry in bucket]
        times = sorted(entry[0] for entry in entries)
        lead = times[:256]
        gaps_total, gaps_n = 0.0, 0
        for i in range(1, len(lead)):
            gap = lead[i] - lead[i - 1]
            if gap > 0.0:
                gaps_total += gap
                gaps_n += 1
        if gaps_n:
            self._width = max(2.0 * (gaps_total / gaps_n), self._min_width)
        self._nb = new_nb
        self._buckets = [[] for _ in range(new_nb)]
        width = self._width
        for entry in entries:
            heappush(self._buckets[int(entry[0] // width) % new_nb], entry)
        self._day = int(times[0] // width) if times else 0

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CalendarQueueScheduler queued={self._n} "
                f"buckets={self._nb} width={self._width:.3g}>")


#: Registry of scheduler backends selectable by name (the
#: ``Simulator(scheduler=...)`` / ``FacilityConfig.scheduler`` knob).
SCHEDULERS: dict[str, type] = {
    HeapScheduler.kind: HeapScheduler,
    CalendarQueueScheduler.kind: CalendarQueueScheduler,
}


def make_scheduler(spec: Any = "heap"):
    """Resolve a scheduler spec: a registry name, ``None`` (default), or
    an already-constructed backend instance (duck-typed)."""
    if spec is None:
        return HeapScheduler()
    if isinstance(spec, str):
        try:
            return SCHEDULERS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r} (want one of "
                f"{sorted(SCHEDULERS)})") from None
    return spec
