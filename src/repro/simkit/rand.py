"""Seeded, spawnable random streams.

Every stochastic component in the reproduction draws from a
:class:`RandomSource` derived from the simulator's root source via
:meth:`RandomSource.spawn`.  Spawning uses numpy's ``SeedSequence`` child
spawning, so each component owns an independent stream and adding a new
consumer never perturbs the draws seen by existing ones — a prerequisite for
run-to-run comparability of benchmark configurations.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np


class RandomSource:
    """A wrapper around ``numpy.random.Generator`` with named substreams."""

    def __init__(self, seed: Optional[int] = 0, _seq: Optional[np.random.SeedSequence] = None):
        self.seed_sequence = _seq if _seq is not None else np.random.SeedSequence(seed)
        self.generator = np.random.Generator(np.random.PCG64(self.seed_sequence))
        self._children: dict[str, RandomSource] = {}

    def spawn(self, name: str) -> "RandomSource":
        """Return the substream for ``name``, creating it deterministically.

        The same name always maps to the same substream for a given parent,
        regardless of the order in which names are first requested.
        """
        if name not in self._children:
            # Derive the child from (parent entropy, stable hash of name) so
            # that creation order does not matter.  The hash must cover the
            # FULL name: truncating to a prefix collapses every name sharing
            # its first bytes (e.g. "straggler.m0001@a" / "straggler.m0002@b")
            # onto one substream, silently correlating draws that the model
            # treats as independent.
            digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
            child_seq = np.random.SeedSequence(
                entropy=self.seed_sequence.entropy,
                spawn_key=self.seed_sequence.spawn_key
                + (int.from_bytes(digest, "big") % (2**63),),
            )
            self._children[name] = RandomSource(_seq=child_seq)
        return self._children[name]

    # -- convenience draws -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.generator.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        """One normal draw."""
        return float(self.generator.normal(mean, std))

    def lognormal_mean(self, mean: float, cv: float) -> float:
        """One lognormal draw parameterised by its *mean* and coefficient of
        variation ``cv = std/mean`` (handy for service-time jitter)."""
        if mean <= 0:
            raise ValueError("lognormal mean must be positive")
        sigma2 = np.log(1.0 + cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self.generator.lognormal(mu, np.sqrt(sigma2)))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def choice(self, seq: Sequence):
        """Choose one element of a sequence uniformly."""
        if len(seq) == 0:
            raise ValueError("choice from empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> list:
        """Shuffle a list in place and return it."""
        self.generator.shuffle(seq)
        return seq

    def pareto_bounded(self, shape: float, lo: float, hi: float) -> float:
        """Bounded-Pareto draw — heavy-tailed sizes clipped to ``[lo, hi]``."""
        if not (0 < lo <= hi):
            raise ValueError("require 0 < lo <= hi")
        u = self.uniform(0.0, 1.0)
        # Inverse CDF of the bounded Pareto distribution.
        la, ha = lo**shape, hi**shape
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)
        return float(min(max(x, lo), hi))
