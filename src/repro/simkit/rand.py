"""Seeded, spawnable random streams.

Every stochastic component in the reproduction draws from a
:class:`RandomSource` derived from the simulator's root source via
:meth:`RandomSource.spawn`.  Spawning uses numpy's ``SeedSequence`` child
spawning, so each component owns an independent stream and adding a new
consumer never perturbs the draws seen by existing ones — a prerequisite for
run-to-run comparability of benchmark configurations.

numpy is an *optional* extra (``pip install repro[fast]``): without it,
:class:`RandomSource` falls back to a pure-python generator backed by
:mod:`random` with the same method surface and the same spawn-independence
guarantee.  The fallback draws come from a different bit stream than
PCG64 — same-seed results are reproducible *within* a mode but not across
the numpy/no-numpy boundary (every simulation is still single-mode, so
bit-for-bit determinism holds wherever it held before).
"""

from __future__ import annotations

import hashlib
import math
import random as _pyrandom  # lint: disable=stdlib-random -- fallback
# generator backend for no-numpy installs: every instance is an explicitly
# seeded random.Random(seed64), never the process-global functions.
from typing import Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

#: numpy's scalar transcendentals when available (bit-compatibility with
#: the historical draws), :mod:`math` otherwise.
_log = math.log if np is None else np.log
_sqrt = math.sqrt if np is None else np.sqrt


class _FallbackSeedSequence:
    """A minimal ``SeedSequence`` stand-in: entropy + spawn-key tuple."""

    __slots__ = ("entropy", "spawn_key")

    def __init__(self, entropy: Optional[int] = None, spawn_key: tuple = ()):
        self.entropy = 0 if entropy is None else int(entropy)
        self.spawn_key = tuple(spawn_key)

    def _seed64(self) -> int:
        material = repr((self.entropy, self.spawn_key)).encode("utf-8")
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "big")


class _FallbackGenerator:
    """``numpy.random.Generator`` method surface over :mod:`random`.

    Scalar draws only — vectorised calls (``size=...``) require numpy and
    raise :class:`TypeError` here, pointing at the ``[fast]`` extra.
    """

    __slots__ = ("_rng",)

    def __init__(self, seed64: int):
        self._rng = _pyrandom.Random(seed64)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self._rng.random()

    def exponential(self, scale: float = 1.0) -> float:
        return -scale * math.log(1.0 - self._rng.random())

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return self._rng.gauss(loc, scale)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return math.exp(self._rng.gauss(mean, sigma))

    def integers(self, low: int, high: Optional[int] = None, size=None) -> int:
        if size is not None:
            raise TypeError(
                "vectorised integers(size=...) needs numpy "
                "(pip install repro[fast])")
        if high is None:
            low, high = 0, low
        return self._rng.randrange(low, high)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)


class RandomSource:
    """A wrapper around ``numpy.random.Generator`` with named substreams
    (pure-python fallback when numpy is not installed)."""

    def __init__(self, seed: Optional[int] = 0, _seq=None):
        if np is not None:
            self.seed_sequence = (
                _seq if _seq is not None else np.random.SeedSequence(seed))
            self.generator = np.random.Generator(
                np.random.PCG64(self.seed_sequence))
        else:
            self.seed_sequence = (
                _seq if _seq is not None else _FallbackSeedSequence(seed))
            self.generator = _FallbackGenerator(self.seed_sequence._seed64())
        self._children: dict[str, RandomSource] = {}

    def spawn(self, name: str) -> "RandomSource":
        """Return the substream for ``name``, creating it deterministically.

        The same name always maps to the same substream for a given parent,
        regardless of the order in which names are first requested.
        """
        if name not in self._children:
            # Derive the child from (parent entropy, stable hash of name) so
            # that creation order does not matter.  The hash must cover the
            # FULL name: truncating to a prefix collapses every name sharing
            # its first bytes (e.g. "straggler.m0001@a" / "straggler.m0002@b")
            # onto one substream, silently correlating draws that the model
            # treats as independent.
            digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
            spawn_key = self.seed_sequence.spawn_key + (
                int.from_bytes(digest, "big") % (2**63),)
            if np is not None:
                child_seq = np.random.SeedSequence(
                    entropy=self.seed_sequence.entropy, spawn_key=spawn_key)
            else:
                child_seq = _FallbackSeedSequence(
                    entropy=self.seed_sequence.entropy, spawn_key=spawn_key)
            self._children[name] = RandomSource(_seq=child_seq)
        return self._children[name]

    # -- convenience draws -------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.generator.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        """One normal draw."""
        return float(self.generator.normal(mean, std))

    def lognormal_mean(self, mean: float, cv: float) -> float:
        """One lognormal draw parameterised by its *mean* and coefficient of
        variation ``cv = std/mean`` (handy for service-time jitter)."""
        if mean <= 0:
            raise ValueError("lognormal mean must be positive")
        sigma2 = _log(1.0 + cv * cv)
        mu = _log(mean) - sigma2 / 2.0
        return float(self.generator.lognormal(mu, _sqrt(sigma2)))

    def integers(self, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def choice(self, seq: Sequence):
        """Choose one element of a sequence uniformly."""
        if len(seq) == 0:
            raise ValueError("choice from empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> list:
        """Shuffle a list in place and return it."""
        self.generator.shuffle(seq)
        return seq

    def pareto_bounded(self, shape: float, lo: float, hi: float) -> float:
        """Bounded-Pareto draw — heavy-tailed sizes clipped to ``[lo, hi]``."""
        if not (0 < lo <= hi):
            raise ValueError("require 0 < lo <= hi")
        u = self.uniform(0.0, 1.0)
        # Inverse CDF of the bounded Pareto distribution.
        la, ha = lo**shape, hi**shape
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)
        return float(min(max(x, lo), hi))
