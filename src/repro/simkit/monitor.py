"""Statistics collection for simulations and benchmarks.

Four collectors cover the reporting needs of the whole reproduction:

:class:`Tally`
    Un-timed samples (latencies, sizes) with mean/std/percentiles.
:class:`Counter`
    Monotonic counts and sums (bytes moved, jobs finished).
:class:`TimeSeries`
    Explicit ``(t, value)`` samples for plotting-style output.
:class:`TimeWeighted`
    A piecewise-constant signal (queue length, utilisation) whose mean is
    weighted by how long each value was held.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None


def _percentile(samples: list[float], q: float) -> float:
    """Pure-python linear-interpolation percentile (numpy's default
    method), used when numpy is not installed."""
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] + (data[hi] - data[lo]) * frac


class Tally:
    """Accumulates unweighted samples and reports summary statistics."""

    def __init__(self, name: str = "tally"):
        self.name = name
        self._samples: list[float] = []

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        if not self._samples:
            return math.nan
        if np is not None:
            return float(np.mean(self._samples))
        return math.fsum(self._samples) / len(self._samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=0; NaN when empty)."""
        if not self._samples:
            return math.nan
        if np is not None:
            return float(np.std(self._samples))
        mean = self.mean
        return math.sqrt(
            math.fsum((v - mean) ** 2 for v in self._samples)
            / len(self._samples))

    @property
    def min(self) -> float:
        """Smallest sample (NaN when empty)."""
        if not self._samples:
            return math.nan
        return float(np.min(self._samples)) if np is not None else min(self._samples)

    @property
    def max(self) -> float:
        """Largest sample (NaN when empty)."""
        if not self._samples:
            return math.nan
        return float(np.max(self._samples)) if np is not None else max(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        if not self._samples:
            return 0.0
        return float(np.sum(self._samples)) if np is not None else math.fsum(self._samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the samples (NaN when empty)."""
        if not self._samples:
            return math.nan
        if np is not None:
            return float(np.percentile(self._samples, q))
        return _percentile(self._samples, q)

    def values(self):
        """All samples as an array (copy; a plain list without numpy)."""
        if np is not None:
            return np.asarray(self._samples, dtype=float)
        return [float(v) for v in self._samples]

    def summary(self) -> dict:
        """Dict of the headline statistics."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tally {self.name} n={self.count} mean={self.mean:.4g}>"


class Counter:
    """A named monotonic accumulator."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("Counter.add amount must be >= 0")
        self.value += amount
        self.events += 1

    def rate(self, elapsed: float) -> float:
        """Average accumulation rate over ``elapsed`` seconds."""
        return self.value / elapsed if elapsed > 0 else math.nan

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name} value={self.value:.6g} events={self.events}>"


class TimeSeries:
    """Explicit ``(t, value)`` samples, e.g. for queue-depth plots."""

    def __init__(self, name: str = "series"):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, t: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError("TimeSeries samples must have non-decreasing time")
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self):
        """``(times, values)`` as numpy arrays (copies; lists without numpy)."""
        if np is not None:
            return (np.asarray(self.times, dtype=float),
                    np.asarray(self.values, dtype=float))
        return list(self.times), list(self.values)

    def resample(self, times: Sequence[float]):
        """Zero-order-hold resample at the requested times."""
        if not self.times:
            raise ValueError("resample of empty TimeSeries")
        if np is not None:
            src_t, src_v = self.as_arrays()
            idx = np.searchsorted(src_t, np.asarray(times, dtype=float),
                                  side="right") - 1
            idx = np.clip(idx, 0, len(src_v) - 1)
            return src_v[idx]
        out = []
        for t in times:
            i = bisect.bisect_right(self.times, float(t)) - 1
            out.append(self.values[max(0, min(i, len(self.values) - 1))])
        return out


class TimeWeighted:
    """A piecewise-constant signal with time-weighted statistics.

    Typical use: track a queue length — call :meth:`set` whenever the value
    changes; :meth:`mean` then gives the *time-averaged* queue length.
    """

    def __init__(self, t0: float = 0.0, value: float = 0.0, name: str = "level"):
        self.name = name
        self._last_t = float(t0)
        self._value = float(value)
        self._weighted_sum = 0.0
        self._elapsed = 0.0
        self._max = float(value)
        self._min = float(value)
        self.history = TimeSeries(name=f"{name}.history")
        self.history.record(t0, value)

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def set(self, t: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``t``."""
        if t < self._last_t:
            raise ValueError("TimeWeighted updates must have non-decreasing time")
        dt = t - self._last_t
        self._weighted_sum += self._value * dt
        self._elapsed += dt
        self._last_t = t
        self._value = float(value)
        self._max = max(self._max, self._value)
        self._min = min(self._min, self._value)
        self.history.record(t, value)

    def add(self, t: float, delta: float) -> None:
        """Shift the signal by ``delta`` at time ``t``."""
        self.set(t, self._value + delta)

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, optionally extending the last value to ``until``."""
        weighted, elapsed = self._weighted_sum, self._elapsed
        if until is not None:
            if until < self._last_t:
                raise ValueError("until precedes the last update")
            weighted += self._value * (until - self._last_t)
            elapsed += until - self._last_t
        return weighted / elapsed if elapsed > 0 else self._value

    @property
    def max(self) -> float:
        """Largest value ever held."""
        return self._max

    @property
    def min(self) -> float:
        """Smallest value ever held."""
        return self._min
