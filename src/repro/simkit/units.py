"""Units and formatting helpers.

Conventions used across the whole reproduction:

* **bytes** for data sizes (decimal multiples, matching how storage vendors
  and the paper quote capacities: 1 TB = 10^12 bytes);
* **seconds** for time;
* **bytes/second** for bandwidth.  Network link speeds quoted in bits/second
  (e.g. "10 GE") are converted with :func:`gbit_per_s`.
"""

from __future__ import annotations

# -- data sizes (decimal, as the paper quotes capacities) ----------------------
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12
PB = 10**15

# Binary multiples, for block-size style quantities.
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

# -- time ----------------------------------------------------------------------
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
YEAR = 365.0 * DAY


def gbit_per_s(gbits: float) -> float:
    """Convert a link speed in Gbit/s to bytes/s (decimal)."""
    return gbits * 1e9 / 8.0


def mbit_per_s(mbits: float) -> float:
    """Convert a link speed in Mbit/s to bytes/s (decimal)."""
    return mbits * 1e6 / 8.0


def fmt_bytes(n: float) -> str:
    """Human-readable decimal byte count, e.g. ``fmt_bytes(2e12) == '2.00 TB'``."""
    n = float(n)
    for unit, suffix in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "kB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth, e.g. ``'1.25 GB/s'``."""
    return fmt_bytes(bytes_per_s) + "/s"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``fmt_duration(90061) == '1d 1h 1m 1s'``."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1000:.1f} ms"
    if seconds < 60:
        return f"{seconds:.1f} s"
    parts = []
    days, rem = divmod(seconds, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes, secs = divmod(rem, MINUTE)
    if days:
        parts.append(f"{int(days)}d")
    if hours:
        parts.append(f"{int(hours)}h")
    if minutes:
        parts.append(f"{int(minutes)}m")
    if secs >= 1 or not parts:
        parts.append(f"{int(secs)}s")
    return " ".join(parts)
