"""HDFS data model: blocks and datanode descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Block:
    """One block of a file and its replica locations."""

    block_id: int
    path: str
    index: int
    size: float
    replicas: list[str] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Block #{self.block_id} {self.path}[{self.index}] on {self.replicas}>"


@dataclass
class DataNodeInfo:
    """NameNode-side view of one datanode."""

    name: str
    rack: str
    capacity: float
    used: float = 0.0
    alive: bool = True

    @property
    def free(self) -> float:
        """Remaining block-storage bytes."""
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Used fraction in [0, 1]."""
        return self.used / self.capacity if self.capacity > 0 else 0.0
