"""The DES side of HDFS: timed block I/O over the fluid network.

:class:`HdfsCluster` couples a :class:`~repro.hdfs.namenode.NameNode` with a
:class:`~repro.netsim.network.Network` and per-node disk servers, and turns
namespace operations into simulated time:

* **writes** pipeline each block through its replica chain
  (client -> r1 -> r2 -> r3, as HDFS does), with the disk write at each
  replica overlapping the network hop;
* **reads** go to the closest replica — node-local (no network), rack-local,
  or off-rack — exactly the locality hierarchy MapReduce scheduling exploits;
* **failures** trigger re-replication traffic with bounded parallelism;
* the **balancer** executes planned block moves as real transfers.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.simkit.rand import RandomSource
from repro.telemetry.hub import TelemetryHub
from repro.simkit.resources import Resource
from repro.netsim.builders import build_fat_tree
from repro.netsim.network import Network
from repro.netsim.topology import NoRouteError
from repro.storage.ps import FluidServer
from repro.hdfs.blocks import Block
from repro.hdfs.namenode import HdfsError, NameNode

#: Locality classes in preference order.
LOCALITY_NODE = "node"
LOCALITY_RACK = "rack"
LOCALITY_OFF = "off"


class HdfsCluster:
    """A simulated HDFS deployment.

    Build one directly from existing pieces, or via :meth:`build` which
    creates the rack/core network too (the usual path for experiments).
    """

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        namenode: NameNode,
        disk_bw: float = 80e6,
        rereplication_streams: int = 10,
    ):
        self.sim = sim
        self.net = net
        self.namenode = namenode
        self.disk_bw = float(disk_bw)
        self.disks: dict[str, FluidServer] = {
            name: FluidServer(sim, disk_bw, name=f"disk.{name}")
            for name in namenode.nodes
        }
        self._rerep_slots = Resource(sim, rereplication_streams, name="hdfs.rerep")
        #: Blocks with a re-replication process in flight.  Overlapping
        #: failures each start a full pass; without this guard two passes
        #: can copy the same block to the same target concurrently and the
        #: second commit would register a duplicate holder.
        self._rerep_inflight: set[int] = set()
        reg = TelemetryHub.for_sim(sim).registry
        self.bytes_written = reg.counter(
            "hdfs.bytes_written_total", "Bytes written into HDFS files",
            unit="bytes")
        self.bytes_read = reg.counter(
            "hdfs.bytes_read_total", "Bytes read from HDFS blocks",
            unit="bytes")
        self.read_locality = reg.counter(
            "hdfs.local_reads_total", "Block reads served node-locally")
        self.reads_total = reg.counter(
            "hdfs.reads_total", "Block reads served")
        self.rereplicated_blocks = reg.counter(
            "hdfs.rereplicated_blocks_total",
            "Blocks restored to full replication")
        self.write_latency = reg.summary(
            "hdfs.write_latency_seconds", "Whole-file write latency",
            unit="seconds")
        self.read_latency = reg.summary(
            "hdfs.read_latency_seconds", "Whole-file read latency",
            unit="seconds")
        reg.gauge_fn("hdfs.files", lambda: float(len(self.namenode.files())),
                     "Files in the namespace")
        reg.gauge_fn("hdfs.under_replicated",
                     lambda: float(len(self.namenode.under_replicated)),
                     "Blocks currently below their replication target")
        reg.gauge_fn("hdfs.rerep_inflight",
                     lambda: float(len(self._rerep_inflight)),
                     "Blocks with a re-replication process in flight")
        reg.gauge_fn("hdfs.datanodes_alive",
                     lambda: float(sum(1 for n in self.namenode.nodes.values()
                                       if n.alive)),
                     "Datanodes currently alive")
        reg.gauge_fn("hdfs.datanodes_total",
                     lambda: float(len(self.namenode.nodes)),
                     "Datanodes registered with the namenode")
        reg.gauge_fn("hdfs.used_bytes",
                     lambda: float(self.namenode.total_used),
                     "Raw bytes used across datanodes", unit="bytes")
        reg.gauge_fn("hdfs.capacity_bytes",
                     lambda: float(self.namenode.total_capacity),
                     "Raw capacity across datanodes", unit="bytes")
        reg.gauge_fn("hdfs.utilization_spread",
                     lambda: self.namenode.utilization_spread(),
                     "Max-min utilisation gap across live datanodes")

    # -- construction -----------------------------------------------------
    @classmethod
    def build(
        cls,
        sim: Simulator,
        racks: int = 4,
        nodes_per_rack: int = 15,
        node_capacity: float = 2e12,
        block_size: float = 64 * 2**20,
        replication: int = 3,
        placement: str = "rack_aware",
        node_bw: float = 1e9 / 8,
        rack_uplink_bw: float = 10e9 / 8,
        disk_bw: float = 80e6,
        sharing: str = "maxmin",
        rng: Optional[RandomSource] = None,
    ) -> "HdfsCluster":
        """Create a rack/core cluster network plus namenode in one call.

        Defaults approximate the paper's 60-node analysis cluster: 4 racks
        of 15 commodity nodes with 1 GE NICs, 10 GE rack uplinks, ~2 TB of
        local disk each (-> ~110 TB usable at replication 1, or raw for 3).
        """
        topo, rack_hosts = build_fat_tree(racks, nodes_per_rack, node_bw, rack_uplink_bw)
        net = Network(sim, topo, sharing=sharing)
        namenode = NameNode(
            block_size=block_size,
            replication=replication,
            placement=placement,
            rng=rng or sim.random.spawn("hdfs.namenode"),
        )
        for rack_index, hosts in enumerate(rack_hosts):
            for host in hosts:
                namenode.add_datanode(host, f"rack-{rack_index:02d}", node_capacity)
        return cls(sim, net, namenode, disk_bw=disk_bw)

    # -- locality helpers ------------------------------------------------------
    def locality_of(self, node: str, reader: str) -> str:
        """Locality class of reading ``node``'s data from ``reader``."""
        if node == reader:
            return LOCALITY_NODE
        if reader in self.namenode.nodes and (
            self.namenode.rack_of(node) == self.namenode.rack_of(reader)
        ):
            return LOCALITY_RACK
        return LOCALITY_OFF

    def best_replica(self, block: Block, reader: str) -> tuple[str, str]:
        """(replica node, locality class) of the closest live replica."""
        rank = {LOCALITY_NODE: 0, LOCALITY_RACK: 1, LOCALITY_OFF: 2}
        live = [r for r in block.replicas if self.namenode.nodes[r].alive]
        if not live:
            raise HdfsError(f"block {block.block_id} has no live replica")
        return min(
            ((r, self.locality_of(r, reader)) for r in sorted(live)),
            key=lambda pair: rank[pair[1]],
        )

    def block_locations(self, path: str) -> list[list[str]]:
        """Replica nodes per block of a file (MapReduce split metadata)."""
        return [list(b.replicas) for b in self.namenode.file_blocks(path)]

    # -- writes ------------------------------------------------------------------
    def write_file(self, path: str, size: float, client: str) -> Event:
        """Write a file; blocks stream sequentially, replicas pipeline."""
        return self.sim.process(self._write_file(path, size, client), name=f"hdfs.write:{path}")

    def _write_file(self, path: str, size: float, client: str) -> Generator:
        start = self.sim.now
        blocks = self.namenode.create_file(path, size, writer=client)
        for block in blocks:
            if block.size > 0:
                yield self.sim.process(self._write_block(block, client))
        self.bytes_written.add(size)
        self.write_latency.record(self.sim.now - start)
        return blocks

    def _write_block(self, block: Block, client: str) -> Generator:
        """Pipeline one block through its replica chain.

        Each hop (client->r1, r1->r2, ...) moves the full block; because
        HDFS forwards packets as they arrive, the pipeline completes roughly
        when the *slowest* hop does — modelled by running all hop transfers
        and all replica disk writes concurrently and waiting for all.
        """
        events: list[Event] = []
        chain = [client] + block.replicas
        for src, dst in zip(chain, chain[1:]):
            if src != dst:
                events.append(self.net.transfer(src, dst, block.size, name=f"blk{block.block_id}"))
        for replica in block.replicas:
            events.append(self.disks[replica].submit(block.size))
        if events:
            yield self.sim.all_of(events)

    # -- reads -----------------------------------------------------------------------
    def read_file(self, path: str, reader: str) -> Event:
        """Read a whole file from the closest replicas, block-sequential."""
        return self.sim.process(self._read_file(path, reader), name=f"hdfs.read:{path}")

    def _read_file(self, path: str, reader: str) -> Generator:
        start = self.sim.now
        localities = []
        for block in self.namenode.file_blocks(path):
            if block.size <= 0:
                continue
            locality = yield self.sim.process(self.read_block(block, reader))
            localities.append(locality)
        self.read_latency.record(self.sim.now - start)
        return localities

    def read_block(self, block: Block, reader: str):
        """Read one block from its best replica; returns the locality class."""
        def run() -> Generator:
            replica, locality = self.best_replica(block, reader)
            disk = self.disks[replica].submit(block.size)
            if replica == reader:
                yield disk
            else:
                transfer = self.net.transfer(replica, reader, block.size)
                yield self.sim.all_of([disk, transfer])
            self.bytes_read.add(block.size)
            self.reads_total.add(1)
            if locality == LOCALITY_NODE:
                self.read_locality.add(1)
            return locality

        return run()

    # -- failures / re-replication ------------------------------------------------
    def fail_datanode(self, name: str) -> Event:
        """Kill a datanode and start background re-replication.

        Returns the process-event that completes when replication is
        restored for every block the node held.
        """
        self.namenode.mark_dead(name)
        if self.net.topology.has_node(name):
            self.net.fail_node(name)
        return self.sim.process(self._rereplicate_all(), name=f"hdfs.rerep:{name}")

    def rereplicate_pending(self) -> Event:
        """Re-replicate every currently under-replicated block.

        The public entry point for callers other than :meth:`fail_datanode`
        — the durability layer's repair planner drives it for
        ``under_replicated`` audit findings.  The event value is the number
        of blocks a re-replication process was started for.
        """
        return self.sim.process(self._rereplicate_all(), name="hdfs.rerep:pending")

    def _rereplicate_all(self) -> Generator:
        pending = [
            self.namenode.block(b)
            for b in sorted(self.namenode.under_replicated)
            if b not in self._rerep_inflight
        ]
        self._rerep_inflight.update(b.block_id for b in pending)
        procs = [self.sim.process(self._rereplicate_block(b)) for b in pending]
        if procs:
            yield self.sim.all_of(procs)
        return len(procs)

    def _rereplicate_block(self, block: Block) -> Generator:
        slot = self._rerep_slots.request()
        yield slot
        try:
            while len(block.replicas) < self.namenode.replication:
                sources = [r for r in block.replicas if self.namenode.nodes[r].alive]
                if not sources:
                    return False  # data loss: nothing to copy from
                target = self.namenode.replication_target(block)
                if target is None:
                    return False  # no space anywhere
                source = sources[0]
                try:
                    transfer = self.net.transfer(source, target, block.size)
                    disk = self.disks[target].submit(block.size)
                    yield self.sim.all_of([transfer, disk])
                except NoRouteError:
                    continue  # topology changed mid-copy; retry
                self.namenode.commit_replica(block, target)
                self.rereplicated_blocks.add(1)
            return True
        finally:
            self._rerep_inflight.discard(block.block_id)
            self._rerep_slots.release(slot)

    def decommission(self, name: str) -> Event:
        """Gracefully drain a datanode: copy every block it holds to other
        nodes *while it is still serving*, then mark it dead.

        Unlike :meth:`fail_datanode`, no replica count ever drops below the
        target — this is how nodes are retired for maintenance.  The event
        value is the number of blocks copied.
        """
        return self.sim.process(self._decommission(name), name=f"hdfs.decom:{name}")

    def _decommission(self, name: str) -> Generator:
        nn = self.namenode
        blocks = [b for b in nn._blocks_by_id.values() if name in b.replicas]
        copied = 0
        for block in blocks:
            target = nn.replication_target(block)
            if target is None or target == name:
                continue
            slot = self._rerep_slots.request()
            yield slot
            try:
                transfer = self.net.transfer(name, target, block.size)
                disk = self.disks[target].submit(block.size)
                yield self.sim.all_of([transfer, disk])
            except NoRouteError:
                continue
            finally:
                self._rerep_slots.release(slot)
            nn.commit_replica(block, target)
            copied += 1
        # All data is now over-replicated w.r.t. this node: retire it.
        nn.mark_dead(name)
        # mark_dead drops this node's replicas; blocks stay at full factor.
        nn.under_replicated -= {
            b.block_id
            for b in nn._blocks_by_id.values()
            if len(b.replicas) >= nn.replication
        }
        return copied

    # -- balancer ---------------------------------------------------------------------
    def run_balancer(self, threshold: float = 0.10) -> Event:
        """Plan and execute balancer moves; event value = moves executed."""
        return self.sim.process(self._run_balancer(threshold), name="hdfs.balancer")

    def _run_balancer(self, threshold: float) -> Generator:
        moves = self.namenode.plan_balance(threshold)
        executed = 0
        for block, src, dst in moves:
            try:
                transfer = self.net.transfer(src, dst, block.size)
                disk = self.disks[dst].submit(block.size)
                yield self.sim.all_of([transfer, disk])
            except NoRouteError:
                continue
            self.namenode.commit_move(block, src, dst)
            executed += 1
        return executed

    # -- reporting ----------------------------------------------------------------------
    def stats(self) -> dict:
        """Headline counters for benches."""
        total_reads = self.reads_total.value
        return {
            "files": len(self.namenode.files()),
            "bytes_written": self.bytes_written.value,
            "bytes_read": self.bytes_read.value,
            "node_local_read_fraction": (
                self.read_locality.value / total_reads if total_reads else float("nan")
            ),
            "under_replicated": len(self.namenode.under_replicated),
            "rereplicated_blocks": self.rereplicated_blocks.value,
            "utilization_spread": self.namenode.utilization_spread(),
        }
