"""HDFS simulator — the "110 TB Hadoop filesystem" of slide 11.

Reproduces the mechanisms the paper's data-intensive computing claims rest
on:

* block-structured files with a configurable block size and replication
  factor;
* **rack-aware placement** (first replica on the writer, second off-rack,
  third on the second's rack) — the property that makes "bring computing to
  the data" possible;
* pipelined block writes and locality-ranked reads over the
  :mod:`repro.netsim` fluid network;
* datanode failure detection, under-replication tracking and
  re-replication;
* a balancer that plans block moves from over- to under-utilised nodes.

Public surface
--------------
:class:`NameNode`
    Pure (non-DES) metadata: namespace, placement, failure bookkeeping.
:class:`HdfsCluster`
    The DES wrapper: timed writes/reads/re-replication over the network.
:class:`Block`, :class:`DataNodeInfo`
    Data model.
"""

from repro.hdfs.blocks import Block, DataNodeInfo
from repro.hdfs.namenode import HdfsError, NameNode
from repro.hdfs.cluster import HdfsCluster

__all__ = ["Block", "DataNodeInfo", "HdfsCluster", "HdfsError", "NameNode"]
