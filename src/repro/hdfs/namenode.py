"""The NameNode: namespace, block placement, failure bookkeeping, balancing.

Pure metadata logic (no simulation time), so placement invariants are
directly property-testable:

* no two replicas of a block on the same node;
* with >= 2 racks and replication >= 2, replicas span >= 2 racks
  (rack-aware policy);
* per-node used bytes never exceed capacity.

The DES side (:class:`~repro.hdfs.cluster.HdfsCluster`) asks the NameNode
*where* and then spends simulated time moving the bytes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.simkit.rand import RandomSource
from repro.hdfs.blocks import Block, DataNodeInfo


class HdfsError(Exception):
    """Namespace/placement errors (no space, unknown path, ...)."""


class NameNode:
    """HDFS metadata server.

    Parameters
    ----------
    block_size:
        Bytes per block (the 2011 Hadoop default was 64 MiB).
    replication:
        Target replica count per block.
    placement:
        ``"rack_aware"`` (default) or ``"random"`` (ablation in E7).
    rng:
        Random source for placement tie-breaking.
    """

    def __init__(
        self,
        block_size: float = 64 * 2**20,
        replication: int = 3,
        placement: str = "rack_aware",
        rng: Optional[RandomSource] = None,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be > 0")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if placement not in ("rack_aware", "random"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.block_size = float(block_size)
        self.replication = int(replication)
        self.placement = placement
        self.rng = rng or RandomSource(0)
        self.nodes: dict[str, DataNodeInfo] = {}
        self._racks: dict[str, list[str]] = {}
        self._files: dict[str, list[Block]] = {}
        self._block_seq = 0
        #: Blocks currently below their target replication.
        self.under_replicated: set[int] = set()
        self._blocks_by_id: dict[int, Block] = {}

    # -- membership -----------------------------------------------------------
    def add_datanode(self, name: str, rack: str, capacity: float) -> DataNodeInfo:
        """Register a datanode."""
        if name in self.nodes:
            raise HdfsError(f"datanode {name!r} already registered")
        info = DataNodeInfo(name, rack, float(capacity))
        self.nodes[name] = info
        self._racks.setdefault(rack, []).append(name)
        return info

    def live_nodes(self) -> list[DataNodeInfo]:
        """All alive datanodes, name-sorted (deterministic)."""
        return [self.nodes[n] for n in sorted(self.nodes) if self.nodes[n].alive]

    @property
    def racks(self) -> list[str]:
        """All rack names, sorted."""
        return sorted(self._racks)

    def rack_of(self, node: str) -> str:
        """Rack of a datanode."""
        return self.nodes[node].rack

    # -- namespace ----------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether a file exists in the namespace."""
        return path in self._files

    def file_blocks(self, path: str) -> list[Block]:
        """Blocks of a file, in order."""
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such file: {path!r}") from None

    def file_size(self, path: str) -> float:
        """Logical size of a file in bytes."""
        return sum(b.size for b in self.file_blocks(path))

    def files(self) -> list[str]:
        """All paths, sorted."""
        return sorted(self._files)

    def block(self, block_id: int) -> Block:
        """Look up a block by id."""
        return self._blocks_by_id[block_id]

    @property
    def total_used(self) -> float:
        """Bytes used across all datanodes (replicas included)."""
        return sum(n.used for n in self.nodes.values())

    @property
    def total_capacity(self) -> float:
        """Raw capacity across all datanodes."""
        return sum(n.capacity for n in self.nodes.values())

    # -- placement -------------------------------------------------------------
    def _pick(self, candidates: list[DataNodeInfo], size: float) -> Optional[DataNodeInfo]:
        fitting = [c for c in candidates if c.alive and c.free >= size]
        if not fitting:
            return None
        # Weight the random choice towards emptier nodes to avoid hot-spots,
        # but deterministically via the namenode RNG.
        fitting.sort(key=lambda n: n.name)
        weights = [max(n.free, 1.0) for n in fitting]
        total = sum(weights)
        x = self.rng.uniform(0.0, total)
        acc = 0.0
        for node, weight in zip(fitting, weights):
            acc += weight
            if x <= acc:
                return node
        return fitting[-1]  # pragma: no cover - float edge

    def place_block(self, size: float, writer: Optional[str] = None) -> list[str]:
        """Choose replica nodes for a new block.

        Rack-aware policy (HDFS default): first replica on the writer when
        the writer is a datanode with room, second on a *different* rack,
        third on the second replica's rack but a different node; any further
        replicas anywhere.  ``"random"`` policy ignores topology entirely.
        """
        chosen: list[DataNodeInfo] = []

        def not_chosen(pool: Iterable[DataNodeInfo]) -> list[DataNodeInfo]:
            names = {c.name for c in chosen}
            return [p for p in pool if p.name not in names]

        live = self.live_nodes()
        if self.placement == "random":
            while len(chosen) < self.replication:
                node = self._pick(not_chosen(live), size)
                if node is None:
                    break
                chosen.append(node)
        else:
            # Replica 1: writer-local when possible.
            first = None
            if writer is not None and writer in self.nodes:
                info = self.nodes[writer]
                if info.alive and info.free >= size:
                    first = info
            if first is None:
                first = self._pick(live, size)
            if first is not None:
                chosen.append(first)
                # Replica 2: a different rack.
                if self.replication >= 2:
                    off_rack = [n for n in live if n.rack != first.rack]
                    second = self._pick(not_chosen(off_rack), size)
                    if second is None:  # single-rack cluster: fall back
                        second = self._pick(not_chosen(live), size)
                    if second is not None:
                        chosen.append(second)
                        # Replica 3: same rack as the second, different node.
                        if self.replication >= 3:
                            same_rack = [n for n in live if n.rack == second.rack]
                            third = self._pick(not_chosen(same_rack), size)
                            if third is None:
                                third = self._pick(not_chosen(live), size)
                            if third is not None:
                                chosen.append(third)
            # Replicas 4+: anywhere.
            while len(chosen) < self.replication:
                node = self._pick(not_chosen(live), size)
                if node is None:
                    break
                chosen.append(node)

        if not chosen:
            raise HdfsError(f"no datanode can hold a block of {size:.3g} B")
        for node in chosen:
            node.used += size
        return [n.name for n in chosen]

    # -- file operations -----------------------------------------------------
    def create_file(self, path: str, size: float, writer: Optional[str] = None) -> list[Block]:
        """Allocate namespace + block placements for a new file."""
        if path in self._files:
            raise HdfsError(f"file exists: {path!r}")
        if size < 0:
            raise ValueError("size must be >= 0")
        blocks: list[Block] = []
        remaining = float(size)
        index = 0
        while remaining > 0 or index == 0:
            block_bytes = min(self.block_size, remaining) if remaining > 0 else 0.0
            self._block_seq += 1
            block = Block(self._block_seq, path, index, block_bytes)
            if block_bytes > 0:
                block.replicas = self.place_block(block_bytes, writer)
            blocks.append(block)
            self._blocks_by_id[block.block_id] = block
            remaining -= block_bytes
            index += 1
            if remaining <= 0:
                break
        self._files[path] = blocks
        return blocks

    def delete_file(self, path: str) -> None:
        """Remove a file, releasing all replica space."""
        blocks = self.file_blocks(path)
        for block in blocks:
            for replica in block.replicas:
                self.nodes[replica].used -= block.size
            self.under_replicated.discard(block.block_id)
            del self._blocks_by_id[block.block_id]
        del self._files[path]

    # -- failures ---------------------------------------------------------------
    def mark_dead(self, name: str) -> list[Block]:
        """Declare a datanode dead; returns the blocks that lost a replica.

        The dead node's replicas are dropped from block metadata and its
        ``used`` reset (the data is gone).  Affected blocks are queued in
        :attr:`under_replicated`.
        """
        info = self.nodes[name]
        if not info.alive:
            return []
        info.alive = False
        info.used = 0.0
        lost: list[Block] = []
        for block in self._blocks_by_id.values():
            if name in block.replicas:
                block.replicas.remove(name)
                lost.append(block)
                if len(block.replicas) < self.replication:
                    self.under_replicated.add(block.block_id)
        return lost

    def mark_alive(self, name: str) -> None:
        """Bring a (previously failed, now empty) datanode back."""
        self.nodes[name].alive = True

    def replication_target(self, block: Block) -> Optional[str]:
        """Pick a node for a new replica of an under-replicated block."""
        existing = set(block.replicas)
        existing_racks = {self.nodes[r].rack for r in existing}
        live = [n for n in self.live_nodes() if n.name not in existing]
        # Prefer restoring rack diversity.
        off_rack = [n for n in live if n.rack not in existing_racks]
        node = self._pick(off_rack, block.size) or self._pick(live, block.size)
        return node.name if node else None

    def commit_replica(self, block: Block, node: str) -> None:
        """Record a completed re-replication copy."""
        if node in block.replicas:
            raise HdfsError(f"node {node!r} already holds block {block.block_id}")
        block.replicas.append(node)
        self.nodes[node].used += block.size
        if len(block.replicas) >= self.replication:
            self.under_replicated.discard(block.block_id)

    # -- balancer -------------------------------------------------------------
    def plan_balance(self, threshold: float = 0.10) -> list[tuple[Block, str, str]]:
        """Plan block moves so every node's utilisation is within
        ``threshold`` of the cluster mean (best effort, like the HDFS
        balancer).  Returns ``(block, from_node, to_node)`` moves; does not
        mutate state — :meth:`commit_move` applies one move."""
        live = self.live_nodes()
        if not live:
            return []
        mean = sum(n.used for n in live) / sum(n.capacity for n in live)
        over = sorted(
            (n for n in live if n.utilization > mean + threshold),
            key=lambda n: -n.utilization,
        )
        moves: list[tuple[Block, str, str]] = []
        planned_delta: dict[str, float] = {n.name: 0.0 for n in live}

        def util(node: DataNodeInfo) -> float:
            return (node.used + planned_delta[node.name]) / node.capacity

        for source in over:
            blocks_here = sorted(
                (b for b in self._blocks_by_id.values() if source.name in b.replicas),
                key=lambda b: (-b.size, b.block_id),
            )
            for block in blocks_here:
                if util(source) <= mean + threshold:
                    break
                target = None
                for candidate in sorted(live, key=lambda n: util(n)):
                    if candidate.name == source.name or candidate.name in block.replicas:
                        continue
                    if util(candidate) >= mean:
                        break
                    if candidate.free - planned_delta[candidate.name] >= block.size:
                        target = candidate
                        break
                if target is None:
                    continue
                moves.append((block, source.name, target.name))
                planned_delta[source.name] -= block.size
                planned_delta[target.name] += block.size
        return moves

    def commit_move(self, block: Block, src: str, dst: str) -> None:
        """Apply one balancer move to the metadata."""
        if src not in block.replicas:
            raise HdfsError(f"{src!r} does not hold block {block.block_id}")
        if dst in block.replicas:
            raise HdfsError(f"{dst!r} already holds block {block.block_id}")
        block.replicas[block.replicas.index(src)] = dst
        self.nodes[src].used -= block.size
        self.nodes[dst].used += block.size

    def utilization_spread(self) -> float:
        """Max-min utilisation gap across live nodes (balancer metric)."""
        live = self.live_nodes()
        if not live:
            return 0.0
        utils = [n.utilization for n in live]
        return max(utils) - min(utils)
