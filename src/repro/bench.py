"""Hot-path benchmark scenarios and a parallel sweep runner.

This module is the shared home of the **E16 hot-path scenario** — a
high-concurrency mix of microscopy ingest (many DAQ transfer agents) plus a
Poisson background traffic matrix over the whole backbone — used by
``benchmarks/bench_e16_hotpath.py``, the CI perf gate and ad-hoc profiling.
Keeping the scenario in the package (rather than inside the bench file)
means the CLI, the bench and the profiler all measure exactly the same
workload.

It also provides :func:`run_sweep`, a ``--jobs N`` multiprocessing fan-out
for multi-seed sweeps.  Each worker process runs one fully seeded,
single-threaded simulation (no threads are ever spawned; all randomness
derives from the seed passed to the worker), and results are merged in
**seed order** regardless of completion order — so a sweep's merged output
is byte-identical whether it ran with ``--jobs 1`` or ``--jobs 8``.

CLI::

    PYTHONPATH=src python -m repro.bench --seeds 16 17 18 --jobs 3 --profile

Wall-clock readings here are host-side measurements *around* simulations,
never inside them, hence the REP001 pragmas.
"""

from __future__ import annotations

import argparse
import cProfile
import functools
import multiprocessing
import pstats
import time
from dataclasses import dataclass, fields
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.core import Facility
from repro.netsim.traffic import TrafficConfig, TrafficGenerator
from repro.simkit.units import GB, HOUR
from repro.workloads import zebrafish_microscopes

T = TypeVar("T")


@dataclass(frozen=True)
class HotpathResult:
    """Measurements from one seeded run of the E16 hot-path scenario.

    Every field except :attr:`wall_seconds` (and
    :attr:`interpreter_calls`, which is 0 unless profiling was requested)
    is a pure function of the seed and scenario parameters — that is what
    :meth:`deterministic` exposes for jobs-invariance checks.
    """

    seed: int
    #: Microscopy frames acquired by the ingest pipeline.
    frames: int
    #: Background flows started by the traffic generator.
    background_flows: int
    #: Events scheduled by the kernel over the run.
    events_scheduled: int
    #: Simulated horizon in seconds.
    sim_seconds: float
    #: Payload bytes delivered end-to-end by the network.
    bytes_delivered: float
    #: Network rebalance passes (solved or skipped).
    rebalances: int
    #: Fair-share solves actually executed.
    solves: int
    #: Rebalances that reused the previous rates.
    solves_skipped: int
    #: Topology route-cache hits / misses.
    route_cache_hits: int
    route_cache_misses: int
    #: Total interpreter function calls (cProfile), 0 when not profiled.
    interpreter_calls: int
    #: Host-side wall-clock of the simulation run (seconds).
    wall_seconds: float

    def deterministic(self) -> tuple:
        """The seed-determined fields, for jobs-invariance comparisons."""
        skip = ("wall_seconds", "interpreter_calls")
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.name not in skip
        )

    @property
    def events_per_second(self) -> float:
        """Kernel events scheduled per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events_scheduled / self.wall_seconds

    @property
    def calls_per_frame(self) -> float:
        """Interpreter calls per ingested frame (the E16 gate metric)."""
        if not self.frames:
            return float("inf")
        return self.interpreter_calls / self.frames


def run_hotpath(
    seed: int = 16,
    hours: float = 1.0,
    instruments: int = 6,
    agents: int = 4,
    profile: bool = False,
    fluid: bool = False,
    scheduler: str = "heap",
) -> HotpathResult:
    """Run the E16 high-concurrency ingest+backbone scenario once.

    ``instruments`` zebrafish microscopes feed the ingest pipeline through
    ``agents`` parallel transfer agents while a Poisson traffic generator
    (mean interarrival 2 s, 0.5–10 GB flows) keeps the whole backbone —
    DAQ hosts, storage heads, the Heidelberg WAN endpoint and eight
    cluster nodes — busy with crossing flows.  That mix maximises netsim
    rebalance pressure, which is exactly what the incremental engine
    optimises.

    ``fluid=True`` runs the fluid-event arm: deterministic (zero-jitter)
    microscopes coalesced into rate intervals, bulk buffer/storage
    operations, and the calendar-queue scheduler unless ``scheduler``
    overrides it.  The deterministic workload is an arm *parameter* — the
    fluid-off and fluid-on arms are only comparable to each other within
    the same workload shape, which is why the bench runs both arms itself.

    With ``profile=True`` the simulation runs under :mod:`cProfile` and
    :attr:`HotpathResult.interpreter_calls` carries the deterministic
    total-call count (the perf-gate metric; wall-clock is informational).
    """
    from repro.core.config import lsdf_2011_config

    cfg = lsdf_2011_config()
    cfg.scheduler = "calendar" if fluid and scheduler == "heap" else scheduler
    cfg.fluid_ingest = fluid
    fac = Facility(config=cfg, seed=seed)
    pipeline = fac.ingest_pipeline(
        zebrafish_microscopes(instruments=instruments, deterministic=fluid),
        agents=agents,
    )
    endpoints = (
        fac.names.daq
        + fac.names.storage
        + [fac.names.heidelberg]
        + fac.names.cluster[:8]
    )
    generator = TrafficGenerator(
        fac.sim,
        fac.net,
        endpoints,
        TrafficConfig(
            mean_interarrival=2.0, size_lo=0.5 * GB, size_hi=10 * GB
        ),
    )
    generator.start(duration=hours * HOUR)
    profiler = cProfile.Profile() if profile else None
    # lint: disable=wall-clock -- host-side harness timing around the
    # simulation (reported informationally), never inside it.
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    report = pipeline.run(duration=hours * HOUR)
    if profiler is not None:
        profiler.disable()
    # lint: disable=wall-clock -- host-side harness timing (see above).
    wall = time.perf_counter() - started
    calls = 0
    if profiler is not None:
        calls = sum(v[0] for v in pstats.Stats(profiler).stats.values())
    net = fac.net
    return HotpathResult(
        seed=seed,
        frames=report.frames_acquired,
        background_flows=int(generator.flows_started.value),
        events_scheduled=fac.sim.events_scheduled,
        sim_seconds=fac.sim.now,
        bytes_delivered=net.bytes_delivered.value,
        rebalances=int(net.rebalances.value),
        solves=int(net.solves.value),
        solves_skipped=int(net.solves_skipped.value),
        route_cache_hits=net.topology.route_cache_hits,
        route_cache_misses=net.topology.route_cache_misses,
        interpreter_calls=calls,
        wall_seconds=wall,
    )


def run_sweep(
    worker: Callable[[int], T],
    seeds: Sequence[int],
    jobs: int = 1,
) -> list[T]:
    """Run ``worker(seed)`` for every seed, optionally across processes.

    With ``jobs <= 1`` the sweep runs sequentially in this process.  With
    ``jobs > 1`` a :class:`multiprocessing.Pool` fans the seeds out;
    ``worker`` must be picklable (a module-level function or a
    :func:`functools.partial` of one).  Each worker stays single-threaded
    and derives all randomness from its seed argument, and the returned
    list is **always in input seed order** (``Pool.map`` merges by input
    position, not completion time) — so the merged result is independent
    of ``jobs``, scheduling jitter and core count.
    """
    seeds = list(seeds)
    if jobs <= 1 or len(seeds) <= 1:
        return [worker(seed) for seed in seeds]
    with multiprocessing.Pool(processes=min(jobs, len(seeds))) as pool:
        return pool.map(worker, seeds)


def _format_row(result: HotpathResult) -> str:
    calls = (
        f"{result.calls_per_frame:10.1f}" if result.interpreter_calls else
        " " * 10
    )
    return (
        f"{result.seed:>6d} {result.frames:>8,d} {result.background_flows:>8,d} "
        f"{result.events_scheduled:>10,d} {result.events_per_second:>12,.0f} "
        f"{result.solves:>8,d} {result.solves_skipped:>8,d} "
        f"{calls} {result.wall_seconds:>8.2f}s"
    )


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point: multi-seed E16 sweeps with ``--jobs`` fan-out."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Run the E16 hot-path scenario across seeds, optionally in "
            "parallel worker processes (deterministic seed-ordered merge)."
        ),
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[16],
                        help="simulation seeds to sweep (default: 16)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1 = sequential)")
    parser.add_argument("--hours", type=float, default=1.0,
                        help="simulated hours per run (default: 1.0)")
    parser.add_argument("--instruments", type=int, default=6,
                        help="microscopes feeding ingest (default: 6)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and report calls/frame")
    parser.add_argument("--fluid", action="store_true",
                        help="run the fluid-event arm (rate-interval "
                             "ingest over the calendar-queue scheduler)")
    parser.add_argument("--scheduler", default="heap",
                        choices=("heap", "calendar"),
                        help="event-queue backend (default: heap; "
                             "--fluid implies calendar unless set)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    worker = functools.partial(
        run_hotpath,
        hours=args.hours,
        instruments=args.instruments,
        profile=args.profile,
        fluid=args.fluid,
        scheduler=args.scheduler,
    )
    results = run_sweep(worker, args.seeds, jobs=args.jobs)

    header = (
        f"{'seed':>6s} {'frames':>8s} {'bgflows':>8s} {'events':>10s} "
        f"{'events/s':>12s} {'solves':>8s} {'skipped':>8s} "
        f"{'calls/frm':>10s} {'wall':>9s}"
    )
    print(header)
    for result in results:
        print(_format_row(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
