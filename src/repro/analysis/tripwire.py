"""The unseeded-RNG tripwire.

While a sanitized simulation runs, every facility draw must come from a
seeded :class:`~repro.simkit.rand.RandomSource`.  This module patches the
process-global entropy sources — the stdlib ``random`` module functions
and numpy's legacy global RNG + ``default_rng`` — so that any stray call
raises :class:`UnseededRandomnessError` naming the offender, instead of
silently injecting run-to-run nondeterminism that only shows up later as
an unexplainable trace divergence.
"""

from __future__ import annotations

import random as _stdlib_random
from contextlib import contextmanager
from typing import Iterator

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

_STDLIB_FUNCS = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "seed", "getrandbits",
)
_NUMPY_FUNCS = (
    "default_rng", "seed", "random", "rand", "randn", "randint",
    "random_sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "binomial",
)


class UnseededRandomnessError(RuntimeError):
    """A process-global RNG was used during a sanitized simulation run."""


def _tripper(origin: str):
    def trip(*_args, **_kwargs):
        raise UnseededRandomnessError(
            f"{origin}() called during a sanitized simulation run — all "
            "facility randomness must flow through Simulator.random / "
            "RandomSource.spawn so it is seeded and replayable"
        )
    return trip


@contextmanager
def rng_tripwire() -> Iterator[None]:
    """Patch stdlib/numpy global RNG entry points for the enclosed block."""
    saved_stdlib = {
        name: getattr(_stdlib_random, name)
        for name in _STDLIB_FUNCS if hasattr(_stdlib_random, name)
    }
    saved_numpy = {} if _np is None else {
        name: getattr(_np.random, name)
        for name in _NUMPY_FUNCS if hasattr(_np.random, name)
    }
    try:
        for name in saved_stdlib:
            setattr(_stdlib_random, name, _tripper(f"random.{name}"))
        for name in saved_numpy:
            setattr(_np.random, name, _tripper(f"numpy.random.{name}"))
        yield
    finally:
        for name, fn in saved_stdlib.items():
            setattr(_stdlib_random, name, fn)
        for name, fn in saved_numpy.items():
            setattr(_np.random, name, fn)
