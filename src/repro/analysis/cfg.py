"""A statement-level control-flow graph for protocol checking.

The simkit protocol rules need path questions a syntax walk cannot
answer: *is there an execution path from this ``request()`` to function
exit that never passes a ``release()``*; *can these two ``yield`` sites
run back-to-back without the event being rebound*.  This module builds a
small, conservative CFG per function:

* nodes are statements (plus synthetic ``ENTRY``/``EXIT``);
* ``if``/loops/``try`` produce the usual branch edges;
* every statement inside a ``try`` body may also jump to each enclosing
  handler entry (any statement can raise);
* ``return``/``raise``/``break``/``continue`` route *through* the
  innermost enclosing ``finally`` block before leaving — which is
  exactly why wrapping a grant in ``try/finally: release()`` satisfies
  the leak rule.

The graph over-approximates feasibility (no condition evaluation), so
path queries err toward *finding* a path: a "leaks on some path" report
may name an infeasible path, but "released on all paths" is trustworthy.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

ENTRY = -1
EXIT = -2

_TRY_STAR = (ast.TryStar,) if hasattr(ast, "TryStar") else ()


class Cfg:
    """Control-flow graph of one function body.

    Nodes are ids: ``ENTRY``, ``EXIT``, or ``id(stmt)`` for each
    statement; ``stmts`` maps ids back to AST statements.
    """

    def __init__(self, func: ast.AST):
        self.func = func
        self.stmts: dict[int, ast.stmt] = {}
        self.succ: dict[int, set[int]] = {ENTRY: set(), EXIT: set()}
        _Builder(self).build(getattr(func, "body", []))

    # -- construction --------------------------------------------------------
    def add(self, stmt: ast.stmt) -> int:
        """Register a statement as a node; returns its id."""
        node = id(stmt)
        self.stmts[node] = stmt
        self.succ.setdefault(node, set())
        return node

    def edge(self, src: int, dst: int) -> None:
        """Add a control-flow edge."""
        self.succ.setdefault(src, set()).add(dst)

    # -- queries -------------------------------------------------------------
    def successors(self, node: int) -> set[int]:
        """Direct successors of a node."""
        return self.succ.get(node, set())

    def nodes_for(self, stmts: Iterable[ast.stmt]) -> set[int]:
        """Node ids for AST statements that appear in this graph."""
        return {id(s) for s in stmts if id(s) in self.stmts}

    def path_avoiding(self, start: Iterable[int], goal: int,
                      avoid: set[int]) -> Optional[list[int]]:
        """A path from any ``start`` node to ``goal`` that never enters a
        node in ``avoid`` — or ``None`` when every such path is covered.

        BFS, so the returned witness is a shortest path.
        """
        parents: dict[int, Optional[int]] = {}
        frontier: list[int] = []
        for node in start:
            if node in avoid or node in parents:
                continue
            parents[node] = None
            frontier.append(node)
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                if node == goal:
                    path: list[int] = []
                    cur: Optional[int] = node
                    while cur is not None:
                        path.append(cur)
                        cur = parents[cur]
                    path.reverse()
                    return path
                for succ in self.succ.get(node, ()):
                    if succ in avoid or succ in parents:
                        continue
                    parents[succ] = node
                    nxt.append(succ)
            frontier = nxt
        return None

    def reachable_between(self, src: int, dst: int, avoid: set[int]) -> bool:
        """Whether ``dst`` can execute after ``src`` without any ``avoid``
        node in between (the double-yield question)."""
        return self.path_avoiding(self.succ.get(src, ()), dst, avoid) is not None


class _Frame:
    """Loop / finally context threaded through nested blocks."""

    __slots__ = ("kind", "head", "breaks", "finally_entry")

    def __init__(self, kind: str, head: Optional[int] = None,
                 breaks: Optional[list] = None,
                 finally_entry: Optional[int] = None):
        self.kind = kind              # "loop" | "finally"
        self.head = head              # loop header (continue target)
        self.breaks = breaks          # collected break nodes
        self.finally_entry = finally_entry


class _Builder:
    """Builds edges block by block.

    ``build_block`` returns the *dangling exits* of a block: nodes whose
    next edge goes to whatever statement follows the block.
    """

    def __init__(self, cfg: Cfg):
        self.cfg = cfg
        self.stack: list[_Frame] = []
        # Entries of handlers for every enclosing try body we are inside;
        # any statement may raise into any of them.
        self.handler_stack: list[list[int]] = []

    def build(self, body: list[ast.stmt]) -> None:
        for node in self.build_block(body, [ENTRY]):
            self.cfg.edge(node, EXIT)

    def build_block(self, body: list[ast.stmt], entry: list[int]) -> list[int]:
        current = list(entry)
        for stmt in body:
            node = self.cfg.add(stmt)
            for src in current:
                self.cfg.edge(src, node)
            current = self.build_tail(stmt, node)
        return current

    def build_tail(self, stmt: ast.stmt, node: int) -> list[int]:
        """Edges out of an already-added statement node."""
        for handlers in self.handler_stack:
            for handler_entry in handlers:
                self.cfg.edge(node, handler_entry)

        if isinstance(stmt, ast.If):
            then_exits = self.build_block(stmt.body, [node])
            else_exits = (self.build_block(stmt.orelse, [node])
                          if stmt.orelse else [node])
            return then_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[int] = []
            self.stack.append(_Frame("loop", head=node, breaks=breaks))
            for src in self.build_block(stmt.body, [node]):
                self.cfg.edge(src, node)  # back edge
            self.stack.pop()
            else_exits = (self.build_block(stmt.orelse, [node])
                          if stmt.orelse else [node])
            return else_exits + breaks

        if isinstance(stmt, (ast.Try, *_TRY_STAR)):
            return self._build_try(stmt, node)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.build_block(stmt.body, [node])

        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._route_exit(node)
            return []

        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._route_loop(node, is_break=isinstance(stmt, ast.Break))
            return []

        return [node]

    # -- try / finally -------------------------------------------------------
    def _build_try(self, stmt: ast.stmt, node: int) -> list[int]:
        finally_entry: Optional[int] = None
        if stmt.finalbody:
            finally_entry = self.cfg.add(stmt.finalbody[0])
            self.stack.append(_Frame("finally", finally_entry=finally_entry))

        handler_entries = [self.cfg.add(h.body[0])
                           for h in stmt.handlers if h.body]

        self.handler_stack.append(handler_entries)
        body_exits = self.build_block(stmt.body, [node])
        self.handler_stack.pop()

        handler_exits: list[int] = []
        for handler, h_entry in zip(
                [h for h in stmt.handlers if h.body], handler_entries):
            tail = self.build_tail(handler.body[0], h_entry)
            handler_exits.extend(self.build_block(handler.body[1:], tail))

        else_exits = (self.build_block(stmt.orelse, body_exits)
                      if stmt.orelse else body_exits)

        if finally_entry is None:
            return else_exits + handler_exits

        self.stack.pop()
        for src in else_exits + handler_exits:
            self.cfg.edge(src, finally_entry)
        fin_tail = self.build_tail(stmt.finalbody[0], finally_entry)
        return self.build_block(stmt.finalbody[1:], fin_tail)

    # -- abrupt-exit routing -------------------------------------------------
    def _route_exit(self, node: int) -> None:
        """return/raise: run the innermost enclosing finally, else leave."""
        for frame in reversed(self.stack):
            if frame.kind == "finally" and frame.finally_entry is not None:
                self.cfg.edge(node, frame.finally_entry)
                return
        self.cfg.edge(node, EXIT)

    def _route_loop(self, node: int, is_break: bool) -> None:
        """break/continue: through an intervening finally to the loop."""
        for frame in reversed(self.stack):
            if frame.kind == "finally" and frame.finally_entry is not None:
                self.cfg.edge(node, frame.finally_entry)
                return
            if frame.kind == "loop":
                if is_break:
                    frame.breaks.append(node)
                else:
                    self.cfg.edge(node, frame.head)
                return
        self.cfg.edge(node, EXIT)  # malformed source: break outside loop
