"""The whole-program pass: project load, graph build, rule dispatch.

The per-file :class:`~repro.analysis.engine.Linter` deliberately skips
rules marked ``whole_program`` — they need every module parsed plus the
call graph.  This module is their engine: it loads the
:class:`~repro.analysis.graphs.Project`, builds (or loads from cache)
the :class:`~repro.analysis.graphs.CallGraph`, runs every registered
:class:`~repro.analysis.rules.WholeProgramRule`, and applies the same
per-line pragma suppression the per-file engine uses — a
``# lint: disable=REP013 -- why`` on the flagged line silences a
whole-program finding exactly like a per-file one.

Findings anchored outside the project (catalog rows in workflow files or
docs) have no module to carry pragmas; they are suppressed via the
fingerprint baseline instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

# Importing these modules registers the whole-program rules.
from repro.analysis import protocol as _protocol          # noqa: F401
from repro.analysis import taint as _taint                # noqa: F401
from repro.analysis import telemetry_check as _telemetry  # noqa: F401
from repro.analysis.findings import Finding
from repro.analysis.graphs import CallGraph, Project
from repro.analysis.rules import Rule, all_rules


def whole_program_rules() -> list[Rule]:
    """Registered whole-program rules, sorted by id."""
    return [r for r in all_rules() if r.whole_program]


def build_project(paths: Iterable[str | Path],
                  graph_cache: Optional[str | Path] = None) -> Project:
    """Load the project and attach its call graph (cached when asked)."""
    project = Project.load(paths)
    if graph_cache is not None:
        graph = CallGraph.load_cached(project, graph_cache)
    else:
        graph = CallGraph(project)
    project.call_graph = graph
    return project


def run_whole_program(
        paths: Iterable[str | Path],
        rules: Optional[Sequence[Rule]] = None,
        graph_cache: Optional[str | Path] = None,
        project: Optional[Project] = None) -> list[Finding]:
    """Run whole-program rules over ``paths``; pragma-filtered, sorted.

    Pass ``project`` to reuse an already-built project/graph (the CLI
    builds once and shares it across rule subsets).
    """
    if project is None:
        project = build_project(paths, graph_cache=graph_cache)
    selected = rules if rules is not None else whole_program_rules()
    findings: list[Finding] = []
    for rule in selected:
        if not rule.whole_program:
            continue
        for finding in rule.check_project(project):
            module = project.modules.get(finding.path)
            if module is not None and module.suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
