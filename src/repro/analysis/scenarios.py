"""Sanitizer scenarios: small, bounded facility runs with a known shape.

A scenario is a named callable that builds a :class:`Facility` for a
seed, drives a representative slice of the workload (ingest, HDFS
staging, a MapReduce job), and finishes with a drained or bounded event
queue.  The sanitizer runs scenarios repeatedly — same seed twice for
the determinism check, and once under a randomized tie-shuffle for the
race check — so they must be cheap (seconds, not minutes).

``tiny`` honours the same spirit as the benchmarks' ``LSDF_BENCH_TINY``
knob: the smallest run that still pushes events through every subsystem
layer the invariant claims cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import FacilityConfig, lsdf_2011_config
from repro.core.facility import Facility
from repro.simkit import units


@dataclass(frozen=True)
class Scenario:
    """A named sanitizer scenario."""

    name: str
    description: str
    #: Drives the facility; returns the final state snapshot (a dict) whose
    #: canonical serialisation is the run's outcome digest.
    run: Callable[[Facility], dict]
    #: Facility config factory (None = the canonical 2011 deployment).
    config: Optional[Callable[[], FacilityConfig]] = None
    #: Event-name glob patterns whose same-timestamp reorderings are known
    #: benign and accepted (the runtime analogue of a lint pragma; each
    #: entry should be justified in docs/static_analysis.md).
    races_allowed: tuple[str, ...] = field(default=())

    def build(self, seed: int) -> Facility:
        """Construct the facility this scenario drives, for one seed."""
        cfg = self.config() if self.config is not None else None
        return Facility(config=cfg, seed=seed)

    def execute(self, facility: Facility) -> dict:
        """Drive the scenario and return its invariant snapshot."""
        return self.run(facility)


def _no_speculation_config() -> FacilityConfig:
    """The canonical facility minus MapReduce speculative execution.

    Speculation is an *intentional* race — idle slots re-run straggling
    attempts and the first finisher wins — so a marginal speculation
    decision legitimately flips under epsilon timing shifts; E7 studies
    it on purpose.  The race sanitizer ablates it to keep the check
    meaningful for everything else.
    """
    cfg = lsdf_2011_config()
    cfg.mr_speculation = False
    return cfg


def _invariants(stats: dict) -> dict:
    """Project a full :meth:`Facility.stats` snapshot onto conservation
    invariants: frame/byte/block accounting, replication health, and
    resilience/durability counters.

    Micro-timing aggregates (wall-clock ``time``, time-integrated
    ``net_bytes``/``cloud_running_vms``, job durations) are deliberately
    excluded: an accepted same-timestamp reordering of symmetric
    consumers changes batch composition, which legitimately shifts those
    by epsilon without any data-path consequence.  Every real race the
    sanitizer has caught so far moved one of the retained counters
    (extra block reads, lost locality, changed task stats).
    """
    hdfs = stats.get("hdfs", {})
    metadata = stats.get("metadata", {})
    resilience = stats.get("resilience", {})
    durability = stats.get("durability", {})
    return {
        "pool_used": stats.get("pool_used"),
        "tape_cartridges": stats.get("tape_cartridges"),
        "hdfs_files": hdfs.get("files"),
        "hdfs_bytes_written": hdfs.get("bytes_written"),
        "hdfs_bytes_read": hdfs.get("bytes_read"),
        "hdfs_node_local_read_fraction": hdfs.get("node_local_read_fraction"),
        "hdfs_under_replicated": hdfs.get("under_replicated"),
        "metadata_datasets": metadata.get("datasets"),
        "metadata_processing_records": metadata.get("processing_records"),
        "metadata_bytes": metadata.get("total_bytes"),
        "resilience_retries": resilience.get("retries"),
        "resilience_timeouts": resilience.get("timeouts"),
        "resilience_dlq_depth": resilience.get("dlq_depth"),
        "resilience_lost_bytes": resilience.get("lost_bytes"),
        "durability_corruptions_detected": durability.get("corruptions_detected"),
        "durability_unrepairable": durability.get("unrepairable"),
        "wal_records": durability.get("metadata", {}).get("wal_records"),
    }


def _run_tiny(facility: Facility) -> dict:
    """Two simulated minutes of zebrafish ingest (all four microscopes,
    metadata registration on) — the smallest end-to-end data path."""
    report = facility.simulate_microscopy_day(duration=120.0)
    snapshot = _invariants(facility.stats())
    snapshot["ingest_frames"] = report.frames_ingested
    snapshot["ingest_unaccounted"] = report.frames_unaccounted
    return snapshot


def _run_standard(facility: Facility) -> dict:
    """Ingest plus the analysis side: a 10-minute screen, a dataset staged
    into HDFS, and one locality-scheduled MapReduce pass over it."""
    from repro.mapreduce.sim import JobSpec

    report = facility.simulate_microscopy_day(duration=600.0)
    staged = facility.load_into_hdfs("/screens/day0", 2 * units.GiB)
    facility.run()
    assert staged.ok
    job = facility.mapreduce.submit(JobSpec(
        name="segment", input_path="/screens/day0", reduces=4,
    ))
    facility.run()
    result = job.value
    snapshot = _invariants(facility.stats())
    snapshot["ingest_frames"] = report.frames_ingested
    snapshot["ingest_unaccounted"] = report.frames_unaccounted
    snapshot["job_completed"] = result is not None
    snapshot["job_locality"] = dict(result.locality_counts)
    snapshot["job_locality_fallbacks"] = result.locality_fallbacks
    snapshot["job_attempts"] = result.attempts
    return snapshot


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="tiny",
            description="2 sim-minutes of zebrafish ingest (CI smoke)",
            run=_run_tiny,
        ),
        Scenario(
            name="standard",
            description="10-minute ingest + HDFS staging + one MapReduce job "
                        "(speculation ablated: it races by design)",
            run=_run_standard,
            config=_no_speculation_config,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (KeyError lists the alternatives)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
