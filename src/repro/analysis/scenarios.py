"""Sanitizer scenarios: small, bounded facility runs with a known shape.

A scenario is a named callable that builds a :class:`Facility` for a
seed, drives a representative slice of the workload (ingest, HDFS
staging, a MapReduce job), and finishes with a drained or bounded event
queue.  The sanitizer runs scenarios repeatedly — same seed twice for
the determinism check, and once under a randomized tie-shuffle for the
race check — so they must be cheap (seconds, not minutes).

``tiny`` honours the same spirit as the benchmarks' ``LSDF_BENCH_TINY``
knob: the smallest run that still pushes events through every subsystem
layer the invariant claims cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.config import FacilityConfig, lsdf_2011_config
from repro.core.facility import Facility
from repro.simkit import units


@dataclass(frozen=True)
class Scenario:
    """A named sanitizer scenario.

    Most scenarios are one-phase: :attr:`run` drives a freshly built
    facility and returns the snapshot.  Scenarios whose *construction*
    already schedules work (the frontdoor drill populates its load
    generator and chaos schedule before the first sim step) use the
    two-phase :attr:`prepare` instead, so the sanitizer can install its
    trace recorder between construction and execution.
    """

    name: str
    description: str
    #: Drives the facility; returns the final state snapshot (a dict) whose
    #: canonical serialisation is the run's outcome digest.
    run: Optional[Callable[[Facility], dict]] = None
    #: Facility config factory (None = the canonical 2011 deployment).
    config: Optional[Callable[[], FacilityConfig]] = None
    #: Two-phase driver: ``prepare(seed) -> (facility, finish)`` where
    #: ``finish()`` advances the clock to quiescence and returns the
    #: snapshot.  When set, :attr:`run` and :attr:`config` are unused.
    prepare: Optional[
        Callable[[int], tuple[Facility, Callable[[], dict]]]] = None
    #: Event-name glob patterns whose same-timestamp reorderings are known
    #: benign and accepted (the runtime analogue of a lint pragma; each
    #: entry should be justified in docs/static_analysis.md).
    races_allowed: tuple[str, ...] = field(default=())

    def build(self, seed: int) -> Facility:
        """Construct the facility this scenario drives, for one seed."""
        if self.prepare is not None:
            raise TypeError(
                f"scenario {self.name!r} is two-phase; use prepare(seed)")
        cfg = self.config() if self.config is not None else None
        return Facility(config=cfg, seed=seed)

    def execute(self, facility: Facility) -> dict:
        """Drive the scenario and return its invariant snapshot."""
        if self.run is None:
            raise TypeError(
                f"scenario {self.name!r} is two-phase; use prepare(seed)")
        return self.run(facility)


def _no_speculation_config() -> FacilityConfig:
    """The canonical facility minus MapReduce speculative execution.

    Speculation is an *intentional* race — idle slots re-run straggling
    attempts and the first finisher wins — so a marginal speculation
    decision legitimately flips under epsilon timing shifts; E7 studies
    it on purpose.  The race sanitizer ablates it to keep the check
    meaningful for everything else.
    """
    cfg = lsdf_2011_config()
    cfg.mr_speculation = False
    return cfg


def _invariants(stats: dict) -> dict:
    """Project a full :meth:`Facility.stats` snapshot onto conservation
    invariants: frame/byte/block accounting, replication health, and
    resilience/durability counters.

    Micro-timing aggregates (wall-clock ``time``, time-integrated
    ``net_bytes``/``cloud_running_vms``, job durations) are deliberately
    excluded: an accepted same-timestamp reordering of symmetric
    consumers changes batch composition, which legitimately shifts those
    by epsilon without any data-path consequence.  Every real race the
    sanitizer has caught so far moved one of the retained counters
    (extra block reads, lost locality, changed task stats).
    """
    hdfs = stats.get("hdfs", {})
    metadata = stats.get("metadata", {})
    resilience = stats.get("resilience", {})
    durability = stats.get("durability", {})
    return {
        "pool_used": stats.get("pool_used"),
        "tape_cartridges": stats.get("tape_cartridges"),
        "hdfs_files": hdfs.get("files"),
        "hdfs_bytes_written": hdfs.get("bytes_written"),
        "hdfs_bytes_read": hdfs.get("bytes_read"),
        "hdfs_node_local_read_fraction": hdfs.get("node_local_read_fraction"),
        "hdfs_under_replicated": hdfs.get("under_replicated"),
        "metadata_datasets": metadata.get("datasets"),
        "metadata_processing_records": metadata.get("processing_records"),
        "metadata_bytes": metadata.get("total_bytes"),
        "resilience_retries": resilience.get("retries"),
        "resilience_timeouts": resilience.get("timeouts"),
        "resilience_dlq_depth": resilience.get("dlq_depth"),
        "resilience_lost_bytes": resilience.get("lost_bytes"),
        "durability_corruptions_detected": durability.get("corruptions_detected"),
        "durability_unrepairable": durability.get("unrepairable"),
        "wal_records": durability.get("metadata", {}).get("wal_records"),
    }


def _run_tiny(facility: Facility) -> dict:
    """Two simulated minutes of zebrafish ingest (all four microscopes,
    metadata registration on) — the smallest end-to-end data path."""
    report = facility.simulate_microscopy_day(duration=120.0)
    snapshot = _invariants(facility.stats())
    snapshot["ingest_frames"] = report.frames_ingested
    snapshot["ingest_unaccounted"] = report.frames_unaccounted
    return snapshot


def _run_standard(facility: Facility) -> dict:
    """Ingest plus the analysis side: a 10-minute screen, a dataset staged
    into HDFS, and one locality-scheduled MapReduce pass over it."""
    from repro.mapreduce.sim import JobSpec

    report = facility.simulate_microscopy_day(duration=600.0)
    staged = facility.load_into_hdfs("/screens/day0", 2 * units.GiB)
    facility.run()
    assert staged.ok
    job = facility.mapreduce.submit(JobSpec(
        name="segment", input_path="/screens/day0", reduces=4,
    ))
    facility.run()
    result = job.value
    snapshot = _invariants(facility.stats())
    snapshot["ingest_frames"] = report.frames_ingested
    snapshot["ingest_unaccounted"] = report.frames_unaccounted
    snapshot["job_completed"] = result is not None
    snapshot["job_locality"] = dict(result.locality_counts)
    snapshot["job_locality_fallbacks"] = result.locality_fallbacks
    snapshot["job_attempts"] = result.attempts
    return snapshot


def _fluid_config() -> FacilityConfig:
    """The canonical facility in fluid-event mode: rate-interval ingest
    over the calendar-queue scheduler (the full fluid kernel stack)."""
    cfg = lsdf_2011_config()
    cfg.fluid_ingest = True
    cfg.scheduler = "calendar"
    return cfg


def _run_fluid(facility: Facility) -> dict:
    """Three sim-minutes of fluid-mode (zero-jitter, bulk-batched) ingest
    with an array brown-out in the middle: rate intervals must break at
    the incident boundary, placement must fail over, and conservation
    must still close exactly."""
    from repro.core.chaos import ChaosSchedule, Incident

    schedule = ChaosSchedule([
        Incident(at=60.0, kind="array_degraded",
                 target=(facility.arrays[0].name,), repair_after=60.0),
    ])
    schedule.run(facility)
    report = facility.simulate_microscopy_day(duration=180.0)
    snapshot = _invariants(facility.stats())
    snapshot["ingest_frames"] = report.frames_ingested
    snapshot["ingest_frames_acquired"] = report.frames_acquired
    snapshot["ingest_unaccounted"] = report.frames_unaccounted
    return snapshot


def _prepare_frontdoor(seed: int):
    """A shrunken overload drill (20% scale and duration): admission
    control, fair queueing, deadline propagation and chaos injection all
    exercised on the front-door path, with the drill's own accounting
    gates folded into the snapshot."""
    from repro.frontdoor.drill import prepare_overload_drill

    facility, finish = prepare_overload_drill(
        seed=seed, scale=0.2, duration_scale=0.2)

    def snapshot() -> dict:
        result = finish()
        return {
            "phases": [
                (p.name, p.submitted, p.admitted, p.served)
                for p in result.phases
            ],
            "terminal": dict(sorted(
                result.accounting.get("terminal", {}).items())),
            "submitted": result.accounting.get("submitted"),
            "peak_queue_depth": result.peak_queue_depth,
            "flushed": result.flushed,
            "client_retries": result.client_retries,
            "admitted_retries": result.admitted_retries,
            "silent_loss": result.accounting.get("silent_loss"),
            "failures": list(result.failures),
        }

    return facility, snapshot


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="tiny",
            description="2 sim-minutes of zebrafish ingest (CI smoke)",
            run=_run_tiny,
        ),
        Scenario(
            name="standard",
            description="10-minute ingest + HDFS staging + one MapReduce job "
                        "(speculation ablated: it races by design)",
            run=_run_standard,
            config=_no_speculation_config,
        ),
        Scenario(
            name="fluid",
            description="3-minute fluid-mode ingest (rate intervals + "
                        "calendar queue) with an array brown-out",
            run=_run_fluid,
            config=_fluid_config,
        ),
        Scenario(
            name="frontdoor",
            description="shrunken overload drill: admission control + fair "
                        "queueing + deadlines under backend chaos",
            prepare=_prepare_frontdoor,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (KeyError lists the alternatives)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
