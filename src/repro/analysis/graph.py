"""``python -m repro.analysis.graph`` — dump and query the project graphs.

Queries::

    stats                 headline counts (modules/functions/edges/...)
    dump                  every call edge, caller -> callee @ file:line
    callers  QUALNAME     call sites into a function (suffix match ok)
    callees  QUALNAME     call sites out of a function (suffix match ok)
    imports  MODULE       project modules a module imports, and importers

``--cache FILE`` writes (and reuses, content-hash validated) the graph
cache the lint CLI's ``--graph-cache`` shares — CI builds the graph once
and both the whole-program lint and the telemetry cross-check reuse it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.analysis.graphs import CallGraph, ImportGraph, Project


def _resolve(project: Project, query: str) -> list[str]:
    """Functions matching an exact qualname or a dotted-suffix query."""
    if query in project.functions:
        return [query]
    return sorted(
        qual for qual in project.functions
        if qual.endswith("." + query) or qual.rsplit(".", 1)[-1] == query)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 2 bad query)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.graph",
        description="Dump and query the whole-program import/call graphs.")
    parser.add_argument("command",
                        choices=("stats", "dump", "callers", "callees",
                                 "imports"),
                        help="what to show")
    parser.add_argument("query", nargs="?", default=None,
                        help="function qualname (callers/callees) or module "
                             "name (imports); suffix match accepted")
    parser.add_argument("--root", default="src/repro",
                        help="project root to parse (default: src/repro)")
    parser.add_argument("--cache", default=None, metavar="FILE",
                        help="graph cache file to reuse/refresh")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of text")
    args = parser.parse_args(argv)

    project = Project.load([args.root])
    if args.cache:
        graph = CallGraph.load_cached(project, args.cache)
    else:
        graph = CallGraph(project)

    if args.command == "stats":
        stats = graph.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            width = max(len(k) for k in stats)
            for key, value in stats.items():
                print(f"{key:<{width}}  {value}")
        return 0

    if args.command == "dump":
        rows = [s for sites in graph.edges.values() for s in sites]
        rows.sort(key=lambda s: (s.caller, s.line))
        if args.json:
            print(json.dumps([
                {"caller": s.caller, "callee": s.callee,
                 "path": s.path, "line": s.line} for s in rows], indent=2))
        else:
            for site in rows:
                print(f"{site.caller} -> {site.callee}"
                      f"  @ {site.path}:{site.line}")
        return 0

    if args.command == "imports":
        if not args.query:
            parser.error("imports needs a module name")
        imports = ImportGraph(project)
        matches = [name for name in imports.imports
                   if name == args.query or name.endswith("." + args.query)]
        if not matches:
            print(f"no project module matches {args.query!r}",
                  file=sys.stderr)
            return 2
        payload = {name: {"imports": imports.imports[name],
                          "imported_by": imports.importers_of(name)}
                   for name in matches}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            for name, row in payload.items():
                print(f"{name}")
                for dep in row["imports"]:
                    print(f"  -> {dep}")
                for src in row["imported_by"]:
                    print(f"  <- {src}")
        return 0

    # callers / callees
    if not args.query:
        parser.error(f"{args.command} needs a function qualname")
    matches = _resolve(project, args.query)
    if not matches:
        print(f"no function matches {args.query!r}", file=sys.stderr)
        return 2
    payload = {}
    for qual in matches:
        sites = (graph.callers(qual) if args.command == "callers"
                 else graph.callees(qual))
        payload[qual] = [
            {"caller": s.caller, "callee": s.callee,
             "path": s.path, "line": s.line} for s in sites]
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for qual, rows in payload.items():
            print(qual)
            for row in rows:
                other = (row["caller"] if args.command == "callers"
                         else row["callee"])
                arrow = "<-" if args.command == "callers" else "->"
                print(f"  {arrow} {other}  @ {row['path']}:{row['line']}")
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
