"""Facility static analysis and runtime sanitizers.

The LSDF reproduction's headline claim — every simulation is bit-for-bit
deterministic given a seed, and ingested data is write-once — rests on
conventions (seeded RNG discipline, total event ordering, no wall-clock
leakage, no swallowed failures).  This package turns those conventions into
enforced invariants:

* :mod:`repro.analysis.lint` — an AST-based lint engine with facility
  domain rules, ``# lint: disable=<rule>`` pragmas and a committed
  baseline (``python -m repro.analysis.lint src/repro``);
* :mod:`repro.analysis.graphs` / :mod:`repro.analysis.whole_program` —
  the whole-program layer: project loader, import/call graphs, CFG
  (:mod:`repro.analysis.cfg`), simkit protocol rules
  (:mod:`repro.analysis.protocol`), interprocedural clock/RNG taint
  (:mod:`repro.analysis.taint`) and the telemetry schema cross-check
  (:mod:`repro.analysis.telemetry_check`); run via
  ``python -m repro.analysis.lint src/repro --wpa`` and query the graphs
  with ``python -m repro.analysis.graph``;
* :mod:`repro.analysis.sanitize` — runtime sanitizers: a double-run
  determinism checker that diffs full event traces, a same-timestamp
  race detector driven by a randomized tie-shuffle, and an unseeded-RNG
  tripwire (``python -m repro.analysis.sanitize``).
"""

from repro.analysis.findings import Finding, Severity, TraceHop
from repro.analysis.engine import Linter, SourceModule
from repro.analysis.rules import Rule, all_rules, get_rule, register
from repro.analysis.baseline import Baseline
from repro.analysis.trace import TraceEntry, TraceRecorder
from repro.analysis.tripwire import UnseededRandomnessError, rng_tripwire

# The runtime sanitizer entry points (check_determinism, check_races,
# DeterminismReport, RaceReport) live in repro.analysis.sanitize and are
# imported from there directly: importing them here would pull the whole
# facility stack into ``import repro.analysis`` and break
# ``python -m repro.analysis.sanitize`` with a runpy double-import warning.

__all__ = [
    "Baseline",
    "Finding",
    "Linter",
    "Rule",
    "Severity",
    "SourceModule",
    "TraceHop",
    "TraceEntry",
    "TraceRecorder",
    "UnseededRandomnessError",
    "all_rules",
    "get_rule",
    "register",
    "rng_tripwire",
]
