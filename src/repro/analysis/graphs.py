"""Whole-program structure: the project loader, import graph and call graph.

Per-file AST rules see one module at a time; the generator-process
subsystems (policy daemon, front-door workers, durability scrubber) hide
their bugs *between* functions and modules.  :class:`Project` parses every
module under a root once, indexes functions and classes by qualified name,
and builds two graphs over them:

* :class:`ImportGraph` — which project modules import which (dependency
  queries, cycle hunting);
* :class:`CallGraph` — an approximate static call graph resolving
  ``self.method`` (through the enclosing class and its project-local
  bases), module-level functions, and
  :class:`~repro.analysis.rules.ImportMap` aliases — the substrate the
  protocol checker and taint passes traverse.

The call graph is deliberately *approximate*: dynamically dispatched
attribute calls on arbitrary objects stay unresolved (counted, not
guessed), so every edge it does report corresponds to a real syntactic
call that static name resolution pins to one project function.

``python -m repro.analysis.graph`` dumps and queries the graphs; the
``--cache`` file (content-hash validated) lets CI build the graph once
and share it between the lint and cross-check steps.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.engine import Linter, SourceModule
from repro.analysis.rules import dotted

_CACHE_FORMAT = 1


def _module_name(relpath: str) -> str:
    """Dotted module name of a project-relative path.

    ``repro/frontdoor/service.py`` -> ``repro.frontdoor.service``;
    ``repro/frontdoor/__init__.py`` -> ``repro.frontdoor``.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method, indexed by qualified name."""

    qualname: str            # repro.frontdoor.service.FrontDoor._serve
    module: SourceModule
    node: ast.AST            # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # enclosing class qualname, if a method
    is_generator: bool = False

    @property
    def path(self) -> str:
        """Module path of the definition."""
        return self.module.relpath

    @property
    def line(self) -> int:
        """1-indexed definition line."""
        return self.node.lineno

    @property
    def name(self) -> str:
        """The bare function name."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition: its methods and project-resolvable bases."""

    qualname: str
    module: SourceModule
    node: ast.ClassDef
    methods: dict  # name -> FunctionInfo
    bases: list    # dotted base-class names (resolved through ImportMap)


def _is_generator(node: ast.AST) -> bool:
    """Whether a function body contains a yield outside nested functions."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _is_generator(child):
            return True
    return False


class Project:
    """Every parsed module under a root, indexed for whole-program passes."""

    def __init__(self, modules: Iterable[SourceModule],
                 repo_root: Optional[Path] = None):
        #: relpath -> module
        self.modules: dict[str, SourceModule] = {
            m.relpath: m for m in modules
        }
        #: dotted module name -> module
        self.by_name: dict[str, SourceModule] = {
            _module_name(m.relpath): m for m in self.modules.values()
        }
        self.repo_root = repo_root or Path.cwd()
        #: qualname -> FunctionInfo (functions, methods, nested functions)
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        for module in self.modules.values():
            self._index_module(module)

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable[str | Path],
             repo_root: Optional[Path] = None) -> "Project":
        """Parse every ``*.py`` under ``paths`` into a project.

        Files that do not parse are skipped here — the per-file lint
        already reports them as REP000.
        """
        modules = []
        for path in Linter._iter_files(paths):
            try:
                modules.append(SourceModule(
                    path.read_text(encoding="utf-8"),
                    Linter._relpath(path), path))
            except SyntaxError:
                continue
        return cls(modules, repo_root=repo_root or _find_repo_root(paths))

    # -- indexing ------------------------------------------------------------
    def _index_module(self, module: SourceModule) -> None:
        modname = _module_name(module.relpath)

        def visit(node: ast.AST, scope: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{scope}.{child.name}"
                    info = FunctionInfo(
                        qualname=qual, module=module, node=child, cls=cls,
                        is_generator=_is_generator(child))
                    self.functions[qual] = info
                    if cls is not None and cls in self.classes:
                        self.classes[cls].methods[child.name] = info
                    visit(child, qual, None)
                elif isinstance(child, ast.ClassDef):
                    qual = f"{scope}.{child.name}"
                    bases = []
                    for base in child.bases:
                        resolved = module.imports.resolve(base)
                        if resolved:
                            bases.append(resolved)
                    self.classes[qual] = ClassInfo(
                        qualname=qual, module=module, node=child,
                        methods={}, bases=bases)
                    visit(child, qual, qual)
                else:
                    visit(child, scope, cls)

        visit(module.tree, modname, None)

    # -- lookups -------------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionInfo]:
        """Look a function up by exact qualified name."""
        return self.functions.get(qualname)

    def resolve_method(self, cls_qualname: str, method: str,
                       _seen: Optional[set] = None) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or its project-local base classes."""
        seen = _seen or set()
        if cls_qualname in seen:
            return None
        seen.add(cls_qualname)
        info = self.classes.get(cls_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        modname = _module_name(info.module.relpath)
        for base in info.bases:
            # Same-module bases resolve to their bare spelling; qualify.
            if base not in self.classes and f"{modname}.{base}" in self.classes:
                base = f"{modname}.{base}"
            found = self.resolve_method(base, method, seen)
            if found is not None:
                return found
        return None

    def file_hashes(self) -> dict[str, str]:
        """Content hash per module (cache validation)."""
        return {
            relpath: hashlib.sha256(m.text.encode("utf-8")).hexdigest()[:16]
            for relpath, m in sorted(self.modules.items())
        }


def _find_repo_root(paths: Iterable[str | Path]) -> Path:
    """Walk up from the first path to the directory holding ``.git`` /
    ``docs`` / ``.github`` (external-catalog cross-checks live there)."""
    for raw in paths:
        cur = Path(raw).resolve()
        for candidate in (cur, *cur.parents):
            if any((candidate / marker).exists()
                   for marker in (".git", ".github", "docs")):
                return candidate
    return Path.cwd()


# ---------------------------------------------------------------------------
# import graph
# ---------------------------------------------------------------------------

class ImportGraph:
    """Project-internal module dependency edges."""

    def __init__(self, project: Project):
        self.project = project
        #: module name -> sorted imported project-module names
        self.imports: dict[str, list[str]] = {}
        known = set(project.by_name)
        for name, module in sorted(project.by_name.items()):
            targets: set[str] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        targets.update(self._known_prefix(alias.name, known))
                elif isinstance(node, ast.ImportFrom):
                    if node.level or not node.module:
                        continue
                    for alias in node.names:
                        full = f"{node.module}.{alias.name}"
                        hit = self._known_prefix(full, known)
                        targets.update(
                            hit or self._known_prefix(node.module, known))
            targets.discard(name)
            self.imports[name] = sorted(targets)

    @staticmethod
    def _known_prefix(dotted_name: str, known: set[str]) -> set[str]:
        """The longest known project module that prefixes ``dotted_name``."""
        parts = dotted_name.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in known:
                return {candidate}
        return set()

    def importers_of(self, name: str) -> list[str]:
        """Modules that import ``name``."""
        return sorted(src for src, targets in self.imports.items()
                      if name in targets)


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallSite:
    """One resolved call edge with its source location."""

    caller: str
    callee: str
    path: str
    line: int


class CallGraph:
    """Approximate static call graph over a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        #: caller qualname -> call sites out of it
        self.edges: dict[str, list[CallSite]] = {}
        #: callee qualname -> call sites into it
        self.reverse: dict[str, list[CallSite]] = {}
        self.unresolved_calls = 0
        self._build()

    # -- construction --------------------------------------------------------
    def _build(self) -> None:
        for qual, info in sorted(self.project.functions.items()):
            sites = []
            for call in self._own_calls(info.node):
                callee = self.resolve_call(call, info)
                if callee is None:
                    self.unresolved_calls += 1
                    continue
                site = CallSite(caller=qual, callee=callee,
                                path=info.path, line=call.lineno)
                sites.append(site)
                self.reverse.setdefault(callee, []).append(site)
            self.edges[qual] = sites

    @staticmethod
    def _own_calls(node: ast.AST) -> Iterator[ast.Call]:
        """Call nodes in a function body, excluding nested function bodies
        (those are attributed to the nested function's own qualname)."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from CallGraph._own_calls(child)

    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> Optional[str]:
        """Qualified name of the project function a call targets, if the
        static resolution rules pin it to exactly one."""
        func = call.func
        module = caller.module
        modname = _module_name(module.relpath)

        if isinstance(func, ast.Name):
            name = func.id
            # Module-level function or class in the same module.
            local = f"{modname}.{name}"
            if local in self.project.functions:
                return local
            if local in self.project.classes:
                init = self.project.resolve_method(local, "__init__")
                return init.qualname if init else None
            # Imported name: "from repro.x import helper" / "as h".
            target = module.imports.names.get(name)
            if target:
                return self._lookup_dotted(target)
            return None

        if isinstance(func, ast.Attribute):
            spelled = dotted(func)
            if spelled is None:
                return None
            parts = spelled.split(".")
            # self.method() — the enclosing class, then its bases.
            if parts[0] == "self" and caller.cls is not None and len(parts) == 2:
                found = self.project.resolve_method(caller.cls, parts[1])
                return found.qualname if found else None
            # Aliased module attribute: "mod.func()" / "pkg.mod.Class()".
            resolved = module.imports.resolve(func)
            if resolved:
                return self._lookup_dotted(resolved)
        return None

    def _lookup_dotted(self, target: str) -> Optional[str]:
        """Map a fully-qualified dotted path onto a project function."""
        if target in self.project.functions:
            return target
        if target in self.project.classes:
            init = self.project.resolve_method(target, "__init__")
            return init.qualname if init else None
        # Method spelled through the class: repro.x.Cls.method resolved
        # through base classes.
        if "." in target:
            cls, method = target.rsplit(".", 1)
            if cls in self.project.classes:
                found = self.project.resolve_method(cls, method)
                return found.qualname if found else None
        return None

    # -- queries -------------------------------------------------------------
    def callees(self, qualname: str) -> list[CallSite]:
        """Call sites out of a function."""
        return list(self.edges.get(qualname, ()))

    def callers(self, qualname: str) -> list[CallSite]:
        """Call sites into a function."""
        return list(self.reverse.get(qualname, ()))

    def reachable(self, roots: Iterable[str],
                  stop: Optional[set[str]] = None) -> dict[str, Optional[CallSite]]:
        """BFS over call edges from ``roots``.

        Returns ``{qualname: parent-edge}`` for every reached function
        (roots map to ``None``).  Traversal does not *continue through*
        functions in ``stop`` (they are reached but not expanded) — how
        the protocol checker models guard wrappers.
        """
        stop = stop or set()
        parents: dict[str, Optional[CallSite]] = {}
        frontier = [r for r in roots if r in self.edges]
        for root in frontier:
            parents[root] = None
        while frontier:
            nxt = []
            for qual in frontier:
                if qual in stop:
                    continue
                for site in self.edges.get(qual, ()):
                    if site.callee not in parents:
                        parents[site.callee] = site
                        nxt.append(site.callee)
            frontier = nxt
        return parents

    @staticmethod
    def chain(parents: dict[str, Optional[CallSite]],
              qualname: str) -> list[CallSite]:
        """The root→``qualname`` edge chain from a :meth:`reachable` map."""
        out: list[CallSite] = []
        cur = qualname
        while parents.get(cur) is not None:
            site = parents[cur]
            out.append(site)
            cur = site.caller
        out.reverse()
        return out

    # -- cache ---------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able cache payload (content-hash validated on load)."""
        return {
            "format": _CACHE_FORMAT,
            "files": self.project.file_hashes(),
            "unresolved_calls": self.unresolved_calls,
            "edges": [
                {"caller": s.caller, "callee": s.callee,
                 "path": s.path, "line": s.line}
                for sites in self.edges.values() for s in sites
            ],
        }

    def save_cache(self, path: str | Path) -> None:
        """Write the cache file."""
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=1) + "\n", encoding="utf-8")

    @classmethod
    def load_cached(cls, project: Project,
                    path: str | Path) -> "CallGraph":
        """Build from a cache file when its hashes match, else rebuild
        (and refresh the cache file)."""
        cache_path = Path(path)
        if cache_path.exists():
            try:
                payload = json.loads(cache_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            if (payload and payload.get("format") == _CACHE_FORMAT
                    and payload.get("files") == project.file_hashes()):
                graph = cls.__new__(cls)
                graph.project = project
                graph.edges = {qual: [] for qual in project.functions}
                graph.reverse = {}
                graph.unresolved_calls = payload.get("unresolved_calls", 0)
                for row in payload.get("edges", ()):
                    site = CallSite(row["caller"], row["callee"],
                                    row["path"], row["line"])
                    graph.edges.setdefault(site.caller, []).append(site)
                    graph.reverse.setdefault(site.callee, []).append(site)
                return graph
        graph = cls(project)
        try:
            graph.save_cache(cache_path)
        except OSError:
            pass
        return graph

    def stats(self) -> dict:
        """Headline graph numbers (the CLI ``stats`` view)."""
        return {
            "modules": len(self.project.modules),
            "functions": len(self.project.functions),
            "classes": len(self.project.classes),
            "edges": sum(len(s) for s in self.edges.values()),
            "unresolved_calls": self.unresolved_calls,
            "generators": sum(
                1 for f in self.project.functions.values() if f.is_generator),
        }
