"""The facility rule catalogue and registry.

Each rule is a small AST check encoding one invariant the reproduction's
determinism / write-once claims rest on.  Rules self-register via
:func:`register`; the engine runs every registered rule against every
module, honouring per-rule ``exempt`` path patterns (facility internals
that legitimately own the dangerous operation) and ``scope`` patterns
(rules that only make sense on specific hot paths).

Adding a rule
-------------
Subclass :class:`Rule`, give it a unique ``id``/``name``, implement
``check(module)`` yielding :class:`~repro.analysis.findings.Finding`\\ s
(use :meth:`Rule.finding` for the boilerplate), and decorate the class
with ``@register``.  See :doc:`docs/static_analysis.md` for the workflow.
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import SourceModule


# ---------------------------------------------------------------------------
# import resolution
# ---------------------------------------------------------------------------

class ImportMap:
    """Tracks what local names resolve to which fully-qualified modules.

    Lets rules recognise ``time.time()`` whether it was spelled
    ``import time``, ``import time as t``, or ``from time import time``.
    """

    def __init__(self, tree: ast.AST):
        #: local alias -> full module path ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: local name -> full dotted origin ("default_rng" -> "numpy.random.default_rng")
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds c -> a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted path of a Name/Attribute chain, if known.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``"numpy.random.seed"``; ``datetime.now`` with
        ``from datetime import datetime`` to ``"datetime.datetime.now"``.
        Unresolvable chains (method calls on arbitrary objects) return the
        literal dotted spelling so prefix checks still see e.g.
        ``"self.backend.put"``.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = cur.id
        parts.append(base)
        parts.reverse()
        if base in self.modules:
            parts[0] = self.modules[base]
        elif base in self.names:
            parts[0] = self.names[base]
        return ".".join(parts)


def dotted(node: ast.AST) -> Optional[str]:
    """The literal dotted spelling of a Name/Attribute chain, or None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# rule base + registry
# ---------------------------------------------------------------------------

class Rule:
    """Base class for lint rules."""

    #: Stable identifier, e.g. "REP001".
    id: str = ""
    #: Human name used in reports and pragmas, e.g. "wall-clock".
    name: str = ""
    severity: str = Severity.ERROR
    description: str = ""
    #: Path patterns (fnmatched against the module path suffix) where the
    #: rule is silenced — facility internals that own the operation.
    exempt: tuple[str, ...] = ()
    #: When non-empty, the rule only runs on modules matching one of these
    #: patterns (hot-path-only rules).
    scope: tuple[str, ...] = ()
    #: Whole-program rules need the project graph, not one module: the
    #: per-file :class:`~repro.analysis.engine.Linter` skips them and the
    #: whole-program engine (``repro.analysis.whole_program``) runs their
    #: :meth:`WholeProgramRule.check_project` instead.
    whole_program: bool = False

    def applies_to(self, module: "SourceModule") -> bool:
        """True when the module is in scope and not exempt for this rule."""
        path = module.relpath
        if self.scope and not any(_match(path, pat) for pat in self.scope):
            return False
        return not any(_match(path, pat) for pat in self.exempt)

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        """Yield one :class:`Finding` per violation in the module."""
        raise NotImplementedError

    def finding(self, module: "SourceModule", node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` with this rule's id/severity."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            rule=self.name,
            rule_id=self.id,
            severity=self.severity,
            message=message,
            snippet=module.line_text(line),
        )


class WholeProgramRule(Rule):
    """Base class for rules that analyse the whole project at once.

    Subclasses implement :meth:`check_project` over a
    :class:`~repro.analysis.graphs.Project` (which carries every parsed
    module plus the import/call graphs).  ``applies_to``/``exempt`` still
    work — the whole-program engine filters each finding by its *path* —
    and per-line pragmas suppress findings exactly as for per-file rules.
    """

    whole_program = True

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        """Whole-program rules produce nothing per-module."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings over the whole :class:`Project`."""
        raise NotImplementedError

    def path_exempt(self, path: str) -> bool:
        """True when findings at ``path`` are exempt for this rule."""
        if self.scope and not any(_match(path, pat) for pat in self.scope):
            return True
        return any(_match(path, pat) for pat in self.exempt)


def _match(path: str, pattern: str) -> bool:
    """fnmatch a posix path against a suffix pattern like
    ``repro/adal/backends/*`` or ``repro/simkit/rand.py``."""
    return fnmatch(path, pattern) or fnmatch(path, f"*/{pattern}")


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs id and name")
    for existing in _REGISTRY.values():
        if existing.id == rule.id or existing.name == rule.name:
            raise ValueError(f"duplicate rule id/name: {rule.id}/{rule.name}")
    Severity.validate(rule.severity)
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id."""
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def get_rule(token: str) -> Optional[Rule]:
    """Look a rule up by name or id."""
    if token in _REGISTRY:
        return _REGISTRY[token]
    for rule in _REGISTRY.values():
        if rule.id == token:
            return rule
    return None


# ---------------------------------------------------------------------------
# REP001 — wall-clock
# ---------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.sleep",
}
_DATETIME = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """Simulation code must read :attr:`Simulator.now`, never the host
    clock — wall-clock reads differ between runs and break seeded
    reproducibility."""

    id = "REP001"
    name = "wall-clock"
    description = ("no time.time/monotonic/sleep or datetime.now inside "
                   "src/repro — use sim.now / sim.timeout")
    #: The wire layer IS the wall-clock boundary: a real asyncio TCP
    #: service in front of the deterministic facility.  Host time is its
    #: job; nothing it fronts reads the clock through it.
    exempt = ("repro/adal/wire/*",)

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.imports.resolve(node.func)
            if target in _WALL_CLOCK or target in _DATETIME:
                yield self.finding(
                    module, node,
                    f"wall-clock call {target}() leaks host time into the "
                    "facility — use the simulator clock (sim.now / sim.timeout)",
                )


# ---------------------------------------------------------------------------
# REP002 — stdlib-random
# ---------------------------------------------------------------------------

@register
class StdlibRandomRule(Rule):
    """The stdlib ``random`` module is a process-global, implicitly seeded
    stream; all facility randomness must flow through
    ``Simulator.random`` / ``RandomSource.spawn``."""

    id = "REP002"
    name = "stdlib-random"
    description = "no stdlib random module — use Simulator.random / RandomSource.spawn"
    exempt = ("repro/analysis/tripwire.py",)

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node,
                            "stdlib random imported — draw from a seeded "
                            "RandomSource substream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield self.finding(
                        module, node,
                        "stdlib random imported — draw from a seeded "
                        "RandomSource substream instead",
                    )


# ---------------------------------------------------------------------------
# REP003 — raw-numpy-rng
# ---------------------------------------------------------------------------

@register
class RawNumpyRngRule(Rule):
    """``np.random.*`` (global state, ``default_rng``, raw ``Generator``
    construction) bypasses the spawned-substream discipline that keeps
    benchmark arms comparable run-to-run."""

    id = "REP003"
    name = "raw-numpy-rng"
    description = ("no numpy.random.* outside simkit.rand — spawn a "
                   "RandomSource substream")
    exempt = ("repro/simkit/rand.py", "repro/analysis/tripwire.py")

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = module.imports.resolve(node.func)
                if target and target.startswith("numpy.random."):
                    yield self.finding(
                        module, node,
                        f"raw numpy RNG {target}() — spawn a substream via "
                        "Simulator.random / RandomSource.spawn",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and node.module.startswith(
                    "numpy.random"
                ):
                    yield self.finding(
                        module, node,
                        "numpy.random imported directly — spawn a substream "
                        "via Simulator.random / RandomSource.spawn",
                    )


# ---------------------------------------------------------------------------
# REP004 — swallowed-exception
# ---------------------------------------------------------------------------

_BROAD = {"Exception", "BaseException"}


@register
class SwallowedExceptionRule(Rule):
    """A bare/broad except whose body neither re-raises nor calls anything
    (pure ``pass`` / fallback assignment) turns real bugs into silent
    behaviour changes — the resilience layer exists precisely so failures
    are *counted*, not swallowed."""

    id = "REP004"
    name = "swallowed-exception"
    description = ("no bare/blind `except Exception` that neither re-raises "
                   "nor records the failure")

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            if isinstance(t, ast.Name) and t.id in _BROAD:
                return True
        return False

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or not self._is_broad(node):
                continue
            handles = False
            for sub in node.body:
                for inner in ast.walk(sub):
                    if isinstance(inner, (ast.Raise, ast.Call)):
                        handles = True
                        break
                if handles:
                    break
            if not handles:
                yield self.finding(
                    module, node,
                    "broad except swallows the failure without re-raising or "
                    "recording it — catch a narrow type, or count/log the fallback",
                )


# ---------------------------------------------------------------------------
# REP005 — write-once-overwrite
# ---------------------------------------------------------------------------

@register
class WriteOnceRule(Rule):
    """Ingested facility data is write-once/read-many; only the tiering
    backends (internal copy movement) may pass ``overwrite=True`` to a
    backend ``put``."""

    id = "REP005"
    name = "write-once-overwrite"
    description = ("no backend .put(..., overwrite=True) outside the ADAL "
                   "tiering internals — ingest data is write-once")
    exempt = ("repro/adal/backends/*",)

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "put"):
                continue
            for kw in node.keywords:
                if (kw.arg == "overwrite"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    yield self.finding(
                        module, node,
                        ".put(..., overwrite=True) violates the write-once "
                        "invariant outside tiering internals",
                    )


# ---------------------------------------------------------------------------
# REP006 — unguarded-backend-io (retired)
# ---------------------------------------------------------------------------
# REP006's per-file heuristic (raw ``*backend*.get/put/...`` calls on the
# ingest/ADAL modules only) is subsumed by REP013 ``unguarded-backend-reach``
# in :mod:`repro.analysis.protocol`, which walks the project call graph from
# every simkit process entry point — so a backend leg hidden one call hop
# away (or in a module REP006 never scoped) is now caught, and call chains
# that pass through a retry/timeout/breaker guard are not.  The id REP006
# stays reserved.

_BACKEND_OPS = {"put", "get", "stat", "listdir", "delete", "exists"}


# ---------------------------------------------------------------------------
# REP007 — yield-raw-value
# ---------------------------------------------------------------------------

def _is_numeric_const(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_const(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_numeric_const(node.left) and _is_numeric_const(node.right)
    return False


@register
class YieldRawValueRule(Rule):
    """``yield 3.5`` inside a simulation process is a classic bug: the
    kernel needs an :class:`Event` (``yield sim.timeout(3.5)``); a raw
    number is rejected at runtime deep inside the run."""

    id = "REP007"
    name = "yield-raw-value"
    description = "no `yield <number>` where an Event is required — use sim.timeout()"

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Yield) and node.value is not None
                    and _is_numeric_const(node.value)):
                yield self.finding(
                    module, node,
                    "yield of a raw number — simulation processes must yield "
                    "Events (sim.timeout(delay))",
                )


# ---------------------------------------------------------------------------
# REP008 — set-iteration
# ---------------------------------------------------------------------------

def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class SetIterationRule(Rule):
    """Iterating a set of strings orders elements by hash; with hash
    randomization that order differs between *processes*, so any sim
    behaviour derived from it diverges run-to-run.  Sort first."""

    id = "REP008"
    name = "set-iteration"
    description = ("no iteration over bare set expressions — wrap in "
                   "sorted(...) for a stable order")

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                  and node.func.id in ("list", "tuple") and len(node.args) == 1):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        module, it,
                        "iteration over a set expression has hash-dependent "
                        "order — wrap in sorted(...)",
                    )


# ---------------------------------------------------------------------------
# REP009 — ad-hoc-counter
# ---------------------------------------------------------------------------

_MONITOR_INSTRUMENTS = {
    "repro.simkit.monitor.Counter",
    "repro.simkit.monitor.Tally",
}

_COUNTERISH_NAME = re.compile(r"(stats|counts?|counters?|metrics|totals?)($|_)")


@register
class AdHocCounterRule(Rule):
    """Every subsystem statistic belongs on the telemetry spine
    (:mod:`repro.telemetry`) under a stable metric name — not in a private
    mutable dict, a ``collections.Counter`` field, or a raw
    ``simkit.monitor`` instrument that reports and CLI views cannot
    discover.  Time-weighted series (``TimeWeighted``) stay monitor
    primitives by design (the registry has no time-weighted kind) and are
    deliberately not flagged."""

    id = "REP009"
    name = "ad-hoc-counter"
    description = ("no ad-hoc stats fields (mutable counter dicts, "
                   "collections.Counter, raw monitor Counter/Tally) outside "
                   "repro.telemetry — register on the MetricsRegistry")
    exempt = (
        # The spine itself and the primitives it wraps.
        "repro/telemetry/*",
        "repro/simkit/*",
        # Per-spindle queueing internals of the fluid disk model: local to
        # one device process, never read by reports.
        "repro/storage/ps.py",
    )

    def _attr_name(self, target: ast.AST) -> Optional[str]:
        """The attribute name of a ``self.<name>`` assignment target."""
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        return None

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = [n for n in map(self._attr_name, targets) if n is not None]
            if not names:
                continue
            label = ", ".join(f"self.{n}" for n in names)
            if isinstance(value, ast.Call):
                resolved = module.imports.resolve(value.func) or ""
                if resolved in ("collections.Counter", "collections.defaultdict"):
                    yield self.finding(
                        module, node,
                        f"{label} is a {resolved.split('.')[-1]} stats field — "
                        "register a labelled counter on the MetricsRegistry "
                        "instead",
                    )
                elif resolved in _MONITOR_INSTRUMENTS:
                    yield self.finding(
                        module, node,
                        f"{label} instantiates a raw monitor "
                        f"{resolved.rsplit('.', 1)[-1]} — migrate to "
                        "registry.counter()/summary() so reports and the CLI "
                        "can discover it",
                    )
            if (isinstance(value, ast.Dict)
                    and any(_COUNTERISH_NAME.search(n) for n in names)):
                yield self.finding(
                    module, node,
                    f"{label} looks like a mutable counter dict — register "
                    "labelled instruments on the MetricsRegistry instead",
                )


# ---------------------------------------------------------------------------
# REP019 — blocking-call-in-async
# ---------------------------------------------------------------------------

#: Calls that block the running thread — poison inside an event loop.
_ASYNC_BLOCKING = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "os.fsync": "run it in a thread (asyncio.to_thread) or outside the loop",
    "socket.socket": "use asyncio.open_connection / start_server streams",
    "socket.create_connection": "use asyncio.open_connection",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "urllib.request.urlopen": "blocking HTTP stalls the event loop",
    "requests.get": "blocking HTTP stalls the event loop",
    "requests.post": "blocking HTTP stalls the event loop",
    "requests.request": "blocking HTTP stalls the event loop",
    "open": "blocking file IO stalls the event loop — stage it off-loop",
}

#: Sim-only suspension APIs: yield-based, meaningless under asyncio.
_SIM_ONLY_SUFFIXES = ("sim.timeout", "sim.call_at", "sim.run")


@register
class AsyncBlockingRule(Rule):
    """An ``async def`` body that calls ``time.sleep``, blocking socket /
    file / subprocess IO, or a sim-only suspension API stalls the whole
    event loop (or yields an object asyncio cannot await) — every
    connection served by that loop stops, which defeats the wire layer's
    concurrency and its backpressure story."""

    id = "REP019"
    name = "blocking-call-in-async"
    description = ("no time.sleep / blocking socket, file or subprocess IO / "
                   "sim-only APIs inside `async def` bodies — use the "
                   "asyncio equivalents")

    def _own_statements(self, func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes of the async function, excluding nested function bodies.

        A nested ``def`` is not executed by awaiting the outer coroutine
        (it may legitimately be handed to a thread pool); nested ``async
        def``\\ s are visited in their own right by the module walk.
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def check(self, module: "SourceModule") -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in self._own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                target = module.imports.resolve(node.func)
                if target is None:
                    continue
                hint = _ASYNC_BLOCKING.get(target)
                if hint is not None:
                    yield self.finding(
                        module, node,
                        f"blocking call {target}() inside async def "
                        f"{func.name!r} stalls the event loop — {hint}",
                    )
                elif any(target == s or target.endswith("." + s)
                         for s in _SIM_ONLY_SUFFIXES):
                    yield self.finding(
                        module, node,
                        f"sim-only API {target}() inside async def "
                        f"{func.name!r} — simulation suspension primitives "
                        "cannot be awaited by the asyncio loop",
                    )


def catalogue() -> list[dict]:
    """Rule catalogue rows for docs / --list-rules."""
    return [
        {
            "id": r.id,
            "name": r.name,
            "severity": r.severity,
            "description": r.description,
            "scope": list(r.scope),
            "exempt": list(r.exempt),
            "whole_program": r.whole_program,
        }
        for r in all_rules()
    ]
