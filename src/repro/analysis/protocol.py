"""Simkit protocol rules: resource-grant leaks, event misuse, and
unguarded backend reachability.

These rules encode the discipline the simulation kernel expects of its
generator processes but cannot enforce at runtime without a failure:

* **REP010 leaked-request** — a ``resource.request()`` grant must be
  released (or cancelled) on *every* path out of the acquiring function.
  The CFG (with its finally-routing) answers the all-paths question, so
  ``try/finally: release(req)`` is recognised as exhaustive.
* **REP011 double-yield** — yielding the same event object twice without
  rebinding it in between re-arms a consumed event; the kernel silently
  never wakes the process the second time.
* **REP012 stale-loop-yield** — a loop that yields the same variable on
  every iteration without ever rebinding it inside the loop is the loop
  form of the same bug (one wake, then a permanently parked process).
* **REP013 unguarded-backend-reach** — the whole-program replacement for
  the retired per-file REP006: a backend/store call is flagged when it
  is reachable over the call graph from a simkit process root with no
  ``with_timeout`` / retry-policy / breaker guard anywhere on the chain.
  The finding carries the root→sink trace.

REP010–REP012 are per-function CFG checks but registered as
whole-program rules: they share the project walk (and therefore run in
the ``--wpa`` pass, not the per-file lint).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.cfg import EXIT, Cfg
from repro.analysis.findings import Finding, Severity, TraceHop
from repro.analysis.graphs import CallGraph, FunctionInfo, Project
from repro.analysis.rules import (
    _BACKEND_OPS,
    WholeProgramRule,
    dotted,
    register,
)

# Functions containing any of these are treated as guard-providing: the
# call chain below them is presumed wrapped in timeout/retry/breaker
# handling, so REP013 stops traversing there.
_GUARD_CALL_NAMES = {"with_timeout", "run_sync"}
_GUARD_METHODS = {
    "allow": ("breaker", "circuit"),
    "delay": ("policy", "retry"),
    "call": ("policy", "retry"),
}


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression trees evaluated *by this statement itself*, excluding
    nested statement bodies (those are their own CFG nodes)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
        return
    else:
        yield stmt


def _calls_in(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes executed by a statement (its own expressions only)."""
    for expr in _own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _binds(stmt: ast.stmt, name: str) -> bool:
    """Whether executing this statement rebinds local ``name``."""
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [i.optional_vars for i in stmt.items
                   if i.optional_vars is not None]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    # Walrus anywhere in the statement's own expressions.
    for expr in _own_exprs(stmt):
        for node in ast.walk(expr):
            if (isinstance(node, ast.NamedExpr)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == name):
                return True
    return False


def _finding(info: FunctionInfo, line: int, col: int, rule: "WholeProgramRule",
             message: str, trace: tuple = ()) -> Finding:
    return Finding(
        path=info.path, line=line, col=col,
        rule=rule.name, rule_id=rule.id, severity=rule.severity,
        message=message, snippet=info.module.line_text(line), trace=trace)


# ---------------------------------------------------------------------------
# REP010 — leaked resource grants
# ---------------------------------------------------------------------------

@register
class LeakedRequestRule(WholeProgramRule):
    """A ``request()`` grant with a path to function exit that never
    releases or cancels it."""

    id = "REP010"
    name = "leaked-request"
    severity = Severity.ERROR
    description = (
        "resource.request() grant not released on every path; "
        "wrap the post-grant section in try/finally: release(req)"
    )
    exempt = ("repro/simkit/*",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            if self.path_exempt(info.path):
                continue
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        acquires = []  # (stmt, var name)
        for child in ast.walk(info.node):
            if not isinstance(child, ast.Assign) or len(child.targets) != 1:
                continue
            target = child.targets[0]
            value = child.value
            if (isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "request"):
                acquires.append((child, target.id))
        if not acquires:
            return

        cfg = Cfg(info.node)
        for acquire_stmt, var in acquires:
            if id(acquire_stmt) not in cfg.stmts:
                continue  # nested function body; attributed elsewhere
            release_nodes = set()
            escaped = False
            for node_id, stmt in cfg.stmts.items():
                for call in _calls_in(stmt):
                    kind = self._classify(call, var)
                    if kind == "release":
                        release_nodes.add(node_id)
                    elif kind == "escape":
                        escaped = True
            if escaped:
                continue  # ownership transferred; can't track statically
            if not release_nodes:
                yield _finding(
                    info, acquire_stmt.lineno, acquire_stmt.col_offset, self,
                    f"request grant '{var}' is never released or cancelled "
                    f"in {info.qualname}")
                continue
            path = cfg.path_avoiding(
                cfg.successors(id(acquire_stmt)), EXIT, release_nodes)
            if path is not None:
                hops = tuple(
                    TraceHop(path=info.path, line=cfg.stmts[n].lineno,
                             func=info.qualname)
                    for n in path if n in cfg.stmts)[:4]
                yield _finding(
                    info, acquire_stmt.lineno, acquire_stmt.col_offset, self,
                    f"request grant '{var}' leaks on some paths out of "
                    f"{info.qualname}; release it in a finally block",
                    trace=(TraceHop(
                        path=info.path, line=acquire_stmt.lineno,
                        func=info.qualname, note=f"'{var}' acquired here"),
                        *hops))

    @staticmethod
    def _classify(call: ast.Call, var: str) -> Optional[str]:
        """'release' when the call disposes of ``var``; 'escape' when it
        passes ``var`` somewhere we cannot track; None otherwise."""
        func = call.func
        if isinstance(func, ast.Attribute):
            # req.cancel() / req.succeed(...) dispose of the grant.
            if (isinstance(func.value, ast.Name) and func.value.id == var
                    and func.attr in {"cancel", "succeed"}):
                return "release"
            if func.attr == "release" and any(
                    isinstance(a, ast.Name) and a.id == var
                    for a in call.args):
                return "release"
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id == var:
                    return "escape"
        return None


# ---------------------------------------------------------------------------
# REP011 — the same event yielded twice
# ---------------------------------------------------------------------------

@register
class DoubleYieldRule(WholeProgramRule):
    """Two yields of the same event variable with no rebinding between."""

    id = "REP011"
    name = "double-yield"
    severity = Severity.ERROR
    description = (
        "the same event object is yielded twice without being rebound; "
        "a consumed event never fires again, parking the process"
    )
    exempt = ("repro/simkit/*",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            if not info.is_generator or self.path_exempt(info.path):
                continue
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        cfg = Cfg(info.node)
        yields: dict[str, list[int]] = {}
        for node_id, stmt in cfg.stmts.items():
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Yield)
                    and isinstance(stmt.value.value, ast.Name)):
                yields.setdefault(stmt.value.value.id, []).append(node_id)
        for var, sites in yields.items():
            if len(sites) < 2:
                continue
            rebinds = {n for n, stmt in cfg.stmts.items()
                       if _binds(stmt, var)}
            for first in sites:
                for second in sites:
                    if first == second:
                        continue
                    if cfg.reachable_between(first, second, rebinds):
                        first_stmt = cfg.stmts[first]
                        second_stmt = cfg.stmts[second]
                        yield _finding(
                            info, second_stmt.lineno, second_stmt.col_offset,
                            self,
                            f"event '{var}' yielded again without rebinding "
                            f"(first yield at line {first_stmt.lineno}) in "
                            f"{info.qualname}",
                            trace=(
                                TraceHop(path=info.path,
                                         line=first_stmt.lineno,
                                         func=info.qualname,
                                         note=f"'{var}' first yielded"),
                                TraceHop(path=info.path,
                                         line=second_stmt.lineno,
                                         func=info.qualname,
                                         note="yielded again, already consumed"),
                            ))
                        break
                else:
                    continue
                break


# ---------------------------------------------------------------------------
# REP012 — loops that re-yield a never-rebound event
# ---------------------------------------------------------------------------

@register
class StaleLoopYieldRule(WholeProgramRule):
    """A loop yielding a variable it never rebinds."""

    id = "REP012"
    name = "stale-loop-yield"
    severity = Severity.ERROR
    description = (
        "loop yields the same event variable every iteration without "
        "rebinding it inside the loop; after the first wake the process "
        "waits on a consumed event forever"
    )
    exempt = ("repro/simkit/*",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            if not info.is_generator or self.path_exempt(info.path):
                continue
            for loop in ast.walk(info.node):
                if not isinstance(loop, (ast.While, ast.For)):
                    continue
                loop_vars = self._loop_bound_names(loop)
                for stmt in self._loop_stmts(loop):
                    if (isinstance(stmt, ast.Expr)
                            and isinstance(stmt.value, ast.Yield)
                            and isinstance(stmt.value.value, ast.Name)):
                        var = stmt.value.value.id
                        if var not in loop_vars:
                            yield _finding(
                                info, stmt.lineno, stmt.col_offset, self,
                                f"loop yields '{var}' every iteration but "
                                f"never rebinds it in {info.qualname}")

    @staticmethod
    def _loop_stmts(loop: ast.stmt) -> Iterator[ast.stmt]:
        """Statements in the loop body, excluding nested loops (those are
        checked against their own bound-name set) and nested functions."""
        stack = list(loop.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor,
                                 ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            for field in ("body", "orelse", "finalbody"):
                stack.extend(getattr(stmt, field, ()))
            for handler in getattr(stmt, "handlers", ()):
                stack.extend(handler.body)

    @classmethod
    def _loop_bound_names(cls, loop: ast.stmt) -> set[str]:
        names: set[str] = set()
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            for node in ast.walk(loop.target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        for stmt in cls._loop_stmts(loop):
            for child in ast.walk(stmt):
                if isinstance(child, ast.Name) and isinstance(
                        child.ctx, ast.Store):
                    names.add(child.id)
                elif isinstance(child, ast.NamedExpr) and isinstance(
                        child.target, ast.Name):
                    names.add(child.target.id)
        return names


# ---------------------------------------------------------------------------
# REP013 — backend calls reachable from a process with no guard on the chain
# ---------------------------------------------------------------------------

@register
class UnguardedBackendReachRule(WholeProgramRule):
    """Backend/store I/O reachable from a simkit process root without an
    interprocedural timeout/retry/breaker guard (successor of REP006)."""

    id = "REP013"
    name = "unguarded-backend-reach"
    severity = Severity.WARNING
    description = (
        "backend call reachable from a simkit process with no "
        "with_timeout/RetryPolicy/breaker guard anywhere on the call chain"
    )
    exempt = (
        "repro/simkit/*",
        "repro/analysis/*",
        "repro/resilience/*",   # the guard implementations themselves
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = getattr(project, "call_graph", None) or CallGraph(project)
        roots = self._process_roots(project, graph)
        if not roots:
            return
        guarded = {qual for qual, info in project.functions.items()
                   if self._provides_guard(info)}
        parents = graph.reachable(roots, stop=guarded)
        seen: set[tuple] = set()
        for qual in parents:
            if qual in guarded:
                continue
            info = project.functions.get(qual)
            if info is None or self.path_exempt(info.path):
                continue
            for call in self._backend_calls(info):
                key = (info.path, call.lineno)
                if key in seen:
                    continue
                seen.add(key)
                spelled = dotted(call.func) or "<backend call>"
                chain = graph.chain(parents, qual)
                hops = [TraceHop(path=site.path, line=site.line,
                                 func=site.caller,
                                 note=f"calls {site.callee.rsplit('.', 1)[-1]}")
                        for site in chain]
                hops.append(TraceHop(
                    path=info.path, line=call.lineno, func=qual,
                    note=f"unguarded {spelled}"))
                yield _finding(
                    info, call.lineno, call.col_offset, self,
                    f"'{spelled}' reachable from simkit process with no "
                    f"timeout/retry/breaker guard on the chain",
                    trace=tuple(hops))

    # -- roots ---------------------------------------------------------------
    @staticmethod
    def _process_roots(project: Project, graph: CallGraph) -> set[str]:
        """Generator functions handed to ``*.process(...)`` anywhere."""
        roots: set[str] = set()
        for info in project.functions.values():
            for call in ast.walk(info.node):
                if (not isinstance(call, ast.Call)
                        or not isinstance(call.func, ast.Attribute)
                        or call.func.attr != "process"):
                    continue
                for arg in call.args:
                    if not isinstance(arg, ast.Call):
                        continue
                    target = graph.resolve_call(arg, info)
                    if target and project.functions.get(
                            target, None) is not None:
                        if project.functions[target].is_generator:
                            roots.add(target)
        return roots

    # -- guards --------------------------------------------------------------
    @staticmethod
    def _provides_guard(info: FunctionInfo) -> bool:
        for call in ast.walk(info.node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Name) and func.id in _GUARD_CALL_NAMES:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _GUARD_CALL_NAMES:
                    return True
                receivers = _GUARD_METHODS.get(func.attr)
                if receivers:
                    spelled = (dotted(func.value) or "").lower()
                    if any(token in spelled for token in receivers):
                        return True
        return False

    # -- sinks ---------------------------------------------------------------
    @staticmethod
    def _backend_calls(info: FunctionInfo) -> Iterator[ast.Call]:
        """Backend-ish I/O calls in a function body, skipping lambda
        bodies (retry thunks defer execution into the guard)."""
        lambda_nodes: set[int] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Lambda):
                for sub in ast.walk(node):
                    lambda_nodes.add(id(sub))
        for node in ast.walk(info.node):
            if id(node) in lambda_nodes or not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _BACKEND_OPS:
                continue
            spelled = (dotted(func.value) or "").lower()
            if "backend" in spelled:
                yield node
