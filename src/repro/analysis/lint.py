"""The facility lint CLI: ``python -m repro.analysis.lint src/repro``.

Modes
-----
* default — per-file AST rules over the given paths;
* ``--wpa`` — additionally run the whole-program rules (call-graph
  protocol checks, interprocedural taint, telemetry cross-check) over
  the same paths; ``--graph-cache FILE`` shares the call-graph build
  between CI steps;
* ``--rules REP016,REP017`` — run only the named rules (either engine);
* ``--changed [REF]`` — only report findings in files changed vs a git
  ref (default ``HEAD``); the whole-program pass still analyses the full
  project so cross-file findings stay sound, but only changed files are
  reported;
* ``--prune-baseline`` — rewrite the baseline file keeping only entries
  that still match a current finding, and report what was dropped.

Exit codes: 0 clean (baselined findings allowed), 1 active error findings
(or warnings under ``--strict``), 2 bad invocation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, _fingerprints
from repro.analysis.engine import Linter
from repro.analysis.findings import Finding
from repro.analysis.report import render_json, render_text, summarise
from repro.analysis.rules import catalogue, get_rule
from repro.analysis.whole_program import run_whole_program, whole_program_rules

DEFAULT_BASELINE = ".lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint for LSDF facility invariants (determinism, "
                    "write-once, guarded I/O).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files/directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE}; "
                             "a missing file is an empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries no current finding "
                             "matches, rewrite the file, and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--wpa", action="store_true",
                        help="also run whole-program rules (call graph, "
                             "protocol, taint, telemetry cross-check)")
    parser.add_argument("--graph-cache", default=None, metavar="FILE",
                        help="call-graph cache file for --wpa (reused when "
                             "file hashes match, refreshed otherwise)")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule ids/names to run "
                             "exclusively (e.g. REP016,REP017,REP018)")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="only report findings in files changed vs a git "
                             "ref (default ref: HEAD)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _changed_files(ref: str, paths: Sequence[str]) -> Optional[list[Path]]:
    """Python files changed vs ``ref`` that live under ``paths``.

    Returns None when git fails (not a repo, bad ref).
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    roots = [Path(p).resolve() for p in paths]
    changed: list[Path] = []
    for line in proc.stdout.splitlines():
        name = line.strip()
        if not name.endswith(".py"):
            continue
        path = Path(name).resolve()
        if not path.exists():
            continue  # deleted file
        for root in roots:
            if path == root or root in path.parents:
                changed.append(path)
                break
    return changed


def _select_rules(spec: str) -> Optional[list]:
    """Resolve a ``--rules`` spec to rule objects (None on unknown token)."""
    selected = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        rule = get_rule(token)
        if rule is None:
            print(f"error: unknown rule {token!r}", file=sys.stderr)
            return None
        selected.append(rule)
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0/1/2)."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for row in catalogue():
            scope = f"  [scope: {', '.join(row['scope'])}]" if row["scope"] else ""
            exempt = f"  [exempt: {', '.join(row['exempt'])}]" if row["exempt"] else ""
            wpa = "  [whole-program]" if row["whole_program"] else ""
            print(f"{row['id']}  {row['name']:<24} {row['severity']:<8}"
                  f"{row['description']}{scope}{exempt}{wpa}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    selected = None
    if args.rules is not None:
        selected = _select_rules(args.rules)
        if selected is None:
            return 2
    run_wpa = args.wpa or (
        selected is not None and any(r.whole_program for r in selected))

    changed_relpaths: Optional[set[str]] = None
    lint_targets: Sequence[str | Path] = args.paths
    if args.changed is not None:
        changed = _changed_files(args.changed, args.paths)
        if changed is None:
            print(f"error: git diff vs {args.changed!r} failed",
                  file=sys.stderr)
            return 2
        lint_targets = changed
        changed_relpaths = {Linter._relpath(p) for p in changed}

    # Per-file pass.  An explicit --rules list naming only whole-program
    # rules skips it entirely.
    per_file_rules = (None if selected is None
                      else [r for r in selected if not r.whole_program])
    findings: list[Finding] = []
    files_scanned = 0
    if per_file_rules is None or per_file_rules:
        linter = Linter(rules=per_file_rules)
        findings.extend(linter.lint_paths(lint_targets))
        files_scanned = len(linter._iter_files(lint_targets))

    # Whole-program pass: always over the *full* paths so cross-file
    # resolution stays sound; --changed filters the report, not the graph.
    if run_wpa:
        wpa_rules = (whole_program_rules() if selected is None
                     else [r for r in selected if r.whole_program])
        wpa_findings = run_whole_program(
            args.paths, rules=wpa_rules, graph_cache=args.graph_cache)
        if changed_relpaths is not None:
            wpa_findings = [f for f in wpa_findings
                            if f.path in changed_relpaths]
        findings.extend(wpa_findings)
    findings.sort(key=Finding.sort_key)

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"baseline written: {len(findings)} finding(s) -> {args.baseline}")
        return 0

    if args.prune_baseline:
        baseline = Baseline.load(args.baseline)
        current = {fp for _, fp in _fingerprints(findings)}
        kept = [e for e in baseline.entries if e["fingerprint"] in current]
        pruned = len(baseline.entries) - len(kept)
        Baseline(kept).save(args.baseline)
        print(f"baseline pruned: {pruned} stale entr"
              f"{'y' if pruned == 1 else 'ies'} dropped, "
              f"{len(kept)} kept -> {args.baseline}")
        return 0

    if not args.no_baseline:
        findings = Baseline.load(args.baseline).apply(findings)

    print(render_json(findings, files_scanned) if args.format == "json"
          else render_text(findings, files_scanned))

    stats = summarise(findings)
    failing = stats["errors"] + (stats["warnings"] if args.strict else 0)
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
