"""The facility lint CLI: ``python -m repro.analysis.lint src/repro``.

Exit codes: 0 clean (baselined findings allowed), 1 active error findings
(or warnings under ``--strict``), 2 bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import Linter
from repro.analysis.findings import Severity
from repro.analysis.report import render_json, render_text, summarise
from repro.analysis.rules import catalogue

DEFAULT_BASELINE = ".lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint for LSDF facility invariants (determinism, "
                    "write-once, guarded I/O).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files/directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE}; "
                             "a missing file is an empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "file and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0/1/2)."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for row in catalogue():
            scope = f"  [scope: {', '.join(row['scope'])}]" if row["scope"] else ""
            exempt = f"  [exempt: {', '.join(row['exempt'])}]" if row["exempt"] else ""
            print(f"{row['id']}  {row['name']:<24} {row['severity']:<8}"
                  f"{row['description']}{scope}{exempt}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    linter = Linter()
    findings = linter.lint_paths(args.paths)
    files_scanned = len(linter._iter_files(args.paths))

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"baseline written: {len(findings)} finding(s) -> {args.baseline}")
        return 0

    if not args.no_baseline:
        findings = Baseline.load(args.baseline).apply(findings)

    print(render_json(findings, files_scanned) if args.format == "json"
          else render_text(findings, files_scanned))

    stats = summarise(findings)
    failing = stats["errors"] + (stats["warnings"] if args.strict else 0)
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
