"""Runtime determinism and race sanitizers.

``python -m repro.analysis.sanitize --scenario tiny`` runs three checks:

**Determinism (double run).**  The scenario runs twice with the same
seed; the full event traces must be byte-identical.  A divergence is
reported as the first differing event — the component that scheduled it
is where wall-clock time, unseeded randomness or iteration-order
dependence leaked in.

**Race detection (tie-shuffle run).**  Events that share ``(time,
priority)`` are normally ordered by insertion sequence — an accident of
code layout, not a designed ordering.  The scenario is re-run with a
randomized tie-break among simultaneous events
(:meth:`Simulator.enable_tie_shuffle`); any same-timestamp group whose
*event multiset* changes, or a changed final state digest, means some
behaviour depends on insertion order alone.  Benign reorderings (same
events, different order, same outcome) are counted but pass.

**Unseeded-RNG tripwire.**  All runs execute under
:func:`~repro.analysis.tripwire.rng_tripwire`, so a stray
``random.random()`` / ``np.random.default_rng()`` anywhere in the stack
fails loudly instead of surfacing later as an unexplainable divergence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Callable, Optional, Sequence

from repro.analysis.scenarios import SCENARIOS, Scenario, get_scenario
from repro.analysis.trace import TraceRecorder, first_divergence
from repro.analysis.tripwire import rng_tripwire
from repro.simkit.rand import RandomSource

#: A runnable unit: ``run_fn(seed, tie_seed) -> (trace, final_state)``.
#: ``tie_seed=None`` means strict insertion-order tie-breaking.
RunFn = Callable[[int, Optional[int]], tuple[TraceRecorder, dict]]


def state_digest(state: dict) -> str:
    """Canonical sha256 of a scenario's final state snapshot."""
    payload = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def facility_run(scenario: Scenario) -> RunFn:
    """Adapt a registry :class:`Scenario` into a traceable run function.

    Two-phase scenarios (``scenario.prepare``) get the recorder and
    tie-shuffle installed between construction and execution, so events
    the construction phase schedules are still traced when they fire.
    """

    def run(seed: int, tie_seed: Optional[int]) -> tuple[TraceRecorder, dict]:
        if scenario.prepare is not None:
            facility, finish = scenario.prepare(seed)
            execute = finish
        else:
            facility = scenario.build(seed)
            execute = lambda: scenario.execute(facility)  # noqa: E731
        recorder = TraceRecorder().install(facility.sim)
        if tie_seed is not None:
            # Independent stream: must not perturb component draws.
            facility.sim.enable_tie_shuffle(
                RandomSource(tie_seed).spawn("tie-shuffle")
            )
        state = execute()
        return recorder, state

    return run


def _capture(run_fn: RunFn, seed: int, tie_seed: Optional[int],
             tripwire: bool) -> tuple[TraceRecorder, dict, str]:
    if tripwire:
        with rng_tripwire():
            trace, state = run_fn(seed, tie_seed)
    else:
        trace, state = run_fn(seed, tie_seed)
    return trace, state, state_digest(state)


# ---------------------------------------------------------------------------
# determinism (double run)
# ---------------------------------------------------------------------------

@dataclass
class DeterminismReport:
    """Outcome of the same-seed double-run check."""

    seed: int
    runs: int
    events: int
    identical: bool
    trace_digest: str
    state_digest: str
    #: Index of the first differing trace entry (None when identical).
    divergence_index: Optional[int] = None
    #: Human description of the diverging entries, run A vs run B.
    divergence: Optional[tuple[str, str]] = None

    def to_dict(self) -> dict:
        """JSON-serialisable form for the ``--json`` reporter."""
        return {
            "seed": self.seed,
            "runs": self.runs,
            "events": self.events,
            "identical": self.identical,
            "trace_digest": self.trace_digest,
            "state_digest": self.state_digest,
            "divergence_index": self.divergence_index,
            "divergence": list(self.divergence) if self.divergence else None,
        }

    def describe(self) -> str:
        """One-paragraph human summary (OK line or first divergence)."""
        if self.identical:
            return (f"determinism: OK — {self.runs} runs, {self.events} events, "
                    f"identical traces (digest {self.trace_digest[:12]}…)")
        a, b = self.divergence or ("<missing>", "<missing>")
        return ("determinism: FAIL — traces diverge at event "
                f"#{self.divergence_index}:\n  run A: {a}\n  run B: {b}")


def check_determinism(run_fn: RunFn, seed: int = 0, runs: int = 2,
                      tripwire: bool = True) -> DeterminismReport:
    """Run a scenario ``runs`` times with one seed and diff the traces."""
    if runs < 2:
        raise ValueError("determinism check needs at least 2 runs")
    first_trace, _state, first_digest = _capture(run_fn, seed, None, tripwire)
    for _ in range(runs - 1):
        trace, _state, digest = _capture(run_fn, seed, None, tripwire)
        index = first_divergence(first_trace, trace)
        if index is not None or digest != first_digest:
            if index is None:
                index = min(len(first_trace.entries), len(trace.entries))
            entry_a = (first_trace.entries[index].describe()
                       if index < len(first_trace.entries) else "<trace ended>")
            entry_b = (trace.entries[index].describe()
                       if index < len(trace.entries) else "<trace ended>")
            return DeterminismReport(
                seed=seed, runs=runs, events=len(first_trace),
                identical=False,
                trace_digest=first_trace.digest(),
                state_digest=first_digest,
                divergence_index=index,
                divergence=(entry_a, entry_b),
            )
    return DeterminismReport(
        seed=seed, runs=runs, events=len(first_trace), identical=True,
        trace_digest=first_trace.digest(), state_digest=first_digest,
    )


# ---------------------------------------------------------------------------
# races (tie-shuffle run)
# ---------------------------------------------------------------------------

@dataclass
class RaceGroup:
    """One same-``(time, priority)`` group that changed under tie-shuffle."""

    time: float
    priority: int
    #: Events only seen in the ordered run / only in the shuffled run
    #: (symmetric difference of the two multisets, as "Kind(name)" labels).
    only_ordered: list[str]
    only_shuffled: list[str]
    #: Same events, different processing order — the likely root cause when
    #: it is the *first* divergent group of an outcome-changing run.
    permuted: Optional[tuple[tuple[str, ...], tuple[str, ...]]] = None
    allowed: bool = False

    def labels(self) -> list[str]:
        """Distinct event labels involved in this group."""
        if self.permuted is not None:
            return sorted(set(self.permuted[0]))
        return sorted(set(self.only_ordered) | set(self.only_shuffled))

    def describe(self) -> str:
        """One-line human rendering of the group's diff."""
        status = " (allowed)" if self.allowed else ""
        if self.permuted is not None:
            a, b = self.permuted
            return (f"t={self.time:.9g} prio={self.priority}{status}: "
                    f"permuted {list(a)} -> {list(b)}")
        return (f"t={self.time:.9g} prio={self.priority}{status}: "
                f"ordered-only={self.only_ordered} shuffled-only={self.only_shuffled}")


@dataclass
class RaceReport:
    """Outcome of the tie-shuffle race check.

    The ground truth is the **final state digest**: if the shuffled run
    ends in the same facility state, every same-timestamp reordering the
    shuffle exercised was benign (the scenario is reorder-tolerant) and
    there are zero order-dependent event pairs.  If the digest differs,
    some behaviour was decided by insertion order alone; the first
    divergent groups name the culprit events.
    """

    seed: int
    tie_seed: int
    events: int
    #: Final state digests of the ordered vs shuffled run match.
    outcome_matches: bool
    #: Same-timestamp groups the shuffle reordered (diagnostic: how much
    #: simultaneity the scenario actually exercised).
    reordered_groups: int
    #: With a changed outcome: the first divergent groups — event pairs
    #: whose relative order changed the run's result.
    order_dependent: list[RaceGroup] = field(default_factory=list)
    truncated: bool = False

    @property
    def violations(self) -> list[RaceGroup]:
        """Order-dependent groups not covered by a races_allowed pattern."""
        return [g for g in self.order_dependent if not g.allowed]

    @property
    def ok(self) -> bool:
        """Pass: identical outcome, or every dependent group is allowed."""
        return self.outcome_matches or (
            bool(self.order_dependent) and not self.violations
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form for the ``--json`` reporter."""
        return {
            "seed": self.seed,
            "tie_seed": self.tie_seed,
            "events": self.events,
            "outcome_matches": self.outcome_matches,
            "reordered_groups": self.reordered_groups,
            "order_dependent": [g.describe() for g in self.order_dependent],
            "violations": len(self.violations),
            "truncated": self.truncated,
            "ok": self.ok,
        }

    def describe(self) -> str:
        """Multi-line human summary (OK line or the divergent groups)."""
        if self.ok:
            allowed = sum(1 for g in self.order_dependent if g.allowed)
            note = (f"{self.reordered_groups} reordered group(s) exercised, "
                    "outcome identical")
            if allowed:
                note += f"; {allowed} allowed race group(s)"
            return (f"races: OK — {self.events} events, 0 order-dependent "
                    f"event pairs ({note})")
        lines = [
            f"races: FAIL — outcome changed under tie-shuffle; "
            f"{len(self.violations)} order-dependent group(s):"
        ]
        lines += [f"  {g.describe()}" for g in self.order_dependent[:10]]
        if self.truncated:
            lines.append("  … (cascade truncated after first divergent groups)")
        return "\n".join(lines)


def _grouped(trace: TraceRecorder) -> list[tuple[tuple[float, int], list[str]]]:
    """Trace entries grouped by (time, priority), labels in processed order."""
    groups: list[tuple[tuple[float, int], list[str]]] = []
    for entry in trace.entries:
        key = (entry.time, entry.priority)
        label = f"{entry.kind}({entry.name})" if entry.name else entry.kind
        if groups and groups[-1][0] == key:
            groups[-1][1].append(label)
        else:
            groups.append((key, [label]))
    return groups


def check_races(run_fn: RunFn, seed: int = 0, tie_seed: int = 20110509,
                allowed: Sequence[str] = (), tripwire: bool = True,
                max_groups: int = 10) -> RaceReport:
    """Compare an insertion-ordered run against a tie-shuffled run."""
    ordered, _sa, digest_ordered = _capture(run_fn, seed, None, tripwire)
    shuffled, _sb, digest_shuffled = _capture(run_fn, seed, tie_seed, tripwire)

    groups_a = {key: labels for key, labels in _grouped(ordered)}
    groups_b = {key: labels for key, labels in _grouped(shuffled)}

    reordered = 0
    dependent: list[RaceGroup] = []
    truncated = False
    outcome_matches = digest_ordered == digest_shuffled
    for key in sorted(set(groups_a) | set(groups_b)):
        a = groups_a.get(key, [])
        b = groups_b.get(key, [])
        if a == b:
            continue
        reordered += 1
        if outcome_matches:
            # The cascade converged back to the same final state:
            # reorder-tolerant, not an order dependency.
            continue
        if sorted(a) == sorted(b):
            group = RaceGroup(
                time=key[0], priority=key[1],
                only_ordered=[], only_shuffled=[],
                permuted=(tuple(a), tuple(b)),
            )
        else:
            group = RaceGroup(
                time=key[0], priority=key[1],
                only_ordered=_multiset_diff(a, b),
                only_shuffled=_multiset_diff(b, a),
            )
        group.allowed = bool(group.labels()) and all(
            any(fnmatch(label, pattern) for pattern in allowed)
            for label in group.labels()
        )
        dependent.append(group)
        if len(dependent) >= max_groups:
            truncated = True
            break

    return RaceReport(
        seed=seed, tie_seed=tie_seed, events=len(ordered),
        outcome_matches=outcome_matches,
        reordered_groups=reordered,
        order_dependent=dependent,
        truncated=truncated,
    )


def _multiset_diff(a: list[str], b: list[str]) -> list[str]:
    """Elements of ``a`` not matched one-for-one in ``b``."""
    remainder = list(b)
    out = []
    for item in a:
        if item in remainder:
            remainder.remove(item)
        else:
            out.append(item)
    return sorted(out)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the sanitizer CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="Runtime determinism / race sanitizers for facility scenarios.",
    )
    parser.add_argument("--scenario", default="tiny",
                        choices=sorted(SCENARIOS),
                        help="which scenario to sanitize (default: tiny)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=2,
                        help="same-seed runs for the determinism diff")
    parser.add_argument("--tie-seed", type=int, default=20110509,
                        help="seed of the randomized tie-shuffle stream")
    parser.add_argument("--skip-determinism", action="store_true")
    parser.add_argument("--skip-races", action="store_true")
    parser.add_argument("--no-tripwire", action="store_true",
                        help="do not patch global RNGs during runs")
    parser.add_argument("--json", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 pass, 1 fail)."""
    args = build_parser().parse_args(argv)
    scenario = get_scenario(args.scenario)
    run_fn = facility_run(scenario)
    tripwire = not args.no_tripwire

    payload: dict = {"scenario": scenario.name}
    ok = True
    det: Optional[DeterminismReport] = None
    races: Optional[RaceReport] = None

    if not args.skip_determinism:
        det = check_determinism(run_fn, seed=args.seed, runs=args.runs,
                                tripwire=tripwire)
        payload["determinism"] = det.to_dict()
        ok = ok and det.identical
    if not args.skip_races:
        races = check_races(run_fn, seed=args.seed, tie_seed=args.tie_seed,
                            allowed=scenario.races_allowed, tripwire=tripwire)
        payload["races"] = races.to_dict()
        ok = ok and races.ok
    payload["ok"] = ok

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"scenario: {scenario.name} — {scenario.description}")
        if det is not None:
            print(det.describe())
        if races is not None:
            print(races.describe())
        print("sanitize: PASS" if ok else "sanitize: FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
