"""The lint engine: source loading, pragma handling, rule dispatch.

Pragmas
-------
A finding is suppressed when its line — or a comment-only line directly
above it — carries::

    # lint: disable=<rule>[,<rule>...]  -- optional one-line justification

Rules may be named by id (``REP001``) or name (``wall-clock``); the token
``all`` silences every rule for that line.  Justifications after ``--``
are free text (and encouraged: the burn-down convention is one line of
*why* per pragma).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ImportMap, Rule, all_rules

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-,\s]+)")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


class SourceModule:
    """One parsed source file plus the per-module context rules need."""

    def __init__(self, text: str, relpath: str, path: Optional[Path] = None):
        self.text = text
        self.relpath = relpath.replace("\\", "/")
        self.path = path
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.relpath)
        self.imports = ImportMap(self.tree)
        #: line number -> set of disabled rule tokens
        self.pragmas: dict[int, set[str]] = self._collect_pragmas()

    def _collect_pragmas(self) -> dict[int, set[str]]:
        pragmas: dict[int, set[str]] = {}
        for index, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if not match:
                continue
            # Everything after "--" is the free-text justification.
            spec = match.group(1).split("--")[0]
            tokens = {tok.strip() for tok in spec.split(",") if tok.strip()}
            if not tokens:
                continue
            pragmas.setdefault(index, set()).update(tokens)
            # A comment-only pragma covers the next line of code — skipping
            # the rest of its own comment block (justification lines).
            if _COMMENT_ONLY_RE.match(line):
                target = index + 1
                while (target <= len(self.lines)
                       and _COMMENT_ONLY_RE.match(self.lines[target - 1])):
                    target += 1
                pragmas.setdefault(target, set()).update(tokens)
        return pragmas

    def line_text(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ("" out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, finding: Finding) -> bool:
        """True when a pragma on the finding's line disables its rule."""
        tokens = self.pragmas.get(finding.line, ())
        return bool(tokens) and (
            "all" in tokens or finding.rule in tokens or finding.rule_id in tokens
        )


class Linter:
    """Runs the rule catalogue over files, directories or raw source."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        # Whole-program rules need the project graph; they run in
        # repro.analysis.whole_program, never per-file.
        self.rules = [r for r in (rules if rules is not None else all_rules())
                      if not r.whole_program]

    # -- entry points -------------------------------------------------------
    def lint_source(self, text: str, relpath: str = "<memory>") -> list[Finding]:
        """Lint a source string (rule unit tests use this)."""
        return self._lint_module(self._load(text, relpath))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and/or directories (recursively, ``*.py``)."""
        findings: list[Finding] = []
        for path in self._iter_files(paths):
            relpath = self._relpath(path)
            try:
                module = self._load(path.read_text(encoding="utf-8"), relpath, path)
            except SyntaxError as exc:
                findings.append(Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="parse-error",
                    rule_id="REP000",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                ))
                continue
            findings.extend(self._lint_module(module))
        findings.sort(key=Finding.sort_key)
        return findings

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _iter_files(paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    @staticmethod
    def _relpath(path: Path) -> str:
        """Path string rules match exemptions against.

        Normalised to start at the innermost ``repro`` package component
        when present (so ``src/repro/simkit/rand.py`` and an absolute
        path both become ``repro/simkit/rand.py``), else the path as
        given.
        """
        parts = path.as_posix().split("/")
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index:])
        return path.as_posix()

    def _load(self, text: str, relpath: str, path: Optional[Path] = None) -> SourceModule:
        return SourceModule(text, relpath, path)

    def _lint_module(self, module: SourceModule) -> list[Finding]:
        found: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if not module.suppressed(finding):
                    found.append(finding)
        found.sort(key=Finding.sort_key)
        return found
