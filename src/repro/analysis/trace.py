"""Event-trace capture for the determinism sanitizer.

A :class:`TraceRecorder` taps :attr:`Simulator.trace_hooks` and records
one :class:`TraceEntry` per processed event — the full totally-ordered
history of a run.  Two same-seed runs of a deterministic scenario must
produce *identical* traces; the first differing entry pinpoints where a
run diverged (and therefore which component leaked wall-clock time,
unseeded randomness, or iteration-order dependence into the simulation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.core import Simulator
    from repro.simkit.events import Event


@dataclass(frozen=True)
class TraceEntry:
    """One processed event, as the loop saw it."""

    index: int
    time: float
    priority: int
    seq: int
    kind: str   # event class name
    name: str   # event label ("" when unnamed)

    def key(self, with_seq: bool = True) -> tuple:
        """Comparison key.  ``with_seq=False`` drops the insertion sequence
        number — required when comparing against a tie-shuffled run, whose
        scheduling order (and therefore seq numbering) legitimately differs."""
        if with_seq:
            return (self.time, self.priority, self.seq, self.kind, self.name)
        return (self.time, self.priority, self.kind, self.name)

    def describe(self) -> str:
        """One-line human-readable rendering for divergence reports."""
        label = self.name or self.kind
        return (f"#{self.index} t={self.time:.9g} prio={self.priority} "
                f"seq={self.seq} {self.kind}({label})")


class TraceRecorder:
    """Collects the event trace of one simulation run."""

    def __init__(self) -> None:
        self.entries: list[TraceEntry] = []

    def install(self, sim: "Simulator") -> "TraceRecorder":
        """Attach to a simulator's trace hooks; returns ``self`` for chaining."""
        sim.trace_hooks.append(self._record)
        return self

    def _record(self, when: float, priority: int, seq: int, event: "Event") -> None:
        self.entries.append(TraceEntry(
            index=len(self.entries),
            time=when,
            priority=priority,
            seq=seq,
            kind=type(event).__name__,
            name=event.name or "",
        ))

    def __len__(self) -> int:
        return len(self.entries)

    def digest(self, with_seq: bool = True) -> str:
        """sha256 over the serialised trace — the run's identity."""
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(repr(entry.key(with_seq)).encode("utf-8"))
        return h.hexdigest()


def first_divergence(a: "TraceRecorder", b: "TraceRecorder") -> Optional[int]:
    """Index of the first entry where two traces differ, or ``None`` when
    identical (including equal length)."""
    for index, (ea, eb) in enumerate(zip(a.entries, b.entries)):
        if ea.key() != eb.key():
            return index
    if len(a.entries) != len(b.entries):
        return min(len(a.entries), len(b.entries))
    return None
