"""Lint reporters: terminal text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity


def summarise(findings: list[Finding]) -> dict:
    """Headline counts the CLI exit code is derived from."""
    active = [f for f in findings if not f.baselined]
    return {
        "total": len(findings),
        "active": len(active),
        "baselined": sum(1 for f in findings if f.baselined),
        "errors": sum(1 for f in active if f.severity == Severity.ERROR),
        "warnings": sum(1 for f in active if f.severity == Severity.WARNING),
        "by_rule": _by_rule(active),
    }


def _by_rule(findings: Iterable[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: list[Finding], files_scanned: Optional[int] = None) -> str:
    """Human-readable report, one finding per block."""
    out: list[str] = []
    for finding in findings:
        tag = " [baselined]" if finding.baselined else ""
        out.append(
            f"{finding.location}: {finding.severity}"
            f" [{finding.rule_id}/{finding.rule}]{tag} {finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
        for index, hop in enumerate(finding.trace):
            marker = ("source" if index == 0
                      else "sink" if index == len(finding.trace) - 1
                      else f"via #{index}")
            out.append(f"    {marker:>8s}: {hop.describe()}")
    stats = summarise(findings)
    scanned = f" across {files_scanned} files" if files_scanned is not None else ""
    if stats["active"]:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in stats["by_rule"].items())
        out.append(
            f"{stats['active']} finding(s){scanned} "
            f"({stats['errors']} error(s), {stats['warnings']} warning(s)"
            + (f", {stats['baselined']} baselined" if stats["baselined"] else "")
            + f") — {per_rule}"
        )
    else:
        suffix = (f" ({stats['baselined']} baselined)" if stats["baselined"] else "")
        out.append(f"clean{scanned}{suffix}")
    return "\n".join(out)


def render_json(findings: list[Finding], files_scanned: Optional[int] = None) -> str:
    """JSON report for tooling/CI annotation."""
    payload = {
        "findings": [f.to_dict() for f in findings],
        "summary": summarise(findings),
    }
    if files_scanned is not None:
        payload["summary"]["files_scanned"] = files_scanned
    return json.dumps(payload, indent=2)
