"""Interprocedural wall-clock / unseeded-RNG taint into sim-time state.

The per-file rules (REP001/REP002/REP003) flag a wall-clock or global-RNG
*call site*.  What they cannot see is laundering: a helper reads
``time.time()``, returns it, and three calls later the value lands in
``sim.timeout(...)`` — every individual line looks innocent (or carries a
pragma justifying "real time is fine *here*").  This pass follows the
value:

* **sources** — calls resolving to the wall-clock/datetime set (REP014)
  or to ``random.*`` / ``numpy.random.*`` global streams (REP015).
  Pragma-suppressed source *sites* still taint: the pragma argues the
  read is acceptable locally, not that the value may steer sim time.
* **propagation** — a flow-insensitive local-taint environment per
  function plus a return-taint summary, iterated to fixpoint so taint
  crosses call chains in either definition order.
* **sinks** — delay/schedule arguments on simulator-ish receivers:
  ``*.timeout(x)``, ``*.call_at(x)``, ``*.run(until=x)``.

A source lexically *inside* the sink argument (``sim.timeout(time.time())``)
is already REP001's finding and is skipped here; this pass exists for the
flows with at least one assignment or call hop in between.  Findings
carry the source→…→sink witness trace.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity, TraceHop
from repro.analysis.graphs import CallGraph, FunctionInfo, Project
from repro.analysis.rules import (
    _DATETIME,
    _WALL_CLOCK,
    WholeProgramRule,
    register,
)

_SINK_METHODS = {"timeout", "call_at"}
_RNG_PREFIXES = ("random.", "numpy.random.")
# RNG calls that *configure* rather than draw; not value sources.
_RNG_NON_DRAWS = {"random.seed", "numpy.random.seed", "numpy.random.default_rng"}


@dataclass(frozen=True)
class Taint:
    """One tainted value: its kind and the witness chain back to the
    source call (source hop first)."""

    kind: str                      # "clock" | "rng"
    witness: tuple[TraceHop, ...]  # source → ... → latest hop


def _source_kind(target: Optional[str]) -> Optional[str]:
    """Classify a resolved call target as a taint source."""
    if target is None:
        return None
    if target in _WALL_CLOCK or target in _DATETIME:
        return "clock"
    if target in _RNG_NON_DRAWS:
        return None
    if target.startswith(_RNG_PREFIXES):
        return "rng"
    return None


class _FunctionTaint:
    """Taint state of one function: tainted locals + return summary."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        self.locals: dict[str, Taint] = {}
        self.returns: Optional[Taint] = None

    def update(self, analysis: "_Analysis") -> bool:
        """One propagation pass; True when anything changed."""
        changed = False
        for stmt in ast.walk(self.info.node):
            if isinstance(stmt, ast.Assign):
                taint = analysis.expr_taint(stmt.value, self)
                if taint is None:
                    continue
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if (isinstance(node, ast.Name)
                                and node.id not in self.locals):
                            self.locals[node.id] = taint
                            changed = True
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is None:
                    continue
                taint = analysis.expr_taint(stmt.value, self)
                if (taint is not None
                        and isinstance(stmt.target, ast.Name)
                        and stmt.target.id not in self.locals):
                    self.locals[stmt.target.id] = taint
                    changed = True
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = analysis.expr_taint(stmt.value, self)
                if taint is not None and self.returns is None:
                    self.returns = Taint(
                        kind=taint.kind,
                        witness=(*taint.witness, TraceHop(
                            path=self.info.path, line=stmt.lineno,
                            func=self.info.qualname,
                            note="tainted value returned")))
                    changed = True
        return changed


class _Analysis:
    """Project-wide fixpoint over per-function taint states."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.states = {qual: _FunctionTaint(info)
                       for qual, info in project.functions.items()}
        self._run_fixpoint()

    def _run_fixpoint(self) -> None:
        # Chain depth is bounded by the longest call path; cap defensively.
        for _ in range(12):
            changed = False
            for state in self.states.values():
                if state.update(self):
                    changed = True
            if not changed:
                return

    # -- expression evaluation ----------------------------------------------
    def expr_taint(self, expr: ast.AST,
                   state: _FunctionTaint) -> Optional[Taint]:
        """Taint of an expression under a function's local environment."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in state.locals:
                return state.locals[node.id]
            if isinstance(node, ast.Call):
                taint = self.call_taint(node, state)
                if taint is not None:
                    return taint
        return None

    def call_taint(self, call: ast.Call,
                   state: _FunctionTaint) -> Optional[Taint]:
        """Taint produced by a call: a raw source, or a project function
        whose return summary is tainted."""
        info = state.info
        target = info.module.imports.resolve(call.func)
        kind = _source_kind(target)
        if kind is not None:
            label = ("wall-clock read" if kind == "clock"
                     else "unseeded global RNG draw")
            return Taint(kind=kind, witness=(TraceHop(
                path=info.path, line=call.lineno, func=info.qualname,
                note=f"{label}: {target}()"),))
        callee = self.graph.resolve_call(call, info)
        if callee is None:
            return None
        summary = self.states.get(callee)
        if summary is None or summary.returns is None:
            return None
        return Taint(
            kind=summary.returns.kind,
            witness=(*summary.returns.witness, TraceHop(
                path=info.path, line=call.lineno, func=info.qualname,
                note=f"via call to {callee.rsplit('.', 1)[-1]}()")))


class _TaintRuleBase(WholeProgramRule):
    """Shared sink scan for the clock and RNG taint rules."""

    kind = ""  # "clock" | "rng"

    exempt = (
        "repro/simkit/rand.py",   # the sanctioned RNG wrapper
        "repro/analysis/*",
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = getattr(project, "call_graph", None) or CallGraph(project)
        analysis = _analysis_for(project, graph)
        for qual, state in analysis.states.items():
            info = state.info
            if self.path_exempt(info.path):
                continue
            yield from self._check_sinks(state, analysis)

    def _check_sinks(self, state: _FunctionTaint,
                     analysis: _Analysis) -> Iterator[Finding]:
        info = state.info
        for call in ast.walk(info.node):
            if not isinstance(call, ast.Call):
                continue
            if not isinstance(call.func, ast.Attribute):
                continue
            args: list[ast.AST] = []
            if call.func.attr in _SINK_METHODS and call.args:
                args = [call.args[0]]
            elif call.func.attr == "run":
                args = [kw.value for kw in call.keywords
                        if kw.arg == "until"]
            for arg in args:
                taint = analysis.expr_taint(arg, state)
                if taint is None or taint.kind != self.kind:
                    continue
                # Source lexically inside the sink arg is the per-file
                # rule's finding; this pass wants the laundered flows.
                if self._source_is_local(arg, taint):
                    continue
                source = taint.witness[0]
                yield Finding(
                    path=info.path, line=call.lineno, col=call.col_offset,
                    rule=self.name, rule_id=self.id, severity=self.severity,
                    message=(
                        f"sim-time argument to .{call.func.attr}() is "
                        f"derived from {source.note or 'a tainted source'} "
                        f"({source.location})"),
                    snippet=info.module.line_text(call.lineno),
                    trace=(*taint.witness, TraceHop(
                        path=info.path, line=call.lineno,
                        func=info.qualname,
                        note=f"flows into .{call.func.attr}()")),
                )
                break  # one finding per sink call

    @staticmethod
    def _source_is_local(arg: ast.AST, taint: Taint) -> bool:
        source = taint.witness[0]
        if len(taint.witness) > 1:
            return False
        return any(isinstance(node, ast.Call)
                   and getattr(node, "lineno", -1) == source.line
                   for node in ast.walk(arg))


# One shared fixpoint per (project, graph) pair — both rules reuse it.
_ANALYSIS_CACHE: dict[int, _Analysis] = {}


def _analysis_for(project: Project, graph: CallGraph) -> _Analysis:
    key = id(project)
    analysis = _ANALYSIS_CACHE.get(key)
    if analysis is None or analysis.graph is not graph:
        analysis = _Analysis(project, graph)
        _ANALYSIS_CACHE.clear()   # one live project at a time
        _ANALYSIS_CACHE[key] = analysis
    return analysis


@register
class ClockTaintRule(_TaintRuleBase):
    """Wall-clock values steering simulated time (REP014)."""

    id = "REP014"
    name = "clock-taint"
    severity = Severity.ERROR
    kind = "clock"
    description = (
        "a wall-clock reading flows (possibly through helper returns) "
        "into sim.timeout/call_at/run — sim time must derive from sim state"
    )


@register
class RngTaintRule(_TaintRuleBase):
    """Unseeded global RNG draws steering simulated time (REP015)."""

    id = "REP015"
    name = "rng-taint"
    severity = Severity.ERROR
    kind = "rng"
    description = (
        "an unseeded random/numpy.random draw flows into sim-time "
        "scheduling — delays must come from seeded RandomSource streams"
    )
