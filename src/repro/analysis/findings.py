"""Lint findings: the unit of output every rule produces."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


class Severity:
    """Finding severities.  ``ERROR`` fails the lint run; ``WARNING`` is
    reported but only fails under ``--strict``."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}

    @classmethod
    def validate(cls, value: str) -> str:
        """Return ``value`` if it is a known severity, else raise."""
        if value not in cls.ORDER:
            raise ValueError(f"unknown severity: {value!r}")
        return value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str      # rule name, e.g. "wall-clock"
    rule_id: str   # stable id, e.g. "REP001"
    severity: str  # Severity.ERROR | Severity.WARNING
    message: str
    snippet: str = ""
    #: Set by the engine when the finding matched the committed baseline.
    baselined: bool = field(default=False, compare=False)

    def with_baselined(self) -> "Finding":
        """Copy of this finding flagged as matching the baseline."""
        return replace(self, baselined=True)

    @property
    def location(self) -> str:
        """``path:line:col`` — the conventional editor-clickable form."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "baselined": self.baselined,
        }

    def sort_key(self) -> tuple:
        """Stable report ordering: by path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)
