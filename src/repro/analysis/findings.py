"""Lint findings: the unit of output every rule produces."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


class Severity:
    """Finding severities.  ``ERROR`` fails the lint run; ``WARNING`` is
    reported but only fails under ``--strict``."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}

    @classmethod
    def validate(cls, value: str) -> str:
        """Return ``value`` if it is a known severity, else raise."""
        if value not in cls.ORDER:
            raise ValueError(f"unknown severity: {value!r}")
        return value


@dataclass(frozen=True)
class TraceHop:
    """One hop of an interprocedural source→sink trace.

    Whole-program findings (taint flows, unguarded call chains) attach a
    tuple of hops — source first, sink last — so the reporter can render
    the caller→…→sink chain with a clickable ``file:line`` per hop.
    """

    path: str
    line: int
    func: str = ""
    note: str = ""

    @property
    def location(self) -> str:
        """``path:line`` — editor-clickable."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "path": self.path,
            "line": self.line,
            "func": self.func,
            "note": self.note,
        }

    def describe(self) -> str:
        """One-line rendering: ``path:line in func — note``."""
        out = self.location
        if self.func:
            out += f" in {self.func}"
        if self.note:
            out += f" — {self.note}"
        return out


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str      # rule name, e.g. "wall-clock"
    rule_id: str   # stable id, e.g. "REP001"
    severity: str  # Severity.ERROR | Severity.WARNING
    message: str
    snippet: str = ""
    #: Interprocedural source→sink trace (source hop first, sink last);
    #: empty for single-site findings.  Not part of finding identity: the
    #: same defect keeps its fingerprint when an unrelated hop moves.
    trace: tuple[TraceHop, ...] = field(default=(), compare=False)
    #: Set by the engine when the finding matched the committed baseline.
    baselined: bool = field(default=False, compare=False)

    def with_baselined(self) -> "Finding":
        """Copy of this finding flagged as matching the baseline."""
        return replace(self, baselined=True)

    @property
    def location(self) -> str:
        """``path:line:col`` — the conventional editor-clickable form."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (used by the ``--format json`` reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
            "trace": [hop.to_dict() for hop in self.trace],
            "baselined": self.baselined,
        }

    def sort_key(self) -> tuple:
        """Stable report ordering: by path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)
