"""Lint baselines: accepted legacy findings, fingerprinted line-number-free.

A baseline lets the lint gate turn red only on *new* debt: every finding
whose fingerprint appears in the committed baseline file is reported as
``baselined`` and does not affect the exit code.  Fingerprints hash the
path, rule and normalised source line (plus an occurrence index for
repeated identical lines) — not the line *number* — so unrelated edits
above a baselined finding don't resurrect it.

The facility convention (enforced by CI) is an **empty** baseline: new
findings are fixed or pragma-annotated, and ``--write-baseline`` exists
for bootstrapping a newly-adopted rule, not for parking debt.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.findings import Finding

_FORMAT = 1


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of a finding, independent of line number."""
    normalised = " ".join(finding.snippet.split())
    payload = f"{finding.path}\x1f{finding.rule_id}\x1f{normalised}\x1f{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def _fingerprints(findings: Iterable[Finding]) -> list[tuple[Finding, str]]:
    seen: Counter[tuple[str, str, str]] = Counter()
    out = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.path, finding.rule_id, " ".join(finding.snippet.split()))
        out.append((finding, fingerprint(finding, seen[key])))
        seen[key] += 1
    return out


class Baseline:
    """The committed set of accepted finding fingerprints."""

    def __init__(self, entries: Optional[Iterable[dict]] = None):
        self.entries: list[dict] = list(entries or [])
        self._index = {entry["fingerprint"] for entry in self.entries}

    # -- persistence --------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != _FORMAT:
            raise ValueError(f"unsupported baseline format in {path}")
        return cls(data.get("findings", []))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline accepting exactly the given findings."""
        return cls(
            {
                "fingerprint": fp,
                "rule": f.rule,
                "rule_id": f.rule_id,
                "path": f.path,
                "snippet": f.snippet,
            }
            for f, fp in _fingerprints(findings)
        )

    def save(self, path: str | Path) -> None:
        """Write the baseline file (pretty-printed, trailing newline)."""
        payload = {"format": _FORMAT, "findings": self.entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- application --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        """Mark findings present in the baseline (returns all findings,
        with matched ones flagged ``baselined``)."""
        out = []
        for finding, fp in _fingerprints(findings):
            out.append(finding.with_baselined() if fp in self._index else finding)
        return out
