"""Telemetry schema cross-check: publishers vs subscribers vs catalogs.

The event bus and metrics registry are stringly typed by design — a
``publish(kind="frontdoor.shed")`` and a subscriber glob
``frontdoor.*`` only meet at runtime, and a typo on either side fails
*silently* (the subscriber just never fires; the dashboard reads zero
forever).  This pass builds the project-wide schema from the code itself
and checks every consumer against it:

* **publishers** — every ``publish(kind=<const>)`` site, plus one hop of
  kind-parameter forwarding (``self._publish(facility, "chaos.incident",
  ...)`` through a wrapper whose kind argument is a plain parameter);
  conditional kinds with constant arms (``"trigger.fired" if ok else
  "trigger.failed"``) record both branches, and a subscript on a
  module-level dict literal (``_TRANSITION_KIND[new]``) records every
  constant string value of the dict;
* **metric families** — every ``counter/gauge/gauge_fn/histogram/summary``
  registration with a constant name;
* **consumers** — subscriber ``kinds=`` globs, ``events(kind=...)`` /
  ``tail(kind=...)`` filters, registry reads
  (``total/value/count/samples/series/has`` with a constant name);
* **external catalogs** — ``--require <name>`` metric gates in the CI
  workflows and the kind table in ``docs/observability.md``.

Rules:

* **REP016 dead-event-glob** — a kind filter in code that matches no
  published kind (typo'd or stale subscriber);
* **REP017 unknown-event-kind** — a kind listed in a catalog (docs
  table) that no code path publishes (doc rot or a misspelled publisher);
* **REP018 unknown-metric** — a metric name read in code or required by
  CI that no registry ever registers.
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity, TraceHop
from repro.analysis.graphs import CallGraph, FunctionInfo, Project
from repro.analysis.rules import WholeProgramRule, register

_METRIC_REGISTER = {"counter", "gauge", "gauge_fn", "histogram", "summary"}
_METRIC_READ = {"total", "value", "count", "samples", "series", "has"}

_REQUIRE_RE = re.compile(r"--require\s+([A-Za-z0-9_.\-]+)")
_DOC_KIND_RE = re.compile(r"^\|\s*`([a-z0-9_.]+)`")
_KINDS_HEADING = "kinds currently published"


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class Site:
    """One code location something was declared or consumed at."""

    __slots__ = ("value", "path", "line", "col", "func")

    def __init__(self, value: str, path: str, line: int, col: int,
                 func: str = ""):
        self.value = value
        self.path = path
        self.line = line
        self.col = col
        self.func = func

    def hop(self, note: str = "") -> TraceHop:
        """This site as a finding trace hop."""
        return TraceHop(path=self.path, line=self.line, func=self.func,
                        note=note)


class TelemetrySchema:
    """Everything published, registered, and consumed, with locations."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        #: kind -> publish sites
        self.published: dict[str, list[Site]] = {}
        #: metric family name -> registration sites
        self.metric_families: dict[str, list[Site]] = {}
        #: constant prefixes of dynamically-registered families
        #: (``reg.gauge_fn(f"metadata.{key}", ...)`` contributes "metadata.")
        self.metric_prefixes: list[Site] = []
        #: kind globs consumed in code
        self.kind_filters: list[Site] = []
        #: metric names read in code
        self.metric_reads: list[Site] = []
        #: metric names demanded by CI --require gates
        self.required_metrics: list[Site] = []
        #: kinds listed in the docs table
        self.documented_kinds: list[Site] = []
        self._collect_code(graph)
        self._collect_catalogs(project.repo_root)

    # -- code ---------------------------------------------------------------
    def _collect_code(self, graph: CallGraph) -> None:
        # (callee qualname -> def-parameter name) for publish forwarders.
        forwarders: dict[str, str] = {}
        for qual, info in self.project.functions.items():
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr == "publish"):
                    kind_arg = self._kind_arg(call)
                    consts = (self._kind_constants(kind_arg, info)
                              if kind_arg is not None else [])
                    if consts:
                        for const in consts:
                            self._record_publish(const, call, info)
                    elif (isinstance(kind_arg, ast.Name)
                          and kind_arg.id in self._param_names(info)):
                        forwarders[qual] = kind_arg.id
                self._collect_consumer(call, info)
        if forwarders:
            self._collect_forwarded(graph, forwarders)

    def _collect_forwarded(self, graph: CallGraph,
                           forwarders: dict[str, str]) -> None:
        """One hop of kind forwarding: constant kinds passed to wrappers
        like ``chaos._publish(facility, kind, ...)``."""
        for qual, info in self.project.functions.items():
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = graph.resolve_call(call, info)
                param = forwarders.get(callee or "")
                if param is None:
                    continue
                const = self._forwarded_kind(call, callee, param)
                if const is not None:
                    self._record_publish(const, call, info)

    def _forwarded_kind(self, call: ast.Call, callee: str,
                        param: str) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == param:
                return _const_str(kw.value)
        callee_info = self.project.functions[callee]
        params = self._param_names(callee_info)
        if param not in params:
            return None
        index = params.index(param)
        # Method calls spelled obj.meth(...) drop the self slot.
        if callee_info.cls is not None and params and params[0] == "self":
            index -= 1
        if 0 <= index < len(call.args):
            return _const_str(call.args[index])
        return None

    @staticmethod
    def _param_names(info: FunctionInfo) -> list[str]:
        args = info.node.args
        return [a.arg for a in (*args.posonlyargs, *args.args)]

    @staticmethod
    def _kind_arg(call: ast.Call) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "kind":
                return kw.value
        return call.args[0] if call.args else None

    def _kind_constants(self, node: ast.AST,
                        info: FunctionInfo) -> list[str]:
        """Every constant kind a publish argument can evaluate to.

        Beyond plain string constants this resolves two publish idioms
        the codebase actually uses: conditional expressions whose arms
        are constants (``"trigger.fired" if ok else "trigger.failed"``)
        and subscripts on a module-level dict literal with constant
        string values (``_TRANSITION_KIND[new]``)."""
        const = _const_str(node)
        if const is not None:
            return [const]
        if isinstance(node, ast.IfExp):
            return (self._kind_constants(node.body, info)
                    + self._kind_constants(node.orelse, info))
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            return self._module_dict_values(node.value.id, info)
        return []

    def _module_dict_values(self, name: str,
                            info: FunctionInfo) -> list[str]:
        """Constant string values of a module-level ``name = {...}``."""
        module = self.project.modules.get(info.path)
        if module is None:
            return []
        for stmt in module.tree.body:
            if (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Dict)
                    and any(isinstance(t, ast.Name) and t.id == name
                            for t in stmt.targets)):
                values = (_const_str(v) for v in stmt.value.values)
                return [v for v in values if v is not None]
        return []

    def _record_publish(self, kind: str, call: ast.Call,
                        info: FunctionInfo) -> None:
        self.published.setdefault(kind, []).append(Site(
            kind, info.path, call.lineno, call.col_offset, info.qualname))

    def _collect_consumer(self, call: ast.Call, info: FunctionInfo) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr

        def site(value: str, node: ast.AST) -> Site:
            return Site(value, info.path,
                        getattr(node, "lineno", call.lineno),
                        getattr(node, "col_offset", call.col_offset),
                        info.qualname)

        if attr == "subscribe":
            kinds = self._keyword(call, "kinds")
            if kinds is None and len(call.args) >= 2:
                kinds = call.args[1]
            if isinstance(kinds, (ast.Tuple, ast.List)):
                for element in kinds.elts:
                    const = _const_str(element)
                    if const is not None:
                        self.kind_filters.append(site(const, element))
        elif attr == "events":
            kind = self._keyword(call, "kind")
            if kind is None and call.args:
                kind = call.args[0]
            const = _const_str(kind) if kind is not None else None
            if const is not None:
                self.kind_filters.append(site(const, kind))
        elif attr == "tail":
            kind = self._keyword(call, "kind")
            if kind is None and len(call.args) >= 2:
                kind = call.args[1]
            const = _const_str(kind) if kind is not None else None
            if const is not None:
                self.kind_filters.append(site(const, kind))
        elif attr in _METRIC_REGISTER and call.args:
            const = _const_str(call.args[0])
            if const is not None:
                self.metric_families.setdefault(const, []).append(
                    site(const, call))
            else:
                prefix = self._fstring_prefix(call.args[0])
                if prefix:
                    self.metric_prefixes.append(site(prefix, call))
        elif attr in _METRIC_READ and call.args:
            const = _const_str(call.args[0])
            if const is not None:
                self.metric_reads.append(site(const, call))

    @staticmethod
    def _fstring_prefix(node: ast.AST) -> Optional[str]:
        """Leading constant of an f-string name, if any.

        A registration like ``reg.gauge_fn(f"metadata.{key}", ...)``
        creates names the checker cannot enumerate; the constant prefix
        makes the unknown-metric rule conservative for that namespace.
        """
        if (isinstance(node, ast.JoinedStr) and node.values
                and isinstance(node.values[0], ast.Constant)
                and isinstance(node.values[0].value, str)):
            return node.values[0].value
        return None

    @staticmethod
    def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    # -- external catalogs ---------------------------------------------------
    def _collect_catalogs(self, repo_root: Path) -> None:
        workflows = repo_root / ".github" / "workflows"
        if workflows.is_dir():
            for path in sorted(workflows.glob("*.yml")):
                self._scan_workflow(path, repo_root)
        docs = repo_root / "docs" / "observability.md"
        if docs.is_file():
            self._scan_docs(docs, repo_root)

    def _scan_workflow(self, path: Path, repo_root: Path) -> None:
        rel = path.relative_to(repo_root).as_posix()
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return
        for lineno, line in enumerate(lines, start=1):
            for match in _REQUIRE_RE.finditer(line):
                self.required_metrics.append(Site(
                    match.group(1), rel, lineno, match.start()))

    def _scan_docs(self, path: Path, repo_root: Path) -> None:
        rel = path.relative_to(repo_root).as_posix()
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return
        in_section = False
        for lineno, line in enumerate(lines, start=1):
            lowered = line.strip().lower()
            if lowered.startswith("#") and _KINDS_HEADING in lowered:
                in_section = True
                continue
            if in_section and lowered.startswith("#"):
                break
            if not in_section:
                continue
            match = _DOC_KIND_RE.match(line.strip())
            if match:
                self.documented_kinds.append(Site(
                    match.group(1), rel, lineno, 0))

    # -- queries -------------------------------------------------------------
    def glob_matches(self, glob: str) -> list[str]:
        """Published kinds a filter glob matches."""
        return sorted(k for k in self.published if fnmatchcase(k, glob))


# One schema per live project — the three rules share the collection walk.
_SCHEMA_CACHE: dict[int, TelemetrySchema] = {}


def schema_for(project: Project,
               graph: Optional[CallGraph] = None) -> TelemetrySchema:
    """The (cached) telemetry schema of a project — the three cross-check
    rules share one collection walk."""
    key = id(project)
    schema = _SCHEMA_CACHE.get(key)
    if schema is None:
        schema = TelemetrySchema(
            project,
            graph or getattr(project, "call_graph", None) or CallGraph(project))
        _SCHEMA_CACHE.clear()
        _SCHEMA_CACHE[key] = schema
    return schema


def _nearest(value: str, candidates: Iterator[str] | list[str]) -> str:
    """A 'did you mean' hint: the candidate sharing the longest prefix."""
    best, best_len = "", 0
    for cand in candidates:
        common = 0
        for a, b in zip(value, cand):
            if a != b:
                break
            common += 1
        if common > best_len:
            best, best_len = cand, common
    return best if best_len >= 4 else ""


@register
class DeadEventGlobRule(WholeProgramRule):
    """Kind filters in code that match no published kind (REP016)."""

    id = "REP016"
    name = "dead-event-glob"
    severity = Severity.WARNING
    description = (
        "event-kind filter matches nothing any code path publishes — "
        "a typo'd or stale subscriber silently receives no events"
    )
    exempt = ("repro/telemetry/*", "repro/analysis/*")

    def check_project(self, project: Project) -> Iterator[Finding]:
        schema = schema_for(project)
        for site in schema.kind_filters:
            if self.path_exempt(site.path):
                continue
            if schema.glob_matches(site.value):
                continue
            hint = _nearest(site.value, list(schema.published))
            suffix = f" (did you mean '{hint}'?)" if hint else ""
            yield Finding(
                path=site.path, line=site.line, col=site.col,
                rule=self.name, rule_id=self.id, severity=self.severity,
                message=(f"kind filter '{site.value}' matches no published "
                         f"event kind{suffix}"),
                snippet=self._snippet(project, site),
            )

    @staticmethod
    def _snippet(project: Project, site: Site) -> str:
        module = project.modules.get(site.path)
        return module.line_text(site.line) if module else ""


@register
class UnknownEventKindRule(WholeProgramRule):
    """Catalogued kinds no code path publishes (REP017)."""

    id = "REP017"
    name = "unknown-event-kind"
    severity = Severity.WARNING
    description = (
        "event kind listed in a catalog (docs table) is never published "
        "by any code path — doc rot or a misspelled publisher"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        schema = schema_for(project)
        for site in schema.documented_kinds:
            if site.value in schema.published:
                continue
            hint = _nearest(site.value, list(schema.published))
            suffix = f" (closest published kind: '{hint}')" if hint else ""
            yield Finding(
                path=site.path, line=site.line, col=site.col,
                rule=self.name, rule_id=self.id, severity=self.severity,
                message=(f"documented event kind '{site.value}' is never "
                         f"published{suffix}"),
            )


@register
class UnknownMetricRule(WholeProgramRule):
    """Metric names read or required but never registered (REP018)."""

    id = "REP018"
    name = "unknown-metric"
    severity = Severity.WARNING
    description = (
        "metric name read in code or required by CI is never registered "
        "with any MetricsRegistry — the gate/dashboard reads zero forever"
    )
    exempt = ("repro/telemetry/*", "repro/analysis/*")

    def check_project(self, project: Project) -> Iterator[Finding]:
        schema = schema_for(project)
        known = set(schema.metric_families)
        prefixes = tuple(s.value for s in schema.metric_prefixes)

        def is_known(name: str) -> bool:
            return name in known or (bool(prefixes)
                                     and name.startswith(prefixes))

        for site in schema.metric_reads:
            if self.path_exempt(site.path):
                continue
            if is_known(site.value):
                continue
            yield self._finding(project, site, known, "read")
        for site in schema.required_metrics:
            if is_known(site.value):
                continue
            yield self._finding(project, site, known, "required by CI")

    def _finding(self, project: Project, site: Site, known: set[str],
                 how: str) -> Finding:
        hint = _nearest(site.value, list(known))
        suffix = f" (did you mean '{hint}'?)" if hint else ""
        module = project.modules.get(site.path)
        return Finding(
            path=site.path, line=site.line, col=site.col,
            rule=self.name, rule_id=self.id, severity=self.severity,
            message=(f"metric '{site.value}' {how} but never "
                     f"registered{suffix}"),
            snippet=module.line_text(site.line) if module else "",
        )
