"""Authentication and authorisation mechanisms for ADAL.

The paper calls ADAL "extensible to support new backends, *authentication
mechanisms*"; the extension point is :class:`AuthProvider`.  Two providers
are bundled (anonymous and token-based), plus a path-prefix ACL authoriser
that maps principals/groups to permissions per URL prefix — the shape of
access control a multi-community facility needs (each experiment sees only
its own tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adal.errors import AuthError, PermissionDeniedError

#: The permission vocabulary.
PERMISSIONS = ("read", "write", "delete", "admin")


@dataclass(frozen=True)
class Credentials:
    """What a caller presents: a subject name and an optional secret."""

    subject: str
    token: Optional[str] = None


@dataclass(frozen=True)
class Principal:
    """An authenticated identity with group memberships."""

    name: str
    groups: frozenset[str] = frozenset()

    def identities(self) -> frozenset[str]:
        """All names this principal can act as (self + groups)."""
        return self.groups | {self.name}


class AuthProvider:
    """Maps :class:`Credentials` to a :class:`Principal` (or raises)."""

    name = "abstract"

    def authenticate(self, credentials: Credentials) -> Principal:
        """Authenticate or raise :class:`~repro.adal.errors.AuthError`."""
        raise NotImplementedError


class AnonymousAuth(AuthProvider):
    """Accepts anyone as the (group-less) principal they claim to be.

    Used for open scratch areas and in tests; pair with an ACL that grants
    ``anonymous`` little or nothing in production trees.
    """

    name = "anonymous"

    def authenticate(self, credentials: Credentials) -> Principal:
        return Principal(credentials.subject or "anonymous")


class TokenAuth(AuthProvider):
    """Static token table: subject -> (token, groups)."""

    name = "token"

    def __init__(self) -> None:
        self._table: dict[str, tuple[str, frozenset[str]]] = {}

    def register(self, subject: str, token: str, groups: Iterable[str] = ()) -> None:
        """Install a subject's token and group memberships."""
        if not token:
            raise ValueError("empty tokens are not allowed")
        self._table[subject] = (token, frozenset(groups))

    def revoke(self, subject: str) -> None:
        """Remove a subject (idempotent)."""
        self._table.pop(subject, None)

    def authenticate(self, credentials: Credentials) -> Principal:
        entry = self._table.get(credentials.subject)
        if entry is None:
            raise AuthError(f"unknown subject {credentials.subject!r}")
        token, groups = entry
        if credentials.token != token:
            raise AuthError(f"bad token for subject {credentials.subject!r}")
        return Principal(credentials.subject, groups)


@dataclass
class AclEntry:
    """One grant: identities -> permissions, under a URL prefix."""

    prefix: str
    identity: str  # principal or group name, or "*" for everyone
    permissions: frozenset[str]


def _prefix_match(prefix: str, url: str) -> bool:
    """Component-aware prefix match: ``a/b`` covers ``a/b`` and ``a/b/c``,
    not ``a/bc``; a trailing slash on the grant prefix is optional."""
    prefix = prefix.rstrip("/")
    url = url.rstrip("/")
    return url == prefix or url.startswith(prefix + "/")


class AclAuthorizer:
    """Prefix-match ACLs over ADAL URLs.

    Grants are additive: a principal holds a permission on a URL if *any*
    matching entry (by identity or group, at any matching prefix) grants it.
    ``admin`` implies everything.
    """

    def __init__(self) -> None:
        self._entries: list[AclEntry] = []

    def grant(self, prefix: str, identity: str, permissions: Iterable[str]) -> None:
        """Add a grant under a URL prefix for a principal/group/``*``."""
        perms = frozenset(permissions)
        unknown = perms - set(PERMISSIONS)
        if unknown:
            raise ValueError(f"unknown permissions: {sorted(unknown)}")
        self._entries.append(AclEntry(prefix, identity, perms))

    def permissions(self, principal: Principal, url: str) -> frozenset[str]:
        """All permissions the principal holds on ``url``."""
        identities = principal.identities() | {"*"}
        granted: set[str] = set()
        for entry in self._entries:
            if entry.identity in identities and _prefix_match(entry.prefix, url):
                granted |= entry.permissions
        if "admin" in granted:
            granted |= set(PERMISSIONS)
        return frozenset(granted)

    def check(self, principal: Principal, url: str, permission: str) -> None:
        """Raise :class:`PermissionDeniedError` unless permission is held."""
        if permission not in PERMISSIONS:
            raise ValueError(f"unknown permission {permission!r}")
        if permission not in self.permissions(principal, url):
            raise PermissionDeniedError(
                f"{principal.name!r} lacks {permission!r} on {url!r}"
            )


@dataclass
class AuthContext:
    """The resolved security context attached to an :class:`AdalClient`."""

    principal: Principal
    authorizer: Optional[AclAuthorizer] = None
    audit_log: list[tuple[str, str, str]] = field(default_factory=list)

    def check(self, url: str, permission: str) -> None:
        """Authorise and audit one operation."""
        if self.authorizer is not None:
            self.authorizer.check(self.principal, url, permission)
        self.audit_log.append((self.principal.name, permission, url))
