"""Authentication and authorisation mechanisms for ADAL.

The paper calls ADAL "extensible to support new backends, *authentication
mechanisms*"; the extension point is :class:`AuthProvider`.  Two providers
are bundled (anonymous and token-based), plus a path-prefix ACL authoriser
that maps principals/groups to permissions per URL prefix — the shape of
access control a multi-community facility needs (each experiment sees only
its own tree).
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.adal.errors import AuthError, PermissionDeniedError

#: The permission vocabulary.
PERMISSIONS = ("read", "write", "delete", "admin")


@dataclass(frozen=True)
class Credentials:
    """What a caller presents: a subject name and an optional secret."""

    subject: str
    token: Optional[str] = None


@dataclass(frozen=True)
class Principal:
    """An authenticated identity with group memberships."""

    name: str
    groups: frozenset[str] = frozenset()

    def identities(self) -> frozenset[str]:
        """All names this principal can act as (self + groups)."""
        return self.groups | {self.name}


class AuthProvider:
    """Maps :class:`Credentials` to a :class:`Principal` (or raises)."""

    name = "abstract"

    def authenticate(self, credentials: Credentials) -> Principal:
        """Authenticate or raise :class:`~repro.adal.errors.AuthError`."""
        raise NotImplementedError


class AnonymousAuth(AuthProvider):
    """Accepts anyone as the (group-less) principal they claim to be.

    Used for open scratch areas and in tests; pair with an ACL that grants
    ``anonymous`` little or nothing in production trees.
    """

    name = "anonymous"

    def authenticate(self, credentials: Credentials) -> Principal:
        return Principal(credentials.subject or "anonymous")


@dataclass(frozen=True)
class Session:
    """A short-lived bearer session issued against static credentials.

    ``expires`` is an absolute reading of the issuing provider's clock;
    with the default (constant-zero) clock sessions never expire, which
    keeps the provider usable inside deterministic simulations.
    """

    token: str
    subject: str
    issued: float
    expires: float


class TokenAuth(AuthProvider):
    """Static token table: subject -> (token, groups), plus sessions.

    Long-lived subject tokens are registered out of band; callers (the
    wire service's ``auth`` op) exchange them for short-lived bearer
    :class:`Session` tokens via :meth:`issue_session`.  All table and
    session state is guarded by one lock: the wire layer authenticates
    from multiple asyncio tasks and, in tests, from multiple threads.

    ``clock`` is any zero-argument time callable — the wire server passes
    its wall clock, simulations their sim clock; the default stamps 0.0
    (sessions never expire).
    """

    name = "token"

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._lock = threading.Lock()
        self._table: dict[str, tuple[str, frozenset[str]]] = {}
        self._sessions: dict[str, Session] = {}
        self._session_seq = 0

    def register(self, subject: str, token: str, groups: Iterable[str] = ()) -> None:
        """Install a subject's token and group memberships."""
        if not token:
            raise ValueError("empty tokens are not allowed")
        with self._lock:
            self._table[subject] = (token, frozenset(groups))

    def revoke(self, subject: str) -> None:
        """Remove a subject and every session issued to it (idempotent)."""
        with self._lock:
            self._table.pop(subject, None)
            stale = [t for t, s in self._sessions.items()
                     if s.subject == subject]
            for token in stale:
                del self._sessions[token]

    def authenticate(self, credentials: Credentials) -> Principal:
        """Check a subject token against the static table."""
        with self._lock:
            entry = self._table.get(credentials.subject)
        if entry is None:
            raise AuthError(f"unknown subject {credentials.subject!r}")
        token, groups = entry
        if credentials.token != token:
            raise AuthError(f"bad token for subject {credentials.subject!r}")
        return Principal(credentials.subject, groups)

    # -- sessions -----------------------------------------------------------
    def issue_session(self, credentials: Credentials,
                      ttl: float = 3600.0) -> Session:
        """Exchange static credentials for a fresh bearer session."""
        if ttl <= 0:
            raise ValueError("session ttl must be > 0")
        principal = self.authenticate(credentials)
        with self._lock:
            self._session_seq += 1
            token = f"sess-{self._session_seq:08d}-{secrets.token_hex(8)}"
            now = self._clock()
            session = Session(token=token, subject=principal.name,
                              issued=now, expires=now + ttl)
            self._sessions[token] = session
        return session

    def authenticate_session(self, token: str) -> Principal:
        """Resolve a live session token to its principal.

        Raises :class:`~repro.adal.errors.AuthError` for unknown, expired
        or revoked sessions (expired ones are reaped on sight).  Group
        membership is read live from the table, so a ``register`` with new
        groups takes effect on in-flight sessions immediately.
        """
        with self._lock:
            session = self._sessions.get(token)
            if session is None:
                raise AuthError("unknown session token")
            if self._clock() >= session.expires:
                del self._sessions[token]
                raise AuthError(
                    f"session for {session.subject!r} has expired")
            entry = self._table.get(session.subject)
            if entry is None:
                del self._sessions[token]
                raise AuthError(
                    f"subject {session.subject!r} has been revoked")
            return Principal(session.subject, entry[1])

    def revoke_session(self, token: str) -> None:
        """Invalidate one session token (idempotent)."""
        with self._lock:
            self._sessions.pop(token, None)

    @property
    def active_sessions(self) -> int:
        """Number of unexpired, unrevoked sessions currently held."""
        with self._lock:
            now = self._clock()
            return sum(1 for s in self._sessions.values() if s.expires > now)


@dataclass
class AclEntry:
    """One grant: identities -> permissions, under a URL prefix."""

    prefix: str
    identity: str  # principal or group name, or "*" for everyone
    permissions: frozenset[str]


def _prefix_match(prefix: str, url: str) -> bool:
    """Component-aware prefix match: ``a/b`` covers ``a/b`` and ``a/b/c``,
    not ``a/bc``; a trailing slash on the grant prefix is optional."""
    prefix = prefix.rstrip("/")
    url = url.rstrip("/")
    return url == prefix or url.startswith(prefix + "/")


class AclAuthorizer:
    """Prefix-match ACLs over ADAL URLs.

    Grants are additive: a principal holds a permission on a URL if *any*
    matching entry (by identity or group, at any matching prefix) grants it.
    ``admin`` implies everything.
    """

    def __init__(self) -> None:
        self._entries: list[AclEntry] = []

    def grant(self, prefix: str, identity: str, permissions: Iterable[str]) -> None:
        """Add a grant under a URL prefix for a principal/group/``*``."""
        perms = frozenset(permissions)
        unknown = perms - set(PERMISSIONS)
        if unknown:
            raise ValueError(f"unknown permissions: {sorted(unknown)}")
        self._entries.append(AclEntry(prefix, identity, perms))

    def permissions(self, principal: Principal, url: str) -> frozenset[str]:
        """All permissions the principal holds on ``url``."""
        identities = principal.identities() | {"*"}
        granted: set[str] = set()
        for entry in self._entries:
            if entry.identity in identities and _prefix_match(entry.prefix, url):
                granted |= entry.permissions
        if "admin" in granted:
            granted |= set(PERMISSIONS)
        return frozenset(granted)

    def check(self, principal: Principal, url: str, permission: str) -> None:
        """Raise :class:`PermissionDeniedError` unless permission is held."""
        if permission not in PERMISSIONS:
            raise ValueError(f"unknown permission {permission!r}")
        if permission not in self.permissions(principal, url):
            raise PermissionDeniedError(
                f"{principal.name!r} lacks {permission!r} on {url!r}"
            )


@dataclass
class AuthContext:
    """The resolved security context attached to an :class:`AdalClient`."""

    principal: Principal
    authorizer: Optional[AclAuthorizer] = None
    audit_log: list[tuple[str, str, str]] = field(default_factory=list)

    def check(self, url: str, permission: str) -> None:
        """Authorise and audit one operation."""
        if self.authorizer is not None:
            self.authorizer.check(self.principal, url, permission)
        self.audit_log.append((self.principal.name, permission, url))
