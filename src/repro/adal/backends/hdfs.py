"""ADAL backend over the simulated HDFS.

Bridges the glue layer and the simulator: object bytes live in memory (so
``get``/``put`` work synchronously for the DataBrowser and workflows), while
each ``put`` also registers the file with the simulated
:class:`~repro.hdfs.namenode.NameNode` — block placements, replica
accounting and capacity are consistent with what the DES experiments see,
and a dataset written through ADAL is immediately runnable as a MapReduce
input.

Timing note: ADAL operations are glue-level (instant); moving the bytes in
*simulated time* is what :meth:`~repro.hdfs.cluster.HdfsCluster.write_file`
/ ``read_file`` are for.  The two views share one namespace through this
backend.
"""

from __future__ import annotations

from typing import Optional

from repro.adal.api import ObjectInfo, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, ObjectExistsError, ObjectNotFoundError
from repro.hdfs.namenode import HdfsError, NameNode


class HdfsBackend(StorageBackend):
    """Real bytes + simulated placement, one namespace."""

    kind = "hdfs-sim"

    def __init__(self, namenode: NameNode, writer_node: Optional[str] = None):
        self.namenode = namenode
        self.writer_node = writer_node
        self._data: dict[str, tuple[bytes, ObjectInfo]] = {}
        self._clock = 0

    def _hdfs_path(self, path: str) -> str:
        return "/" + path.lstrip("/")

    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        if not path:
            raise AdalError("empty object path")
        hdfs_path = self._hdfs_path(path)
        if path in self._data:
            if not overwrite:
                raise ObjectExistsError(path)
            self.namenode.delete_file(hdfs_path)
            del self._data[path]
        try:
            self.namenode.create_file(hdfs_path, len(data), writer=self.writer_node)
        except HdfsError as exc:
            raise AdalError(f"HDFS placement failed for {path!r}: {exc}") from exc
        self._clock += 1
        info = ObjectInfo(
            url=path,
            size=len(data),
            checksum=checksum_bytes(data),
            created=float(self._clock),
        )
        self._data[path] = (bytes(data), info)
        return info

    def get(self, path: str) -> bytes:
        try:
            return self._data[path][0]
        except KeyError:
            raise ObjectNotFoundError(path) from None

    def stat(self, path: str) -> ObjectInfo:
        try:
            return self._data[path][1]
        except KeyError:
            raise ObjectNotFoundError(path) from None

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        return [info for p, (_d, info) in sorted(self._data.items()) if p.startswith(prefix)]

    def delete(self, path: str) -> None:
        if path not in self._data:
            raise ObjectNotFoundError(path)
        self.namenode.delete_file(self._hdfs_path(path))
        del self._data[path]

    def replicas_of(self, path: str) -> list[list[str]]:
        """Replica placement of an object's blocks (for locality-aware UIs)."""
        if path not in self._data:
            raise ObjectNotFoundError(path)
        return [list(b.replicas) for b in self.namenode.file_blocks(self._hdfs_path(path))]
