"""In-memory ADAL backend.

The zero-dependency store used by tests, the DataBrowser examples, and as
the object store behind the simulated HDFS backend.  Optionally enforces a
capacity limit, behaving like a quota'd project space.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.adal.api import ObjectInfo, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, ObjectExistsError, ObjectNotFoundError


class MemoryBackend(StorageBackend):
    """Objects held in a dict; whole-object put/get semantics."""

    kind = "memory"

    def __init__(self, capacity: Optional[int] = None):
        self._objects: dict[str, tuple[bytes, ObjectInfo]] = {}
        self.capacity = capacity
        self._used = 0
        self._clock = itertools.count()

    @property
    def used(self) -> int:
        """Total stored bytes."""
        return self._used

    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        if not path:
            raise AdalError("empty object path")
        existing = self._objects.get(path)
        if existing is not None and not overwrite:
            raise ObjectExistsError(path)
        new_used = self._used + len(data) - (existing[1].size if existing else 0)
        if self.capacity is not None and new_used > self.capacity:
            raise AdalError(
                f"memory backend over capacity: {new_used} > {self.capacity} bytes"
            )
        info = ObjectInfo(
            url=path,
            size=len(data),
            checksum=checksum_bytes(data),
            created=float(next(self._clock)),
        )
        self._objects[path] = (bytes(data), info)
        self._used = new_used
        return info

    def get(self, path: str) -> bytes:
        try:
            return self._objects[path][0]
        except KeyError:
            raise ObjectNotFoundError(path) from None

    def stat(self, path: str) -> ObjectInfo:
        try:
            return self._objects[path][1]
        except KeyError:
            raise ObjectNotFoundError(path) from None

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        return [info for p, (_d, info) in sorted(self._objects.items()) if p.startswith(prefix)]

    def delete(self, path: str) -> None:
        try:
            _data, info = self._objects.pop(path)
        except KeyError:
            raise ObjectNotFoundError(path) from None
        self._used -= info.size
