"""Fault-injecting ADAL backend wrapper.

:class:`FaultyBackend` wraps any :class:`~repro.adal.api.StorageBackend`
and makes a seeded fraction of calls raise
:class:`~repro.adal.errors.BackendUnavailableError` — ADAL's own
fault-injection story, mirroring what the chaos framework does to the
simulated infrastructure.  Faults are drawn from a
:class:`~repro.simkit.rand.RandomSource`, so a given seed produces the same
fault sequence run after run; a ``forced_outage`` flag turns the wrapper
into a hard outage window (used by the ``backend_flaky`` chaos incident).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.adal.api import ObjectInfo, StorageBackend
from repro.adal.errors import BackendUnavailableError
from repro.simkit.rand import RandomSource

_ALL_OPS = ("put", "get", "stat", "listdir", "delete")


class FaultyBackend(StorageBackend):
    """Wraps a backend, failing a seeded fraction of calls transiently.

    Parameters
    ----------
    inner:
        The real backend every surviving call is delegated to.
    failure_rate:
        Probability in [0, 1] that an affected operation raises
        :class:`BackendUnavailableError` before reaching ``inner``.
    rng:
        Seeded random stream for fault draws (default: ``RandomSource(0)``).
    ops:
        Operation names the injector affects (default: all of them).
    """

    kind = "faulty"

    def __init__(
        self,
        inner: StorageBackend,
        failure_rate: float = 0.1,
        rng: Optional[RandomSource] = None,
        ops: Iterable[str] = _ALL_OPS,
    ):
        if not (0.0 <= failure_rate <= 1.0):
            raise ValueError("failure_rate must be in [0, 1]")
        unknown = set(ops) - set(_ALL_OPS)
        if unknown:
            raise ValueError(f"unknown ops: {sorted(unknown)}")
        self.inner = inner
        self.failure_rate = failure_rate
        self.rng = rng or RandomSource(0)
        self.ops = frozenset(ops)
        #: While True, *every* call fails (hard outage window).
        self.forced_outage = False
        self.calls = 0
        self.faults = 0

    def _gate(self, op: str) -> None:
        """Count the call and possibly raise the injected fault."""
        self.calls += 1
        flaky = (
            op in self.ops
            and self.failure_rate > 0
            and self.rng.uniform() < self.failure_rate
        )
        if self.forced_outage or flaky:
            self.faults += 1
            raise BackendUnavailableError(
                f"injected fault on {op} (backend {self.inner.kind!r})"
            )

    # -- delegated operations ------------------------------------------------
    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        self._gate("put")
        return self.inner.put(path, data, overwrite=overwrite)

    def get(self, path: str) -> bytes:
        self._gate("get")
        return self.inner.get(path)

    def stat(self, path: str) -> ObjectInfo:
        self._gate("stat")
        return self.inner.stat(path)

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        self._gate("listdir")
        return self.inner.listdir(prefix)

    def delete(self, path: str) -> None:
        self._gate("delete")
        self.inner.delete(path)

    def exists(self, path: str) -> bool:
        self._gate("stat")
        return self.inner.exists(path)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FaultyBackend rate={self.failure_rate} over {self.inner!r} "
            f"faults={self.faults}/{self.calls}>"
        )
