"""Bundled ADAL storage backends."""

from repro.adal.backends.memory import MemoryBackend
from repro.adal.backends.posix import PosixBackend
from repro.adal.backends.tiered import TieredBackend
from repro.adal.backends.hdfs import HdfsBackend
from repro.adal.backends.object_store import Bucket, ObjectStoreBackend
from repro.adal.backends.faulty import FaultyBackend

__all__ = [
    "Bucket",
    "FaultyBackend",
    "HdfsBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "PosixBackend",
    "TieredBackend",
]
