"""Versioned object-store backend (slide 14: "Object Storage —
investigate and deploy new technologies").

An S3-shaped store as an ADAL backend: the first path component is the
*bucket*, the rest the *key*.  Buckets carry per-bucket policies:

* ``versioning`` — overwrites keep prior versions retrievable
  (:meth:`ObjectStoreBackend.get_version` / :meth:`versions`), and delete
  inserts a delete-marker rather than destroying history;
* ``quota_bytes`` — per-bucket capacity, counting *all* retained versions;
* per-object user metadata headers, stored at put time.

Through the plain :class:`~repro.adal.api.StorageBackend` interface the
store behaves like any other backend (latest version wins), so existing
tools (DataBrowser, workflows, rules) work unchanged; version-aware tools
use the extra methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.adal.api import ObjectInfo, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, ObjectExistsError, ObjectNotFoundError


class BucketNotFoundError(AdalError, KeyError):
    """The path's first component names no existing bucket."""


class QuotaExceededError(AdalError):
    """The put would push the bucket past its quota."""


@dataclass
class _Version:
    version_id: int
    data: Optional[bytes]  # None = delete marker
    info: Optional[ObjectInfo]
    user_metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def is_delete_marker(self) -> bool:
        return self.data is None


@dataclass
class Bucket:
    """A named container with policy."""

    name: str
    versioning: bool = True
    quota_bytes: Optional[int] = None
    _objects: dict[str, list[_Version]] = field(default_factory=dict)
    _version_seq: int = 0
    _used: int = 0

    @property
    def used_bytes(self) -> int:
        """Bytes across all retained versions."""
        return self._used

    def _latest(self, key: str) -> Optional[_Version]:
        versions = self._objects.get(key)
        return versions[-1] if versions else None


class ObjectStoreBackend(StorageBackend):
    """Buckets + keys + versions behind the standard ADAL interface."""

    kind = "object-store"

    def __init__(self) -> None:
        self._buckets: dict[str, Bucket] = {}
        self._clock = 0

    # -- bucket admin -------------------------------------------------------
    def create_bucket(self, name: str, versioning: bool = True,
                      quota_bytes: Optional[int] = None) -> Bucket:
        """Create a bucket (idempotent creation is an error, like S3)."""
        if not name or "/" in name:
            raise AdalError(f"invalid bucket name {name!r}")
        if name in self._buckets:
            raise AdalError(f"bucket {name!r} already exists")
        bucket = Bucket(name, versioning=versioning, quota_bytes=quota_bytes)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        """Look up a bucket."""
        try:
            return self._buckets[name]
        except KeyError:
            raise BucketNotFoundError(name) from None

    @property
    def buckets(self) -> list[str]:
        """Bucket names, sorted."""
        return sorted(self._buckets)

    def _split(self, path: str) -> tuple[Bucket, str]:
        if not path or "/" not in path:
            raise AdalError(f"object-store paths are bucket/key, got {path!r}")
        bucket_name, key = path.split("/", 1)
        if not key:
            raise AdalError(f"empty key in {path!r}")
        return self.bucket(bucket_name), key

    # -- StorageBackend interface ----------------------------------------------
    def put(self, path: str, data: bytes, overwrite: bool = False,
            user_metadata: Optional[Mapping[str, Any]] = None) -> ObjectInfo:
        bucket, key = self._split(path)
        latest = bucket._latest(key)
        exists = latest is not None and not latest.is_delete_marker
        if exists and not overwrite:
            raise ObjectExistsError(path)
        retained = len(data)
        released = 0
        if exists and not bucket.versioning:
            released = latest.info.size  # type: ignore[union-attr]
        if bucket.quota_bytes is not None and (
            bucket._used + retained - released > bucket.quota_bytes
        ):
            raise QuotaExceededError(
                f"bucket {bucket.name!r}: quota {bucket.quota_bytes} B exceeded"
            )
        self._clock += 1
        bucket._version_seq += 1
        info = ObjectInfo(url=path, size=len(data),
                          checksum=checksum_bytes(data), created=float(self._clock))
        version = _Version(bucket._version_seq, bytes(data), info,
                           dict(user_metadata or {}))
        history = bucket._objects.setdefault(key, [])
        if not bucket.versioning:
            for old in history:
                if old.data is not None:
                    bucket._used -= len(old.data)
            history.clear()
        history.append(version)
        bucket._used += retained
        return info

    def get(self, path: str) -> bytes:
        bucket, key = self._split(path)
        latest = bucket._latest(key)
        if latest is None or latest.is_delete_marker:
            raise ObjectNotFoundError(path)
        return latest.data  # type: ignore[return-value]

    def stat(self, path: str) -> ObjectInfo:
        bucket, key = self._split(path)
        latest = bucket._latest(key)
        if latest is None or latest.is_delete_marker:
            raise ObjectNotFoundError(path)
        return latest.info  # type: ignore[return-value]

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        out: list[ObjectInfo] = []
        for bucket_name in sorted(self._buckets):
            bucket = self._buckets[bucket_name]
            for key in sorted(bucket._objects):
                path = f"{bucket_name}/{key}"
                if not path.startswith(prefix):
                    continue
                latest = bucket._latest(key)
                if latest is not None and not latest.is_delete_marker:
                    out.append(latest.info)  # type: ignore[arg-type]
        return out

    def delete(self, path: str) -> None:
        bucket, key = self._split(path)
        latest = bucket._latest(key)
        if latest is None or latest.is_delete_marker:
            raise ObjectNotFoundError(path)
        if bucket.versioning:
            bucket._version_seq += 1
            bucket._objects[key].append(_Version(bucket._version_seq, None, None))
        else:
            for old in bucket._objects.pop(key):
                if old.data is not None:
                    bucket._used -= len(old.data)

    # -- version-aware extras -----------------------------------------------------
    def versions(self, path: str) -> list[int]:
        """Version ids of a key, oldest first (delete markers excluded)."""
        bucket, key = self._split(path)
        history = bucket._objects.get(key)
        if not history:
            raise ObjectNotFoundError(path)
        return [v.version_id for v in history if not v.is_delete_marker]

    def get_version(self, path: str, version_id: int) -> bytes:
        """Fetch a specific retained version."""
        bucket, key = self._split(path)
        for version in bucket._objects.get(key, ()):
            if version.version_id == version_id and not version.is_delete_marker:
                return version.data  # type: ignore[return-value]
        raise ObjectNotFoundError(f"{path}@v{version_id}")

    def user_metadata(self, path: str) -> dict[str, Any]:
        """User metadata headers of the latest version."""
        bucket, key = self._split(path)
        latest = bucket._latest(key)
        if latest is None or latest.is_delete_marker:
            raise ObjectNotFoundError(path)
        return dict(latest.user_metadata)

    def restore(self, path: str, version_id: int) -> ObjectInfo:
        """Make an old version current again (copies it to the head)."""
        data = self.get_version(path, version_id)
        bucket, key = self._split(path)
        metadata = next(
            v.user_metadata for v in bucket._objects[key]
            if v.version_id == version_id
        )
        return self.put(path, data, overwrite=True, user_metadata=metadata)
