"""Tiered (HSM-style) ADAL backend.

A *real* two-tier store mirroring what the simulated
:class:`~repro.storage.hsm.HsmSystem` models in time: a bounded hot tier in
front of an unbounded cold tier.  When the hot tier exceeds its capacity,
the least-recently-used objects are demoted; reading a demoted object
transparently promotes it back (and counts as a *recall*, visible in
:attr:`TieredBackend.recalls` — the glue-level analogue of tape staging).

This gives the E5/E12 benches a real backend whose access pattern costs
differ by tier, without any simulation machinery.
"""

from __future__ import annotations

from typing import Optional

from repro.adal.api import ObjectInfo, StorageBackend
from repro.adal.errors import ObjectExistsError, ObjectNotFoundError


class TieredBackend(StorageBackend):
    """LRU promotion/demotion between a hot and a cold backend."""

    kind = "tiered"

    def __init__(self, hot: StorageBackend, cold: StorageBackend, hot_capacity: int):
        if hot_capacity <= 0:
            raise ValueError("hot_capacity must be > 0")
        self.hot = hot
        self.cold = cold
        self.hot_capacity = int(hot_capacity)
        self._hot_bytes = 0
        self._lru: dict[str, int] = {}  # path -> last-use counter (insertion = order)
        self._tick = 0
        self.recalls = 0
        self.demotions = 0

    # -- tier bookkeeping ---------------------------------------------------
    def tier_of(self, path: str) -> str:
        """``"hot"`` or ``"cold"``; raises when the object is unknown."""
        if self.hot.exists(path):
            return "hot"
        if self.cold.exists(path):
            return "cold"
        raise ObjectNotFoundError(path)

    def _touch(self, path: str) -> None:
        self._tick += 1
        self._lru[path] = self._tick

    def _make_room(self, incoming: int) -> None:
        while self._hot_bytes + incoming > self.hot_capacity and self._lru:
            victim = min(self._lru, key=lambda p: self._lru[p])
            del self._lru[victim]
            data = self.hot.get(victim)
            self.cold.put(victim, data, overwrite=True)
            self.hot.delete(victim)
            self._hot_bytes -= len(data)
            self.demotions += 1

    def _promote(self, path: str) -> bytes:
        data = self.cold.get(path)
        self._make_room(len(data))
        self.hot.put(path, data, overwrite=True)
        self.cold.delete(path)
        self._hot_bytes += len(data)
        self._touch(path)
        self.recalls += 1
        return data

    # -- StorageBackend API ---------------------------------------------------
    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        if not overwrite and (self.hot.exists(path) or self.cold.exists(path)):
            # Raise here: a cold-only object would not trip the hot tier's
            # own write-once check, and delegating would store a duplicate.
            raise ObjectExistsError(path)
        if self.cold.exists(path):
            self.cold.delete(path)
        if self.hot.exists(path):
            # Remove the old copy before making room: left in place it can
            # be picked as an eviction victim, demoting stale bytes to cold
            # and double-subtracting its size from the accounting.
            self._hot_bytes -= self.hot.stat(path).size
            self._lru.pop(path, None)
            self.hot.delete(path)
        self._make_room(len(data))
        info = self.hot.put(path, data, overwrite=True)
        self._hot_bytes += len(data)
        self._touch(path)
        return info

    def get(self, path: str) -> bytes:
        if self.hot.exists(path):
            self._touch(path)
            return self.hot.get(path)
        if self.cold.exists(path):
            return self._promote(path)
        raise ObjectNotFoundError(path)

    def stat(self, path: str) -> ObjectInfo:
        if self.hot.exists(path):
            return self.hot.stat(path)
        return self.cold.stat(path)  # raises ObjectNotFoundError if absent

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        seen: dict[str, ObjectInfo] = {}
        for info in self.hot.listdir(prefix):
            seen[info.url] = info
        for info in self.cold.listdir(prefix):
            seen.setdefault(info.url, info)
        return [seen[k] for k in sorted(seen)]

    def delete(self, path: str) -> None:
        found = False
        if self.hot.exists(path):
            self._hot_bytes -= self.hot.stat(path).size
            self._lru.pop(path, None)
            self.hot.delete(path)
            found = True
        if self.cold.exists(path):
            self.cold.delete(path)
            found = True
        if not found:
            raise ObjectNotFoundError(path)
