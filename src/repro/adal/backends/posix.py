"""POSIX-directory ADAL backend.

Stores objects as real files under a root directory — the shape of the
LSDF's NFS/GPFS-style mounts.  Checksums are computed at put time and kept
in a sidecar index so ``stat`` stays cheap; path traversal out of the root
is rejected.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.adal.api import ObjectInfo, StorageBackend, checksum_bytes
from repro.adal.errors import AdalError, ObjectExistsError, ObjectNotFoundError

_INDEX_NAME = ".adal-index.json"


class PosixBackend(StorageBackend):
    """Objects as files under ``root``; metadata in a sidecar JSON index."""

    kind = "posix"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).resolve()
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / _INDEX_NAME
        self._index: dict[str, dict] = {}
        if self._index_path.exists():
            self._index = json.loads(self._index_path.read_text())

    def _resolve(self, path: str) -> Path:
        if not path:
            raise AdalError("empty object path")
        candidate = (self.root / path).resolve()
        if not candidate.is_relative_to(self.root):
            raise AdalError(f"path escapes backend root: {path!r}")
        return candidate

    def _save_index(self) -> None:
        self._index_path.write_text(json.dumps(self._index))

    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        target = self._resolve(path)
        if path in self._index and not overwrite:
            raise ObjectExistsError(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
        info = {
            "size": len(data),
            "checksum": checksum_bytes(data),
            "created": os.stat(target).st_mtime,
        }
        self._index[path] = info
        self._save_index()
        return ObjectInfo(url=path, size=info["size"], checksum=info["checksum"],
                          created=info["created"])

    def get(self, path: str) -> bytes:
        target = self._resolve(path)
        if path not in self._index or not target.exists():
            raise ObjectNotFoundError(path)
        return target.read_bytes()

    def stat(self, path: str) -> ObjectInfo:
        info = self._index.get(path)
        if info is None:
            raise ObjectNotFoundError(path)
        return ObjectInfo(url=path, size=info["size"], checksum=info["checksum"],
                          created=info["created"])

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        return [self.stat(p) for p in sorted(self._index) if p.startswith(prefix)]

    def delete(self, path: str) -> None:
        target = self._resolve(path)
        if path not in self._index:
            raise ObjectNotFoundError(path)
        del self._index[path]
        if target.exists():
            target.unlink()
        self._save_index()
