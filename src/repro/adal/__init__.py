"""ADAL — the Abstract Data Access Layer (slide 9 of the paper).

    "Hardware and software choices limit the access protocols and APIs —
    not all components accessible through all methods — need a unified
    access layer.  Abstract Data Access Layer, low-level interface to LSDF,
    extensible to support new backends, authentication mechanisms."

ADAL gives every tool (the DataBrowser, the workflow engine, the ingest
pipeline) one API over heterogeneous storage:

* ``adal://<store>/<path>`` URLs resolved through a backend registry;
* pluggable :class:`StorageBackend` implementations — in-memory, POSIX
  directory trees, the simulated HDFS, and an HSM-style tiered backend;
* pluggable authentication (:class:`AnonymousAuth`, :class:`TokenAuth`) and
  path-prefix ACL authorisation;
* end-to-end checksums (verified on read when requested).

Public surface
--------------
:class:`AdalClient`
    The unified entry point: read/write/stat/list/delete/copy.
:class:`BackendRegistry`, :class:`StorageBackend`, :class:`ObjectInfo`
    Extension points for new stores.
:class:`MemoryBackend`, :class:`PosixBackend`, :class:`TieredBackend`
    Bundled backends.
:class:`AnonymousAuth`, :class:`TokenAuth`, :class:`AclAuthorizer`
    Bundled auth mechanisms.
"""

from repro.adal.errors import (
    AdalError,
    AuthError,
    BackendNotFoundError,
    BackendUnavailableError,
    ObjectExistsError,
    ObjectNotFoundError,
    PermissionDeniedError,
)
from repro.adal.api import AdalClient, AdalUrl, BackendRegistry, ObjectInfo, StorageBackend
from repro.adal.auth import AclAuthorizer, AnonymousAuth, Credentials, Principal, TokenAuth
from repro.adal.backends.memory import MemoryBackend
from repro.adal.backends.posix import PosixBackend
from repro.adal.backends.tiered import TieredBackend
from repro.adal.backends.hdfs import HdfsBackend
from repro.adal.backends.object_store import ObjectStoreBackend
from repro.adal.backends.faulty import FaultyBackend

__all__ = [
    "AclAuthorizer",
    "AdalClient",
    "AdalError",
    "AdalUrl",
    "AnonymousAuth",
    "AuthError",
    "BackendNotFoundError",
    "BackendRegistry",
    "BackendUnavailableError",
    "Credentials",
    "FaultyBackend",
    "HdfsBackend",
    "MemoryBackend",
    "ObjectExistsError",
    "ObjectInfo",
    "ObjectNotFoundError",
    "ObjectStoreBackend",
    "PermissionDeniedError",
    "PosixBackend",
    "Principal",
    "StorageBackend",
    "TieredBackend",
    "TokenAuth",
]
