"""The asyncio wire ADAL/metadata service.

:class:`WireServer` is the facility's *real* front door: a TCP service
speaking the length-prefixed JSON protocol of
:mod:`repro.adal.wire.protocol`, fronting a
:class:`~repro.metadata.store.MetadataStore` (durable or not) and,
optionally, an :class:`~repro.adal.api.AdalClient` for object-store ops.

Its admission policy core is **reused from the front door**
(:mod:`repro.frontdoor`): per-tenant
:class:`~repro.frontdoor.admission.TokenBucket` rate limits, the bounded
fair-share :class:`~repro.frontdoor.admission.AdmissionQueue` with
CoDel-style :class:`~repro.frontdoor.admission.ShedController`,
:class:`~repro.frontdoor.brownout.BrownoutController` write degradation,
and per-request :class:`~repro.frontdoor.request.Deadline` budgets with
expired-at-pop fail-fast.  Those components take an injected clock, so
the same code that runs on the simulation clock inside
:class:`~repro.frontdoor.service.FrontDoor` here runs on the wall clock.

Determinism boundary: everything *behind* the socket — the metadata
store, the WAL, the ADAL backends — is plain synchronous state shared
with the simulated facility; only this module (and its client) touches
wall-clock time and real concurrency.

Backpressure is end to end:

* connection readers pause (stop reading frames) while the admission
  queue is above its high-water mark, resuming below the low-water mark —
  TCP then pushes back on the clients;
* responses are written through ``drain()``, so a slow reader bounds the
  per-connection write buffer instead of ballooning server memory.

Every decoded request reaches exactly one terminal response (result,
typed error, rejection, or deadline failure) — :meth:`accounting`
carries the front door's zero-silent-loss balance sheet over the wire.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.adal.api import AdalClient
from repro.adal.auth import Credentials, TokenAuth
from repro.adal.errors import BackendUnavailableError
from repro.adal.wire.errors import WireProtocolError
from repro.adal.wire.protocol import (
    OPS,
    error_envelope,
    error_kind,
    query_from_wire,
    read_frame,
    write_frame,
)
from repro.frontdoor.admission import AdmissionQueue, ShedController, TokenBucket
from repro.frontdoor.brownout import TIER_NAMES, BrownoutController
from repro.frontdoor.request import (
    BATCH,
    INTERACTIVE,
    Deadline,
    TenantSpec,
)
from repro.telemetry.events import INFO, WARNING
from repro.telemetry.hub import TelemetryHub

#: Admission rejection reasons (label pre-registration).
REJECT_REASONS = ("rate_limited", "queue_full", "brownout")

#: Terminal response statuses (label pre-registration).
RESPONSE_STATUSES = ("ok", "error", "rejected", "deadline", "shed", "closed")

#: Default priority class per operation.
_OP_PRIORITY = {
    "ping": INTERACTIVE, "auth": INTERACTIVE, "get": INTERACTIVE,
    "stat": INTERACTIVE, "exists": INTERACTIVE,
}

#: Operations the brownout controller treats as writes.
_WRITE_OPS = frozenset({"register", "tag", "add_processing"})


def _default_tenants() -> tuple[TenantSpec, ...]:
    """A single unlimited public tenant (standalone / bench default)."""
    return (TenantSpec("public", weight=1.0, rate_limit=None),)


@dataclass
class _ConnState:
    """Per-connection server state."""

    writer: asyncio.StreamWriter
    index: int
    #: Authenticated principal name (None until an ``auth`` op succeeds).
    principal: Optional[str] = None
    #: Tenant the connection's requests default to.
    tenant: Optional[str] = None
    closed: bool = False


@dataclass
class WireRequest:
    """One admitted wire operation (shape the admission queue expects)."""

    conn: _ConnState
    message_id: Any
    op: str
    args: dict
    tenant: str
    priority: int
    deadline: Deadline
    submitted: float
    seq: int
    #: Coalesced operation count (len(ops) for a batch, else 1).
    nops: int = 1
    #: Set by the admission queue when the request is enqueued.
    enqueued: float = 0.0
    #: Guard: exactly one terminal response per request.
    finished: bool = False
    retries: int = 0
    outcome: Optional[str] = field(default=None)


class WireServer:
    """Admission-controlled asyncio metadata/ADAL service.

    Parameters
    ----------
    store:
        The metadata repository served (a
        :class:`~repro.durability.durable.DurableMetadataStore` enables
        the group-commit fast path for batched registers).
    adal:
        Optional :class:`~repro.adal.api.AdalClient` backing the
        ``stat``/``exists`` object ops (``unavailable`` errors without it).
    auth:
        Optional :class:`~repro.adal.auth.TokenAuth`; enables the ``auth``
        op (session issue) and session validation.  With
        ``require_auth=True`` every non-auth/ping op needs a live session.
    tenants:
        :class:`~repro.frontdoor.request.TenantSpec` per community
        (admission weights + rate limits).  Default: one unlimited
        ``public`` tenant.
    workers:
        Concurrent service tasks draining the admission queue.
    queue_capacity:
        Per-tenant admission queue bound.
    high_water / low_water:
        Total queue depths at which connection readers pause / resume
        (defaults: 0.75 / 0.25 of ``queue_capacity``).
    deadlines:
        Default budgets (seconds) by priority class when a request names
        none.
    enabled:
        ``False`` disables rate limits, shedding, brownout and deadline
        fail-fast (the naive ablation arm, mirroring the front door's).
    debug_ops:
        Enables the test-only ``stall`` op (asyncio sleep in service).
    telemetry:
        Optional :class:`~repro.telemetry.hub.TelemetryHub`; default is a
        private hub on a relative wall clock.
    """

    def __init__(
        self,
        store,
        adal: Optional[AdalClient] = None,
        auth: Optional[TokenAuth] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Optional[Sequence[TenantSpec]] = None,
        workers: int = 4,
        queue_capacity: int = 1024,
        high_water: Optional[int] = None,
        low_water: Optional[int] = None,
        codel_target: float = 0.25,
        codel_interval: float = 1.0,
        brownout_target: float = 0.5,
        deadlines: tuple[float, float, float] = (5.0, 15.0, 60.0),
        enabled: bool = True,
        require_auth: bool = False,
        debug_ops: bool = False,
        telemetry: Optional[TelemetryHub] = None,
        name: str = "wire",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.adal = adal
        self.auth = auth
        self.host = host
        self.port = port
        self.name = name
        self.enabled = enabled
        self.require_auth = require_auth
        self.debug_ops = debug_ops
        self.workers = workers
        self.deadlines = deadlines
        specs = tuple(tenants) if tenants else _default_tenants()
        self.tenants = {spec.name: spec for spec in specs}
        self._fallback_tenant = specs[0].name
        self._t0 = time.monotonic()
        self._clock = lambda: time.monotonic() - self._t0
        if telemetry is None:
            telemetry = TelemetryHub(clock=self._clock)
        self._hub = telemetry
        self.shed = ShedController(target=codel_target, interval=codel_interval)
        self.brownout = BrownoutController(
            target=brownout_target, on_change=self._on_brownout_change)
        self.queue = AdmissionQueue(
            clock=self._clock,
            tenants={spec.name: spec.weight for spec in specs},
            capacity=queue_capacity,
            shed=self.shed if enabled else None,
            on_drop=self._on_queue_drop,
            on_dequeue=self._on_dequeue,
            fail_fast_expired=enabled,
        )
        self.buckets = {
            spec.name: TokenBucket(self._clock, spec.rate_limit, spec.burst)
            for spec in specs
        }
        total_capacity = queue_capacity * len(specs)
        self.high_water = (high_water if high_water is not None
                           else max(1, int(total_capacity * 0.75)))
        self.low_water = (low_water if low_water is not None
                          else max(0, int(total_capacity * 0.25)))
        if self.low_water >= self.high_water:
            raise ValueError("low_water must be < high_water")
        self._seq = 0
        self._in_flight = 0
        self._open_conns = 0
        self._conn_seq = 0
        self._running = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_tasks: list[asyncio.Task] = []
        self._conns: dict[int, _ConnState] = {}
        self._drops: list[tuple[WireRequest, str]] = []
        self._arrival: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._build_instruments()

    # -- instruments ---------------------------------------------------------
    def _build_instruments(self) -> None:
        reg = self._hub.registry
        self._m_requests = {
            op: reg.counter("wire.requests_total",
                            "Wire requests decoded, by operation", op=op)
            for op in OPS}
        self._m_responses = {
            status: reg.counter("wire.responses_total",
                                "Terminal wire responses, by status",
                                status=status)
            for status in RESPONSE_STATUSES}
        self._m_rejected = {
            reason: reg.counter("wire.rejected_total",
                                "Requests refused at wire admission",
                                reason=reason)
            for reason in REJECT_REASONS}
        self._m_batches = reg.counter(
            "wire.batches_total", "Batch envelopes served")
        self._h_batch_size = reg.histogram(
            "wire.batch_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            help="Coalesced operations per served batch envelope")
        self._m_group_commits = reg.counter(
            "wire.group_commits_total",
            "Batched register runs flushed through the WAL fast path")
        self._m_batch_fallbacks = reg.counter(
            "wire.batch_fallbacks_total",
            "Register runs that fell back to per-item registration")
        self._m_backpressure = reg.counter(
            "wire.backpressure_stalls_total",
            "Times a connection reader paused on a full admission queue")
        self._m_connections = reg.counter(
            "wire.connections_total", "Connections accepted")
        self._m_bytes_read = reg.counter(
            "wire.bytes_read_total", "Frame bytes read", unit="bytes")
        self._m_bytes_written = reg.counter(
            "wire.bytes_written_total", "Frame bytes written", unit="bytes")
        self._m_send_failures = reg.counter(
            "wire.send_failures_total",
            "Responses lost to an already-dead connection")
        self._m_sessions = reg.counter(
            "wire.auth_sessions_total", "Sessions issued by the auth op")
        self._s_service = reg.summary(
            "wire.service_seconds",
            "Dequeue-to-response service time of ok responses", unit="s")
        reg.gauge_fn("wire.queue_depth",
                     lambda: float(self.queue.depth),
                     "Requests in the wire admission queue")
        reg.gauge_fn("wire.in_flight",
                     lambda: float(self._in_flight),
                     "Requests currently in service")
        reg.gauge_fn("wire.open_connections",
                     lambda: float(self._open_conns),
                     "Currently open client connections")

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._arrival = asyncio.Event()
        self._space = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(), name=f"{self.name}.worker{i:02d}")
            for i in range(self.workers)
        ]
        self._hub.bus.publish(
            "wire.listening", subject=self.name, severity=INFO,
            host=self.host, port=self.port, workers=self.workers)

    async def stop(self) -> None:
        """Stop accepting, fail queued work, close connections and workers."""
        if self._server is None:
            return
        self._running = False
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Everything still queued gets a terminal "closed" response.
        for request in self.queue.drain():
            await self._respond_error_kind(
                request, "closed", "server shutting down", status="closed")
        self._arrival.set()
        self._space.set()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        for state in list(self._conns.values()):
            state.closed = True
            state.writer.close()
        for state in list(self._conns.values()):
            try:
                await state.writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; the close still completed
        self._conns.clear()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port is concrete after ``start``)."""
        return (self.host, self.port)

    # -- connection handling -------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        state = _ConnState(writer=writer, index=self._conn_seq)
        self._conns[state.index] = state
        self._open_conns += 1
        self._m_connections.add(1)
        try:
            while self._running:
                await self._backpressure_gate()
                if not self._running:
                    break
                message = await read_frame(
                    reader, on_bytes=self._m_bytes_read.add)
                if message is None:
                    break
                await self._dispatch(state, message)
        except WireProtocolError:
            pass  # protocol violation: drop the connection (counted below)
        except (ConnectionError, OSError):
            pass  # peer vanished mid-read; nothing left to answer
        finally:
            state.closed = True
            self._open_conns -= 1
            self._conns.pop(state.index, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # close of a dead socket; already disconnected

    async def _backpressure_gate(self) -> None:
        """Pause reading while the admission queue is above high water."""
        if self.queue.depth < self.high_water:
            return
        self._m_backpressure.add(1)
        self._hub.bus.publish(
            "wire.backpressure", subject=self.name, severity=WARNING,
            depth=self.queue.depth, high_water=self.high_water)
        while self._running and self.queue.depth > self.low_water:
            self._space.clear()
            if self.queue.depth <= self.low_water:
                break
            await self._space.wait()

    # -- admission -----------------------------------------------------------
    async def _dispatch(self, state: _ConnState, message: dict) -> None:
        """Validate, authenticate and admit one decoded message."""
        message_id = message.get("id")
        op = message.get("op")
        if op not in OPS or (op == "stall" and not self.debug_ops):
            await self._send(state, error_envelope(
                message_id,
                WireProtocolError(f"unknown op {op!r}")), status="error")
            return
        self._m_requests[op].add(1)
        if op == "auth":
            await self._handle_auth(state, message_id, message.get("args") or {})
            return
        if self.auth is not None:
            session = message.get("session")
            principal = None
            if session is not None:
                try:
                    principal = self.auth.authenticate_session(session).name
                except Exception as exc:
                    await self._send(state, error_envelope(message_id, exc),
                                     status="error")
                    return
            if principal is None:
                principal = state.principal
            if self.require_auth and principal is None and op != "ping":
                await self._send(state, error_envelope(
                    message_id,
                    WireProtocolError("authentication required")),
                    status="error")
                return
        args = message.get("args") or {}
        nops = len(args.get("ops", ())) if op == "batch" else 1
        tenant = message.get("tenant") or state.tenant or self._fallback_tenant
        if tenant not in self.tenants:
            tenant = self._fallback_tenant
        priority = int(message.get("priority",
                                   _OP_PRIORITY.get(op, BATCH)))
        budget = float(message.get("budget", self.deadlines[priority]))
        now = self._clock()
        self._seq += 1
        request = WireRequest(
            conn=state, message_id=message_id, op=op, args=args,
            tenant=tenant, priority=priority,
            deadline=Deadline(now, budget), submitted=now,
            seq=self._seq, nops=max(1, nops))
        if self.enabled:
            if self._writes_in(request) and self.brownout.rejects_writes():
                await self._reject(request, "brownout")
                return
            if not self.buckets[tenant].try_take(request.nops):
                await self._reject(request, "rate_limited")
                return
        if not self.queue.offer(request):
            await self._reject(request, "queue_full")
            return
        self._arrival.set()
        # Queue-side drops (expired / shed) surfaced by a concurrent pop
        # must be answered promptly even if every worker is busy.
        await self._flush_drops()

    def _writes_in(self, request: WireRequest) -> bool:
        """Whether the request carries any write op (brownout policy)."""
        if request.op == "batch":
            ops = request.args.get("ops")
            return isinstance(ops, list) and any(
                isinstance(sub, dict) and sub.get("op") in _WRITE_OPS
                for sub in ops)
        return request.op in _WRITE_OPS

    async def _handle_auth(self, state: _ConnState, message_id: Any,
                           args: dict) -> None:
        """Issue a session token for static credentials (auth op)."""
        if self.auth is None:
            await self._send(state, error_envelope(
                message_id,
                WireProtocolError("server has no auth provider")),
                status="error")
            return
        try:
            session = self.auth.issue_session(
                Credentials(str(args.get("subject", "")),
                            args.get("token")),
                ttl=float(args.get("ttl", 3600.0)))
        except Exception as exc:
            await self._send(state, error_envelope(message_id, exc),
                             status="error")
            return
        state.principal = session.subject
        if args.get("tenant") and args["tenant"] in self.tenants:
            state.tenant = args["tenant"]
        self._m_sessions.add(1)
        await self._send(state, {
            "id": message_id, "ok": True,
            "result": {"session": session.token,
                       "subject": session.subject,
                       "expires": session.expires}}, status="ok")

    async def _reject(self, request: WireRequest, reason: str) -> None:
        self._m_rejected[reason].add(1)
        await self._respond_error_kind(
            request, "rejected", f"request rejected: {reason}",
            status="rejected", reason=reason)

    # -- queue callbacks -----------------------------------------------------
    def _on_queue_drop(self, request: WireRequest, reason: str) -> None:
        # Called synchronously inside queue.pop(); the response needs an
        # await, so park it for the next _flush_drops() call.
        self._drops.append((request, reason))

    def _on_dequeue(self, request: WireRequest, sojourn: float) -> None:
        if self.enabled:
            self.brownout.observe(sojourn)

    async def _flush_drops(self) -> None:
        """Answer requests the admission queue dropped (expired / shed)."""
        while self._drops:
            request, reason = self._drops.pop(0)
            if reason == "expired":
                await self._respond_error_kind(
                    request, "deadline",
                    f"budget of {request.deadline.budget:.3f}s expired in "
                    "queue", status="deadline")
            else:
                await self._respond_error_kind(
                    request, "rejected", "request shed under overload",
                    status="shed", reason="shed")

    # -- workers -------------------------------------------------------------
    async def _worker(self) -> None:
        """One service worker: drain the queue, idle-wait on arrivals."""
        while self._running:
            request = self.queue.pop()
            await self._flush_drops()
            if request is None:
                self._arrival.clear()
                if self.queue.depth == 0 and self._running:
                    await self._arrival.wait()
                continue
            self._in_flight += 1
            try:
                await self._serve(request)
            except asyncio.CancelledError:
                # Cancelled mid-service (stop()): the request still gets
                # its terminal response before the worker dies.
                await self._respond_error_kind(
                    request, "closed", "server shutting down",
                    status="closed")
                raise
            finally:
                self._in_flight -= 1
            if self.queue.depth <= self.low_water:
                self._space.set()

    async def _serve(self, request: WireRequest) -> None:
        """Execute one admitted request and send its terminal response."""
        started = self._clock()
        try:
            if request.op == "batch":
                ops = request.args.get("ops")
                if not isinstance(ops, list):
                    raise WireProtocolError("batch needs an 'ops' list")
                results = self._execute_batch(ops, request.conn)
                self._m_batches.add(1)
                self._h_batch_size.observe(float(len(ops)))
                result: Any = results
            elif request.op == "stall":
                await asyncio.sleep(float(request.args.get("seconds", 0.01)))
                result = {"stalled": True}
            else:
                result = self._execute(request.op, request.args, request.conn)
        except Exception as exc:
            await self._respond_error_kind(
                request, error_kind(exc), f"{type(exc).__name__}: {exc}",
                status="error")
            return
        self._s_service.record(self._clock() - started)
        await self._respond_ok(request, result)

    # -- operation execution -------------------------------------------------
    def _execute_batch(self, ops: list, state: _ConnState) -> list[dict]:
        """Serve a coalesced batch: one pass, grouped register fast path."""
        results: list[dict] = []
        index = 0
        while index < len(ops):
            sub = ops[index]
            if isinstance(sub, dict) and sub.get("op") == "register":
                run = []
                while (index < len(ops) and isinstance(ops[index], dict)
                       and ops[index].get("op") == "register"):
                    run.append(ops[index].get("args") or {})
                    index += 1
                results.extend(self._register_run(run, state))
                continue
            if not isinstance(sub, dict):
                results.append(self._sub_error(
                    WireProtocolError("batch entries must be objects")))
            else:
                try:
                    results.append({"ok": True, "result": self._execute(
                        sub.get("op"), sub.get("args") or {}, state)})
                except Exception as exc:
                    results.append(self._sub_error(exc))
            index += 1
        return results

    def _register_run(self, run: list[dict], state: _ConnState) -> list[dict]:
        """Serve a run of register ops — group-commit when the store can.

        The durable store's :meth:`register_batch` appends every WAL
        record in one flush (all-or-nothing).  When the batch fails as a
        whole (one bad item), fall back to per-item registration so each
        op still gets its own typed outcome — the end state is identical
        because the failed batch applied nothing.
        """
        if len(run) > 1 and hasattr(self.store, "register_batch"):
            try:
                records = self.store.register_batch(
                    [self._register_kwargs(args) for args in run])
            except Exception:
                # All-or-nothing batch refused (one bad item): nothing was
                # applied, so fall through to per-item registration for
                # detailed per-op outcomes.
                self._m_batch_fallbacks.add(1)
            else:
                self._m_group_commits.add(1)
                return [{"ok": True, "result": {"dataset_id": r.dataset_id}}
                        for r in records]
        results = []
        for args in run:
            try:
                results.append({"ok": True, "result":
                                self._execute("register", args, state)})
            except Exception as exc:
                results.append(self._sub_error(exc))
        return results

    @staticmethod
    def _sub_error(exc: BaseException) -> dict:
        envelope = error_envelope(None, exc)
        envelope.pop("id", None)
        return envelope

    @staticmethod
    def _register_kwargs(args: dict) -> dict:
        return {
            "dataset_id": args["dataset_id"],
            "project": args["project"],
            "url": args["url"],
            "size": int(args["size"]),
            "checksum": args["checksum"],
            "basic": args.get("basic") or {},
            "created": float(args.get("created", 0.0)),
            "tags": args.get("tags") or (),
        }

    def _execute(self, op: Optional[str], args: dict,
                 state: _ConnState) -> Any:
        """Run one (non-batch) operation against the store / ADAL."""
        if op == "ping":
            return {"pong": True, "now": self._clock()}
        if op == "register":
            record = self.store.register_dataset(**self._register_kwargs(args))
            return {"dataset_id": record.dataset_id}
        if op == "get":
            return self.store.get(args["dataset_id"]).to_dict()
        if op == "query":
            query = query_from_wire(args["q"])
            hits = self.store.query(query)
            limit = args.get("limit")
            if limit is not None:
                hits = hits[:int(limit)]
            if args.get("ids_only"):
                return {"ids": [r.dataset_id for r in hits],
                        "count": len(hits)}
            return {"records": [r.to_dict() for r in hits],
                    "count": len(hits)}
        if op == "tag":
            self.store.tag(args["dataset_id"], *args.get("tags", ()))
            return {"dataset_id": args["dataset_id"]}
        if op == "add_processing":
            step = self.store.add_processing(
                args["dataset_id"], args["name"],
                args.get("params") or {}, args.get("results") or {},
                float(args.get("started", 0.0)),
                float(args.get("finished", 0.0)),
                status=args.get("status", "success"),
                parent=args.get("parent"))
            return {"step_id": step.step_id}
        if op in ("stat", "exists"):
            if self.adal is None:
                raise BackendUnavailableError("no ADAL client behind this server")
            if op == "exists":
                return {"exists": self.adal.exists(args["url"])}
            info = self.adal.stat(args["url"])
            return {"url": info.url, "size": info.size,
                    "checksum": info.checksum, "created": info.created}
        raise WireProtocolError(f"unknown op {op!r}")

    # -- responses -----------------------------------------------------------
    async def _respond_ok(self, request: WireRequest, result: Any) -> None:
        if request.finished:
            return
        request.finished = True
        request.outcome = "ok"
        await self._send(request.conn,
                         {"id": request.message_id, "ok": True,
                          "result": result}, status="ok")

    async def _respond_error_kind(self, request: WireRequest, kind: str,
                                  message: str, status: str,
                                  reason: Optional[str] = None) -> None:
        if request.finished:
            return
        request.finished = True
        request.outcome = status
        envelope: dict = {"id": request.message_id, "ok": False,
                          "kind": kind, "error": message}
        if reason is not None:
            envelope["reason"] = reason
        await self._send(request.conn, envelope, status=status)

    async def _send(self, state: _ConnState, message: dict,
                    status: str) -> None:
        """Write one terminal response; count it even if the peer is gone."""
        self._m_responses[status].add(1)
        if state.closed:
            self._m_send_failures.add(1)
            return
        try:
            self._m_bytes_written.add(
                await write_frame(state.writer, message))
        except (ConnectionError, OSError):
            self._m_send_failures.add(1)

    # -- observers -----------------------------------------------------------
    def _on_brownout_change(self, old: int, new: int, signal: float) -> None:
        self._hub.bus.publish(
            "frontdoor.brownout", subject=self.name,
            severity=WARNING if new > old else INFO,
            old=TIER_NAMES[old], new=TIER_NAMES[new], signal=signal)

    # -- accounting ----------------------------------------------------------
    def accounting(self) -> dict:
        """The zero-silent-loss balance sheet at message granularity.

        ``silent_loss`` is decoded requests minus terminal responses minus
        work still queued or in service; it must be 0 at all times.
        (``auth`` and malformed-op messages respond inline and appear in
        both sides of the balance.)
        """
        reg = self._hub.registry
        received = int(reg.total("wire.requests_total"))
        responded = int(reg.total("wire.responses_total"))
        # Responses to messages that never became requests (unknown op,
        # auth-required, bad session) still count on the response side;
        # unknown-op messages are not counted in requests_total, so track
        # the balance over admitted work only.
        return {
            "received": received,
            "responded": responded,
            "queued": self.queue.depth,
            "in_flight": self._in_flight,
            "silent_loss": (received - responded - self.queue.depth
                            - self._in_flight),
        }

    def stats(self) -> dict:
        """Headline wire-service numbers (machine-readable)."""
        reg = self._hub.registry
        acct = self.accounting()
        return {
            "enabled": self.enabled,
            "received": acct["received"],
            "responded": acct["responded"],
            "silent_loss": acct["silent_loss"],
            "queued": acct["queued"],
            "in_flight": acct["in_flight"],
            "batches": int(reg.total("wire.batches_total")),
            "group_commits": int(reg.total("wire.group_commits_total")),
            "backpressure_stalls":
                int(reg.total("wire.backpressure_stalls_total")),
            "connections": int(reg.total("wire.connections_total")),
            "send_failures": int(reg.total("wire.send_failures_total")),
            "peak_queue_depth": self.queue.peak_depth,
            "brownout_tier": self.brownout.tier,
            "shed_floor": self.shed.shed_floor,
        }

    @property
    def telemetry(self) -> TelemetryHub:
        """The hub carrying every ``wire.*`` metric and event."""
        return self._hub

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<WireServer {self.name} {self.host}:{self.port} "
                f"queued={self.queue.depth} in_flight={self._in_flight}>")
