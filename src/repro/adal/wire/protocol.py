"""The wire protocol: length-prefixed JSON frames plus the message schema.

Framing
-------
Every message — request or response, single or batch — travels as one
frame::

    +----------+----------------------+
    | length   | payload              |
    | 4B LE    | ``length`` bytes     |
    +----------+----------------------+

with an unsigned little-endian length prefix and a UTF-8 JSON payload.
Frames above :data:`MAX_FRAME_BYTES` are rejected before allocation (a
corrupt or hostile length prefix must not balloon memory).

Messages
--------
Requests are ``{"id": n, "op": name, "args": {...}}`` with optional
``tenant``, ``priority``, ``budget`` (seconds of end-to-end deadline) and
``session`` fields.  Responses echo the id: ``{"id": n, "ok": true,
"result": ...}`` or ``{"id": n, "ok": false, "kind": k, "error": msg}``.

The batch op ``{"op": "batch", "args": {"ops": [{"op":..,"args":..}, ...]}}``
carries N coalesced operations in one frame; its result is a list of N
per-op ``{"ok": ...}`` envelopes in order, so a batch always yields
exactly one terminal outcome per coalesced request.

Queries travel as a small S-expression JSON form (:func:`query_to_wire` /
:func:`query_from_wire`) mirroring the :class:`~repro.metadata.query.Q`
combinators.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Optional

from repro.adal.errors import (
    AdalError,
    AuthError,
    BackendNotFoundError,
    BackendUnavailableError,
    ChecksumMismatchError,
    ObjectExistsError,
    ObjectNotFoundError,
    PermissionDeniedError,
)
from repro.adal.wire.errors import (
    RequestRejectedError,
    WireClosedError,
    WireProtocolError,
)
from repro.metadata.errors import (
    MetadataError,
    MetadataUnavailableError,
    UnknownDatasetError,
    UnknownProjectError,
    WriteOnceError,
)
from repro.metadata.query import (
    And,
    FieldCmp,
    HasStep,
    MatchAll,
    Not,
    Or,
    ProjectIs,
    Query,
    TagIs,
)
from repro.resilience.errors import DeadlineExceededError

_LENGTH = struct.Struct("<I")

#: Hard per-frame size bound (requests and responses alike).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Operations the server accepts (batch is the coalescing envelope).
OPS = ("ping", "auth", "register", "get", "query", "tag", "add_processing",
       "stat", "exists", "batch", "stall")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(message: dict) -> bytes:
    """Serialise one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    on_bytes: Optional[Callable[[int], None]] = None,
) -> Optional[dict]:
    """Read one frame; ``None`` at a clean EOF (peer closed between frames).

    ``on_bytes`` (when given) receives the total frame size — header plus
    payload — of each successfully read frame (byte accounting).
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close on a frame boundary
        raise WireProtocolError("connection closed mid-header") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireProtocolError("connection closed mid-frame") from None
    if on_bytes is not None:
        on_bytes(_LENGTH.size + length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise WireProtocolError("frame payload must be a JSON object")
    return message


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> int:
    """Frame and send one message, honouring transport flow control.

    ``drain()`` blocks while the transport's write buffer is above its
    high-water mark — the per-connection bounded write queue that keeps a
    slow reader from ballooning server memory.  Returns bytes written.
    """
    frame = encode_frame(message)
    writer.write(frame)
    await writer.drain()
    return len(frame)


# ---------------------------------------------------------------------------
# error <-> kind mapping
# ---------------------------------------------------------------------------

#: Stable wire error kinds and the exceptions the client raises for them.
_KIND_TO_ERROR = {
    "not_found": ObjectNotFoundError,
    "exists": ObjectExistsError,
    "write_once": WriteOnceError,
    "unknown_dataset": UnknownDatasetError,
    "unknown_project": UnknownProjectError,
    "unknown_store": BackendNotFoundError,
    "unavailable": BackendUnavailableError,
    "metadata_unavailable": MetadataUnavailableError,
    "checksum": ChecksumMismatchError,
    "auth": AuthError,
    "denied": PermissionDeniedError,
    "deadline": DeadlineExceededError,
    "bad_request": WireProtocolError,
    "closed": WireClosedError,
    "metadata": MetadataError,
    "internal": AdalError,
}

#: Exception classes mapped back to kinds — ordered most-specific first so
#: subclass relationships resolve deterministically.
_ERROR_TO_KIND = (
    (UnknownDatasetError, "unknown_dataset"),
    (UnknownProjectError, "unknown_project"),
    (WriteOnceError, "write_once"),
    (MetadataUnavailableError, "metadata_unavailable"),
    (ObjectNotFoundError, "not_found"),
    (ObjectExistsError, "exists"),
    (BackendNotFoundError, "unknown_store"),
    (BackendUnavailableError, "unavailable"),
    (ChecksumMismatchError, "checksum"),
    (PermissionDeniedError, "denied"),
    (AuthError, "auth"),
    (DeadlineExceededError, "deadline"),
    (WireProtocolError, "bad_request"),
    (WireClosedError, "closed"),
    (MetadataError, "metadata"),
    (KeyError, "bad_request"),
    (ValueError, "bad_request"),
    (TypeError, "bad_request"),
)


def error_kind(exc: BaseException) -> str:
    """The stable wire kind for an exception (``"internal"`` fallback)."""
    for cls, kind in _ERROR_TO_KIND:
        if isinstance(exc, cls):
            return kind
    return "internal"


def error_from(kind: str, message: str,
               reason: Optional[str] = None) -> Exception:
    """Build (without raising) the local exception for an error envelope."""
    if kind == "rejected":
        return RequestRejectedError(message, reason=reason or "rejected")
    if kind == "deadline":
        # DeadlineExceededError composes its message from a float budget;
        # the wire envelope already carries the composed server-side text.
        error = DeadlineExceededError(0.0, "wire request")
        error.args = (message,)
        return error
    cls = _KIND_TO_ERROR.get(kind, AdalError)
    return cls(message)


def raise_for_error(kind: str, message: str, reason: Optional[str] = None):
    """Re-raise a wire error envelope as the matching local exception."""
    raise error_from(kind, message, reason)


def error_envelope(message_id: Any, exc: BaseException) -> dict:
    """Build the error response for one failed request."""
    return {"id": message_id, "ok": False, "kind": error_kind(exc),
            "error": f"{type(exc).__name__}: {exc}"}


# ---------------------------------------------------------------------------
# query wire form
# ---------------------------------------------------------------------------

def query_to_wire(q: Query) -> list:
    """Serialise a query tree into its JSON S-expression form."""
    if isinstance(q, And):
        return ["and", *[query_to_wire(p) for p in q.parts]]
    if isinstance(q, Or):
        return ["or", *[query_to_wire(p) for p in q.parts]]
    if isinstance(q, Not):
        return ["not", query_to_wire(q.inner)]
    if isinstance(q, FieldCmp):
        return ["field", q.name, q.op, q.value]
    if isinstance(q, TagIs):
        return ["tag", q.tag]
    if isinstance(q, ProjectIs):
        return ["project", q.project]
    if isinstance(q, HasStep):
        return ["has_step", q.name]
    if isinstance(q, MatchAll):
        return ["all"]
    raise WireProtocolError(f"query node {type(q).__name__} has no wire form")


def query_from_wire(obj: Any) -> Query:
    """Rebuild a query tree from its JSON S-expression form."""
    if not isinstance(obj, list) or not obj:
        raise WireProtocolError(f"malformed wire query: {obj!r}")
    head, *rest = obj
    if head == "and":
        return And(*[query_from_wire(p) for p in rest])
    if head == "or":
        return Or(*[query_from_wire(p) for p in rest])
    if head == "not" and len(rest) == 1:
        return Not(query_from_wire(rest[0]))
    if head == "field" and len(rest) == 3:
        return FieldCmp(str(rest[0]), str(rest[1]), rest[2])
    if head == "tag" and len(rest) == 1:
        return TagIs(str(rest[0]))
    if head == "project" and len(rest) == 1:
        return ProjectIs(str(rest[0]))
    if head == "has_step" and len(rest) == 1:
        return HasStep(str(rest[0]))
    if head == "all" and not rest:
        return MatchAll()
    raise WireProtocolError(f"malformed wire query node: {obj!r}")
