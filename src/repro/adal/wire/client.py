"""The pooled, pipelining, auto-batching wire client.

:class:`WireClient` is the performance half of the wire layer:

**Connection pooling.**  Up to ``pool_size`` TCP connections are opened
lazily and reused; each carries at most ``max_in_flight`` outstanding
frames.  When every connection is saturated, callers wait up to
``acquire_timeout`` for capacity and then get a
:class:`~repro.adal.wire.errors.PoolExhaustedError` — which subclasses
:class:`~repro.adal.errors.BackendUnavailableError`, so retry policies
treat a momentarily-full pool as the transient fault it is.

**Pipelining.**  Requests carry client-assigned ids; each connection
keeps an id-keyed table of pending futures and a reader task that
resolves them as responses arrive, in whatever order the server finishes
them.  Nothing waits for a round trip before the next frame goes out.

**Automatic batching.**  Batchable calls are appended to a pending list
and a flusher task coalesces them into ``batch`` frames (one framed
envelope carrying N ops, served by one admission pass server-side).
There is no timer window: while the flusher awaits pool capacity or a
socket write, concurrent callers pile more work onto the list, so batch
size grows naturally with concurrency and a lone call still goes out
immediately.  Entries are grouped by (tenant, priority, budget, session)
so one envelope's admission metadata is exact for every op inside it.

The client is wall-clock, single-event-loop code: create and use it from
one running loop.  It never touches the simulated facility's clock.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from repro.adal.wire.errors import PoolExhaustedError, WireClosedError
from repro.adal.wire.protocol import (
    encode_frame,
    error_from,
    query_to_wire,
    read_frame,
)
from repro.metadata.query import Query
from repro.telemetry.hub import TelemetryHub

#: Operations the flusher may coalesce into batch envelopes.
BATCHABLE_OPS = frozenset(
    {"ping", "register", "get", "query", "tag", "add_processing",
     "stat", "exists"})


class _PendingCall:
    """One submitted call waiting to be framed by the flusher."""

    __slots__ = ("op", "args", "future", "key")

    def __init__(self, op: str, args: dict, future: asyncio.Future,
                 key: tuple):
        self.op = op
        self.args = args
        self.future = future
        self.key = key


class _WireConnection:
    """One pooled TCP connection: id-keyed pending futures + reader task."""

    def __init__(self, client: "WireClient", index: int,
                 reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._client = client
        self.index = index
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self.closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name=f"wire-client-conn{index}")

    @property
    def in_flight(self) -> int:
        """Outstanding frames awaiting a response on this connection."""
        return len(self._pending)

    async def send(self, message: dict) -> asyncio.Future:
        """Frame and write one request; returns the response future."""
        if self.closed:
            raise WireClosedError("connection is closed")
        self._next_id += 1
        message_id = self._next_id
        message["id"] = message_id
        future = asyncio.get_running_loop().create_future()
        self._pending[message_id] = future
        frame = encode_frame(message)
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(message_id, None)
            self._fail_all(WireClosedError(f"connection lost: {exc}"))
            raise WireClosedError(f"connection lost: {exc}") from None
        self._client._m_bytes_written.add(len(frame))
        return future

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await read_frame(
                    self._reader, on_bytes=self._client._m_bytes_read.add)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is None or future.done():
                    continue  # stale id (failed send already resolved it)
                if message.get("ok"):
                    future.set_result(message.get("result"))
                else:
                    future.set_exception(error_from(
                        str(message.get("kind", "internal")),
                        str(message.get("error", "")),
                        message.get("reason")))
                self._client._freed.set()
        except (ConnectionError, OSError) as exc:
            self._fail_all(WireClosedError(f"connection lost: {exc}"))
        except Exception as exc:
            # Protocol violation: poison everything pending with the cause.
            self._fail_all(exc)
        finally:
            self.closed = True
            self._fail_all(WireClosedError("connection closed by server"))
            self._client._freed.set()

    def _fail_all(self, error: Exception) -> None:
        self.closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def close(self) -> None:
        """Close the socket and fail anything still pending."""
        self.closed = True
        self._writer.close()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass  # reader already failed all pending futures on the way out
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already gone; close still completed
        self._fail_all(WireClosedError("client closed"))


class WireClient:
    """Pooled async client for the wire ADAL service.

    Parameters
    ----------
    host, port:
        The :class:`~repro.adal.wire.server.WireServer` address.
    pool_size:
        Maximum concurrently open connections (opened lazily).
    max_in_flight:
        Outstanding frames allowed per connection (the pipelining bound).
    acquire_timeout:
        Seconds a caller waits for pool capacity before
        :class:`~repro.adal.wire.errors.PoolExhaustedError`.
    max_batch:
        Most ops the flusher coalesces into one batch envelope.
    batching:
        ``False`` disables coalescing entirely (the unbatched bench arm);
        every call goes out as its own frame.
    tenant, session, priority, budget:
        Per-call admission defaults stamped on every request envelope.
    telemetry:
        Optional shared :class:`~repro.telemetry.hub.TelemetryHub`; the
        default is a private hub on a relative wall clock.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        max_in_flight: int = 32,
        acquire_timeout: float = 5.0,
        max_batch: int = 64,
        batching: bool = True,
        tenant: Optional[str] = None,
        session: Optional[str] = None,
        priority: Optional[int] = None,
        budget: Optional[float] = None,
        telemetry: Optional[TelemetryHub] = None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_batch < 2:
            raise ValueError("max_batch must be >= 2")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_in_flight = max_in_flight
        self.acquire_timeout = acquire_timeout
        self.max_batch = max_batch
        self.batching = batching
        self.tenant = tenant
        self.session = session
        self.priority = priority
        self.budget = budget
        self._t0 = time.monotonic()
        self._clock = lambda: time.monotonic() - self._t0
        if telemetry is None:
            telemetry = TelemetryHub(clock=self._clock)
        self._hub = telemetry
        self._conns: list[_WireConnection] = []
        self._conn_seq = 0
        #: Slots reserved by acquirers currently awaiting a connect.
        self._opening = 0
        self._pending: list[_PendingCall] = []
        self._kick: Optional[asyncio.Event] = None
        self._freed: Optional[asyncio.Event] = None
        self._flusher_task: Optional[asyncio.Task] = None
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._build_instruments()

    def _build_instruments(self) -> None:
        reg = self._hub.registry
        self._m_requests = reg.counter(
            "wire.client_requests_total", "Calls submitted by the client")
        self._m_batches = reg.counter(
            "wire.client_batches_total", "Batch envelopes sent")
        self._h_batch_size = reg.histogram(
            "wire.client_batch_size",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            help="Ops coalesced per sent batch envelope")
        self._m_pool_reuse = reg.counter(
            "wire.pool_reuse_total", "Acquisitions served by an open connection")
        self._m_pool_opens = reg.counter(
            "wire.pool_opens_total", "New connections opened by the pool")
        self._m_pool_exhausted = reg.counter(
            "wire.pool_exhausted_total",
            "Acquisitions that timed out with the pool saturated")
        self._m_bytes_read = reg.counter(
            "wire.client_bytes_read_total", "Frame bytes read", unit="bytes")
        self._m_bytes_written = reg.counter(
            "wire.client_bytes_written_total", "Frame bytes written",
            unit="bytes")
        self._s_latency = reg.summary(
            "wire.client_latency_seconds",
            "Submit-to-response latency seen by callers", unit="s")

    # -- lifecycle -----------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._kick is None:
            self._kick = asyncio.Event()
            self._freed = asyncio.Event()
            self._flusher_task = asyncio.get_running_loop().create_task(
                self._flusher(), name="wire-client-flusher")

    async def close(self) -> None:
        """Fail pending work, stop the flusher, close every connection."""
        if self._closed:
            return
        self._closed = True
        if self._kick is not None:
            self._kick.set()
        if self._flusher_task is not None:
            self._flusher_task.cancel()
            try:
                await self._flusher_task
            except asyncio.CancelledError:
                pass  # cancellation is the expected shutdown path
        pending, self._pending = self._pending, []
        for call in pending:
            if not call.future.done():
                call.future.set_exception(WireClosedError("client closed"))
        for conn in self._conns:
            await conn.close()
        self._conns = []

    async def __aenter__(self) -> "WireClient":
        """Async-context entry (no I/O: connections open lazily)."""
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Async-context exit: :meth:`close`."""
        await self.close()

    # -- the pool ------------------------------------------------------------
    async def _acquire(self) -> _WireConnection:
        """A connection with spare in-flight capacity, or raise.

        Preference order: the least-loaded open connection below the
        in-flight bound (reuse), then a freshly opened one while the pool
        is below ``pool_size``, else wait for capacity until
        ``acquire_timeout`` and raise :class:`PoolExhaustedError`.
        """
        deadline = self._clock() + self.acquire_timeout
        while True:
            if self._closed:
                raise WireClosedError("client closed")
            self._conns = [c for c in self._conns if not c.closed]
            best: Optional[_WireConnection] = None
            for conn in self._conns:
                if conn.in_flight < self.max_in_flight and (
                        best is None or conn.in_flight < best.in_flight):
                    best = conn
            if best is not None:
                self._m_pool_reuse.add(1)
                return best
            if len(self._conns) + self._opening < self.pool_size:
                # Reserve the slot BEFORE awaiting the connect — concurrent
                # acquirers must see it taken or the pool bound is porous.
                self._opening += 1
                try:
                    reader, writer = await asyncio.open_connection(
                        self.host, self.port)
                finally:
                    self._opening -= 1
                    self._freed.set()  # wake waiters to re-examine the pool
                self._conn_seq += 1
                conn = _WireConnection(self, self._conn_seq, reader, writer)
                self._conns.append(conn)
                self._m_pool_opens.add(1)
                return conn
            remaining = deadline - self._clock()
            if remaining <= 0:
                self._m_pool_exhausted.add(1)
                raise PoolExhaustedError(
                    f"{len(self._conns)} connections at their "
                    f"{self.max_in_flight}-frame bound for "
                    f"{self.acquire_timeout:.3f}s")
            self._freed.clear()
            try:
                await asyncio.wait_for(self._freed.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                pass  # loop once more; the deadline check raises

    # -- submission ----------------------------------------------------------
    def _envelope_key(self, tenant, priority, budget, session) -> tuple:
        return (
            tenant if tenant is not None else self.tenant,
            priority if priority is not None else self.priority,
            budget if budget is not None else self.budget,
            session if session is not None else self.session,
        )

    def _stamp(self, message: dict, key: tuple) -> dict:
        tenant, priority, budget, session = key
        if tenant is not None:
            message["tenant"] = tenant
        if priority is not None:
            message["priority"] = priority
        if budget is not None:
            message["budget"] = budget
        if session is not None:
            message["session"] = session
        return message

    async def call(self, op: str, args: Optional[dict] = None, *,
                   tenant: Optional[str] = None,
                   priority: Optional[int] = None,
                   budget: Optional[float] = None,
                   session: Optional[str] = None,
                   batch: Optional[bool] = None) -> Any:
        """Submit one operation and await its result.

        Batchable ops ride the flusher (coalesced under concurrency)
        unless ``batch=False`` or client-wide batching is off; the result
        is the server's ``result`` payload, errors re-raise as their
        local exception types.
        """
        if self._closed:
            raise WireClosedError("client closed")
        self._ensure_started()
        self._m_requests.add(1)
        self._submitted += 1
        args = args or {}
        key = self._envelope_key(tenant, priority, budget, session)
        started = self._clock()
        batchable = (self.batching and op in BATCHABLE_OPS
                     and batch is not False)
        try:
            if batchable:
                future = asyncio.get_running_loop().create_future()
                self._pending.append(_PendingCall(op, args, future, key))
                self._kick.set()
            else:
                conn = await self._acquire()
                future = await conn.send(
                    self._stamp({"op": op, "args": args}, key))
            result = await future
        finally:
            # Every submission completes exactly once — with a result or an
            # exception — so the client-side balance sheet always closes.
            self._completed += 1
            self._s_latency.record(self._clock() - started)
        return result

    # -- the flusher ---------------------------------------------------------
    async def _flusher(self) -> None:
        """Drain pending calls into (batched) frames, forever."""
        while not self._closed:
            await self._kick.wait()
            self._kick.clear()
            while self._pending and not self._closed:
                await self._flush_group()

    async def _flush_group(self) -> None:
        """Frame and send one same-key group from the pending list."""
        key = self._pending[0].key
        group: list[_PendingCall] = []
        rest: list[_PendingCall] = []
        for call in self._pending:
            if call.key == key and len(group) < self.max_batch:
                group.append(call)
            else:
                rest.append(call)
        self._pending = rest
        try:
            conn = await self._acquire()
        except Exception as exc:
            for call in group:
                if not call.future.done():
                    call.future.set_exception(exc)
            return
        try:
            if len(group) == 1:
                call = group[0]
                inner = await conn.send(
                    self._stamp({"op": call.op, "args": call.args}, key))
                self._chain(inner, call.future)
            else:
                self._m_batches.add(1)
                self._h_batch_size.observe(float(len(group)))
                inner = await conn.send(self._stamp(
                    {"op": "batch",
                     "args": {"ops": [{"op": c.op, "args": c.args}
                                      for c in group]}}, key))
                inner.add_done_callback(
                    lambda fut, calls=tuple(group):
                    self._distribute(fut, calls))
        except Exception as exc:
            for call in group:
                if not call.future.done():
                    call.future.set_exception(exc)

    @staticmethod
    def _chain(inner: asyncio.Future, outer: asyncio.Future) -> None:
        """Propagate a frame future's outcome to a caller future."""
        def _copy(fut: asyncio.Future) -> None:
            if outer.done():
                return
            exc = fut.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(fut.result())
        inner.add_done_callback(_copy)

    def _distribute(self, batch_future: asyncio.Future,
                    calls: tuple[_PendingCall, ...]) -> None:
        """Fan a batch envelope's per-op results out to caller futures."""
        exc = (batch_future.exception()
               if not batch_future.cancelled() else
               WireClosedError("batch cancelled"))
        if exc is not None:
            for call in calls:
                if not call.future.done():
                    call.future.set_exception(exc)
            return
        results = batch_future.result()
        if not isinstance(results, list) or len(results) != len(calls):
            error = WireClosedError(
                "malformed batch response (op/result count mismatch)")
            for call in calls:
                if not call.future.done():
                    call.future.set_exception(error)
            return
        for call, sub in zip(calls, results):
            if call.future.done():
                continue
            if isinstance(sub, dict) and sub.get("ok"):
                call.future.set_result(sub.get("result"))
            elif isinstance(sub, dict):
                call.future.set_exception(error_from(
                    str(sub.get("kind", "internal")),
                    str(sub.get("error", "")), sub.get("reason")))
            else:
                call.future.set_exception(
                    WireClosedError("malformed batch sub-result"))

    # -- convenience ops -----------------------------------------------------
    async def ping(self, **opts) -> dict:
        """Round-trip liveness check."""
        return await self.call("ping", {}, **opts)

    async def auth(self, subject: str, token: str,
                   ttl: float = 3600.0,
                   tenant: Optional[str] = None) -> str:
        """Exchange credentials for a session and adopt it as default."""
        args: dict = {"subject": subject, "token": token, "ttl": ttl}
        if tenant is not None:
            args["tenant"] = tenant
        result = await self.call("auth", args, batch=False)
        self.session = result["session"]
        if tenant is not None:
            self.tenant = tenant
        return self.session

    async def register(self, dataset_id: str, project: str, url: str,
                       size: int, checksum: str, basic: dict,
                       created: float = 0.0, tags: tuple = (),
                       **opts) -> dict:
        """Register one dataset (write-once)."""
        return await self.call("register", {
            "dataset_id": dataset_id, "project": project, "url": url,
            "size": size, "checksum": checksum, "basic": basic,
            "created": created, "tags": list(tags)}, **opts)

    async def get(self, dataset_id: str, **opts) -> dict:
        """Fetch one dataset record as a plain dict."""
        return await self.call("get", {"dataset_id": dataset_id}, **opts)

    async def query(self, q: Query, limit: Optional[int] = None,
                    ids_only: bool = False, **opts) -> dict:
        """Run a metadata query server-side."""
        args: dict = {"q": query_to_wire(q), "ids_only": ids_only}
        if limit is not None:
            args["limit"] = limit
        return await self.call("query", args, **opts)

    async def tag(self, dataset_id: str, *tags: str, **opts) -> dict:
        """Add tags to a dataset."""
        return await self.call(
            "tag", {"dataset_id": dataset_id, "tags": list(tags)}, **opts)

    async def add_processing(self, dataset_id: str, name: str,
                             params: dict, results: dict,
                             started: float = 0.0, finished: float = 0.0,
                             status: str = "success",
                             parent: Optional[str] = None, **opts) -> dict:
        """Append one processing step to a dataset's chain."""
        return await self.call("add_processing", {
            "dataset_id": dataset_id, "name": name, "params": params,
            "results": results, "started": started, "finished": finished,
            "status": status, "parent": parent}, **opts)

    async def stat(self, url: str, **opts) -> dict:
        """Stat an object through the server's ADAL."""
        return await self.call("stat", {"url": url}, **opts)

    async def exists(self, url: str, **opts) -> bool:
        """Whether an object exists through the server's ADAL."""
        result = await self.call("exists", {"url": url}, **opts)
        return bool(result["exists"])

    # -- accounting ----------------------------------------------------------
    def accounting(self) -> dict:
        """Client-side zero-silent-loss balance: every call completes."""
        outstanding = self._submitted - self._completed
        return {
            "submitted": self._submitted,
            "completed": self._completed,
            "outstanding": outstanding,
        }

    @property
    def open_connections(self) -> int:
        """Currently open pooled connections."""
        return sum(1 for c in self._conns if not c.closed)

    @property
    def telemetry(self) -> TelemetryHub:
        """The hub carrying every client-side ``wire.*`` metric."""
        return self._hub

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<WireClient {self.host}:{self.port} "
                f"conns={self.open_connections}/{self.pool_size} "
                f"batching={self.batching}>")
