"""Exception types of the wire ADAL service and its pooled client.

The wire layer re-uses the ADAL exception hierarchy wherever a wire
failure has the same meaning as an in-process one (an object miss is an
:class:`~repro.adal.errors.ObjectNotFoundError` whether it travelled over
a socket or not).  The types below cover the failure modes only a real
network service has: protocol violations, admission rejections, and an
exhausted client connection pool.

:class:`PoolExhaustedError` deliberately subclasses
:class:`~repro.adal.errors.BackendUnavailableError`: an
:class:`~repro.adal.api.AdalClient` configured with a retry policy treats
a momentarily-full pool exactly like any other transient backend fault
and retries with backoff (covered by ``tests/adal/test_wire_client.py``).
"""

from __future__ import annotations

from repro.adal.errors import AdalError, BackendUnavailableError


class WireError(AdalError):
    """Base class for wire-service errors."""


class WireProtocolError(WireError):
    """Malformed frame or message (bad length prefix, non-JSON payload,
    missing required fields, oversized frame)."""


class WireClosedError(WireError):
    """The connection or client was closed while a request was in flight."""


class RequestRejectedError(WireError):
    """The service refused the request at admission.

    ``reason`` is one of the server's reject reasons (``rate_limited``,
    ``queue_full``, ``shed``, ``brownout``) — the caller must not retry
    blindly; that is the retry-storm failure mode the front door contains.
    """

    def __init__(self, message: str, reason: str = "rejected"):
        super().__init__(message)
        self.reason = reason


class PoolExhaustedError(BackendUnavailableError, WireError):
    """Every pooled connection is at its in-flight bound and the acquire
    timeout elapsed before capacity freed up.

    Transient by construction (in-flight requests complete and release
    capacity), hence a :class:`BackendUnavailableError` subclass: retry
    policies treat it like any other recoverable backend fault.
    """
