"""``repro.adal.wire`` — the facility's real front door over TCP.

The paper's ADAL is a *served* API: experiment DAQs and remote clients
reach it over the network, not in-process.  This package is that wire
half: an asyncio service (:class:`~repro.adal.wire.server.WireServer`)
speaking a length-prefixed JSON protocol, reusing the
:mod:`repro.frontdoor` admission machinery on the wall clock, and a
pooled, pipelining, auto-batching client
(:class:`~repro.adal.wire.client.WireClient`).

Determinism boundary: this package (alone, with its bench) runs on the
wall clock and real sockets; everything it fronts — metadata store, WAL,
ADAL backends — is the same synchronous code the deterministic simulated
facility uses.  Nothing here leaks host time back into simkit.
"""

from repro.adal.wire.bench import build_bench_store, run_wire_bench
from repro.adal.wire.client import BATCHABLE_OPS, WireClient
from repro.adal.wire.errors import (
    PoolExhaustedError,
    RequestRejectedError,
    WireClosedError,
    WireError,
    WireProtocolError,
)
from repro.adal.wire.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    encode_frame,
    error_envelope,
    error_from,
    error_kind,
    query_from_wire,
    query_to_wire,
    raise_for_error,
    read_frame,
    write_frame,
)
from repro.adal.wire.server import WireRequest, WireServer

__all__ = [
    "BATCHABLE_OPS",
    "MAX_FRAME_BYTES",
    "OPS",
    "PoolExhaustedError",
    "RequestRejectedError",
    "WireClient",
    "WireClosedError",
    "WireError",
    "WireProtocolError",
    "WireRequest",
    "WireServer",
    "build_bench_store",
    "encode_frame",
    "error_envelope",
    "error_from",
    "error_kind",
    "query_from_wire",
    "query_to_wire",
    "raise_for_error",
    "read_frame",
    "run_wire_bench",
    "write_frame",
]
