"""The E19 wire-bench harness: client-count scaling, batched vs unbatched.

:func:`run_wire_bench` stands up a real :class:`WireServer` on an
ephemeral localhost port, drives it closed-loop with ``clients`` logical
client tasks sharing one pooled :class:`WireClient`, and returns the
headline numbers: sustained requests/s, latency percentiles, batch
coalescing stats, the server's zero-silent-loss balance and a leaked-task
count.  The same harness backs the E19 benchmark, the ``repro wire``
CLI subcommand and the CI ``wire-smoke`` job, so every consumer measures
the exact same thing.

The op mix is deterministic — pure index arithmetic, no RNG, no
wall-clock seeding — so two runs issue identical operation sequences and
arms differ only in the knob under test (client count, batching).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.adal.wire.client import WireClient
from repro.adal.wire.server import WireServer
from repro.metadata.query import Q
from repro.metadata.schema import FieldSpec, Schema
from repro.metadata.store import MetadataStore

#: Op-mix weights out of 10: six gets, two queries, one register, one tag.
_GET, _QUERY, _REGISTER, _TAG = 6, 2, 1, 1


def build_bench_store(prepopulate: int = 512) -> MetadataStore:
    """A metadata store with the bench project and ``prepopulate`` records.

    The ``run`` field is registered as an (ordered) secondary index so the
    bench's server-side queries take the pruned path, as a production
    deployment's would.
    """
    store = MetadataStore()
    store.register_project("bench", Schema("bench", [
        FieldSpec("run", "int", required=True),
        FieldSpec("detector", "str", required=True),
    ]))
    store.index_field("run")
    for i in range(prepopulate):
        store.register_dataset(
            f"ds-{i:06d}", "bench", f"adal://disk/bench/ds-{i:06d}",
            size=1024 + i, checksum=f"crc-{i:08x}",
            basic={"run": i % 64, "detector": f"det{i % 4}"},
            created=float(i), tags=(f"shard{i % 8}",))
    return store


async def _client_task(client: WireClient, index: int, n_ops: int,
                       prepopulate: int, errors: dict) -> int:
    """One closed-loop logical client; returns its ok-response count."""
    ok = 0
    for j in range(n_ops):
        k = (index * 1000003 + j * 7919) % (_GET + _QUERY + _REGISTER + _TAG)
        target = (index * 271 + j * 131) % prepopulate
        try:
            if k < _GET:
                await client.get(f"ds-{target:06d}")
            elif k < _GET + _QUERY:
                await client.query(Q.field("run") == (target % 64),
                                   limit=10, ids_only=True)
            elif k < _GET + _QUERY + _REGISTER:
                await client.register(
                    f"new-{index:04d}-{j:06d}", "bench",
                    f"adal://disk/bench/new-{index:04d}-{j:06d}",
                    size=2048, checksum=f"crc-n{index:04x}{j:06x}",
                    basic={"run": 64 + (j % 16), "detector": "det0"})
            else:
                await client.tag(f"ds-{target:06d}", f"seen{index % 4}")
            ok += 1
        except Exception as exc:
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
    return ok


async def _run(clients: int, ops_per_client: int, batching: bool,
               pool_size: int, max_in_flight: int, workers: int,
               prepopulate: int, budget: float,
               store: Optional[MetadataStore]) -> dict:
    baseline = set(asyncio.all_tasks())
    if store is None:
        store = build_bench_store(prepopulate)
    server = WireServer(store, workers=workers,
                        deadlines=(budget, budget, budget))
    await server.start()
    client = WireClient("127.0.0.1", server.port, pool_size=pool_size,
                        max_in_flight=max_in_flight, batching=batching,
                        budget=budget)
    errors: dict[str, int] = {}
    started = time.monotonic()
    ok_counts = await asyncio.gather(*[
        _client_task(client, i, ops_per_client, prepopulate, errors)
        for i in range(clients)
    ])
    elapsed = time.monotonic() - started
    ok = sum(ok_counts)
    total = clients * ops_per_client
    latency = client.telemetry.registry.series("wire.client_latency_seconds")
    reg = client.telemetry.registry
    result = {
        "clients": clients,
        "ops_per_client": ops_per_client,
        "batching": batching,
        "ops_total": total,
        "ops_ok": ok,
        "errors": dict(sorted(errors.items())),
        "elapsed_s": elapsed,
        "throughput_rps": total / elapsed if elapsed > 0 else 0.0,
        "goodput_rps": ok / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": latency.percentile(50),
        "latency_p95_s": latency.percentile(95),
        "latency_p99_s": latency.percentile(99),
        "client_batches": int(reg.total("wire.client_batches_total")),
        "mean_batch_size": reg.series("wire.client_batch_size").mean,
        "pool_reuse": int(reg.total("wire.pool_reuse_total")),
        "pool_opens": int(reg.total("wire.pool_opens_total")),
        "client_accounting": client.accounting(),
        "server": server.stats(),
        "server_accounting": server.accounting(),
    }
    await client.close()
    await server.stop()
    # Give transports one loop turn to finish their close callbacks before
    # counting stragglers.
    await asyncio.sleep(0)
    leaked = [t for t in asyncio.all_tasks()
              if t not in baseline and not t.done()]
    result["leaked_tasks"] = len(leaked)
    result["open_connections_after_close"] = client.open_connections
    return result


def run_wire_bench(
    clients: int = 8,
    ops_per_client: int = 50,
    batching: bool = True,
    pool_size: int = 8,
    max_in_flight: int = 64,
    workers: int = 4,
    prepopulate: int = 512,
    budget: float = 5.0,
    store: Optional[MetadataStore] = None,
) -> dict:
    """Run one wire-bench arm end to end and return its result row.

    Starts a private event loop, so it is callable from synchronous bench
    and CI code.  ``store`` overrides the default in-memory bench store
    (pass a :class:`~repro.durability.durable.DurableMetadataStore` to
    exercise the WAL group-commit fast path under wire batching).
    """
    if clients < 1 or ops_per_client < 1:
        raise ValueError("clients and ops_per_client must be >= 1")
    return asyncio.run(_run(
        clients=clients, ops_per_client=ops_per_client, batching=batching,
        pool_size=pool_size, max_in_flight=max_in_flight, workers=workers,
        prepopulate=prepopulate, budget=budget, store=store))
