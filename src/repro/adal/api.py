"""The ADAL core API: URLs, the backend ABC, the registry and the client.

Every LSDF tool addresses data with ``adal://<store>/<path>`` URLs.  The
:class:`BackendRegistry` maps store names to :class:`StorageBackend`
instances; an :class:`AdalClient` binds a registry to an authenticated
principal and mediates every operation (authorisation, checksumming,
auditing) — the "low-level interface to LSDF" of slide 9.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.adal.auth import AuthContext, AclAuthorizer, AuthProvider, Credentials
from repro.adal.errors import (
    AdalError,
    BackendNotFoundError,
    BackendUnavailableError,
    ChecksumMismatchError,
    ObjectNotFoundError,
)
from repro.resilience.policy import RetryPolicy
from repro.simkit.rand import RandomSource

SCHEME = "adal"


def checksum_bytes(data: bytes) -> str:
    """The facility-wide content checksum (sha256, hex)."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class AdalUrl:
    """A parsed ``adal://store/path`` URL."""

    store: str
    path: str

    @classmethod
    def parse(cls, url: str) -> "AdalUrl":
        """Parse and normalise an ADAL URL string."""
        prefix = f"{SCHEME}://"
        if not url.startswith(prefix):
            raise AdalError(f"not an ADAL URL: {url!r}")
        rest = url[len(prefix):]
        if "/" not in rest:
            store, path = rest, ""
        else:
            store, path = rest.split("/", 1)
        if not store:
            raise AdalError(f"ADAL URL missing store name: {url!r}")
        return cls(store, path.lstrip("/"))

    def __str__(self) -> str:
        return f"{SCHEME}://{self.store}/{self.path}"


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata of a stored object, as reported by a backend."""

    url: str
    size: int
    checksum: str
    created: float = 0.0
    extra: tuple = ()

    @property
    def name(self) -> str:
        """Last path component."""
        return self.url.rsplit("/", 1)[-1]


class StorageBackend:
    """The backend extension point.

    Implementations provide whole-object semantics (the facility's data is
    write-once/read-many): ``put`` stores bytes under a path, ``get`` reads
    them back, plus ``stat``/``listdir``/``delete``/``exists``.  Paths are
    ``/``-separated and relative to the store root.
    """

    #: Human-readable backend kind, e.g. "posix", "hdfs-sim".
    kind = "abstract"

    def put(self, path: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        """Store ``data`` at ``path``; raise ObjectExistsError unless
        ``overwrite`` on an existing path."""
        raise NotImplementedError

    def get(self, path: str) -> bytes:
        """Read the full object."""
        raise NotImplementedError

    def stat(self, path: str) -> ObjectInfo:
        """Object metadata; raises :class:`ObjectNotFoundError`."""
        raise NotImplementedError

    def listdir(self, prefix: str = "") -> list[ObjectInfo]:
        """All objects whose path starts with ``prefix``, sorted by path."""
        raise NotImplementedError

    def delete(self, path: str) -> None:
        """Remove an object; raises :class:`ObjectNotFoundError`."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        """Whether an object exists at ``path``."""
        try:
            self.stat(path)
            return True
        except ObjectNotFoundError:
            return False


class BackendRegistry:
    """Maps store names (URL authority) to backend instances."""

    def __init__(self) -> None:
        self._stores: dict[str, StorageBackend] = {}

    def register(self, store: str, backend: StorageBackend) -> None:
        """Mount a backend under a store name."""
        if store in self._stores:
            raise AdalError(f"store {store!r} already registered")
        self._stores[store] = backend

    def unregister(self, store: str) -> None:
        """Unmount a store (idempotent)."""
        self._stores.pop(store, None)

    def resolve(self, store: str) -> StorageBackend:
        """Backend for a store name; raises :class:`BackendNotFoundError`."""
        try:
            return self._stores[store]
        except KeyError:
            raise BackendNotFoundError(store) from None

    @property
    def stores(self) -> list[str]:
        """Registered store names, sorted."""
        return sorted(self._stores)


class AdalClient:
    """The unified access layer bound to an authenticated principal.

    Parameters
    ----------
    registry:
        Store-name to backend mapping.
    auth_provider:
        Authentication mechanism (default: anonymous).
    credentials:
        Credentials to authenticate with.
    authorizer:
        Optional ACL set; when given, every operation is permission-checked
        against the full ADAL URL and recorded in the audit log.
    retry_policy:
        Optional :class:`~repro.resilience.policy.RetryPolicy`; when given,
        transient :class:`~repro.adal.errors.BackendUnavailableError`\\ s are
        retried (the glue layer runs in zero simulated time, so the backoff
        is accounting-only) and only surface once the policy is exhausted.
    retry_rng:
        Seeded random stream for retry jitter accounting (optional).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryHub` to publish counters
        on (the facility passes its own); standalone clients fall back to a
        private unclocked hub so the API works without a simulator.
    """

    def __init__(
        self,
        registry: BackendRegistry,
        auth_provider: Optional[AuthProvider] = None,
        credentials: Optional[Credentials] = None,
        authorizer: Optional[AclAuthorizer] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[RandomSource] = None,
        telemetry=None,
    ):
        from repro.adal.auth import AnonymousAuth  # avoid import cycle at module load

        provider = auth_provider or AnonymousAuth()
        principal = provider.authenticate(credentials or Credentials("anonymous"))
        self.registry = registry
        self.auth = AuthContext(principal=principal, authorizer=authorizer)
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng
        if telemetry is None:
            from repro.telemetry.hub import TelemetryHub

            telemetry = TelemetryHub()
        self.telemetry = telemetry
        self._retries = telemetry.registry.counter(
            "adal.retries_total",
            "Transient-fault retries performed on behalf of callers")

    @property
    def retries(self) -> int:
        """Transient-fault retries performed on behalf of callers."""
        return int(self._retries.value)

    # -- helpers ------------------------------------------------------------
    def _split(self, url: str) -> tuple[StorageBackend, AdalUrl]:
        parsed = AdalUrl.parse(url)
        return self.registry.resolve(parsed.store), parsed

    def _attempt(self, label: str, fn: Callable):
        """Run one backend call under the client's retry policy (if any)."""
        if self.retry_policy is None:
            return fn()

        def note(_attempt: int, _exc: BaseException, _backoff: float) -> None:
            self._retries.add(1)

        return self.retry_policy.run_sync(
            fn, retry_on=(BackendUnavailableError,), rng=self._retry_rng,
            on_retry=note, label=label,
        )

    # -- operations -----------------------------------------------------------
    def put(self, url: str, data: bytes, overwrite: bool = False) -> ObjectInfo:
        """Store an object (write permission)."""
        backend, parsed = self._split(url)
        self.auth.check(url, "write")
        info = self._attempt(
            f"put {url}", lambda: backend.put(parsed.path, data, overwrite=overwrite)
        )
        return ObjectInfo(url=str(parsed), size=info.size, checksum=info.checksum,
                          created=info.created, extra=info.extra)

    def get(self, url: str, verify: bool = False) -> bytes:
        """Read an object (read permission); optionally verify its checksum."""
        backend, parsed = self._split(url)
        self.auth.check(url, "read")
        data = self._attempt(f"get {url}", lambda: backend.get(parsed.path))
        if verify:
            stored = self._attempt(
                f"stat {url}", lambda: backend.stat(parsed.path)
            ).checksum
            actual = checksum_bytes(data)
            if stored != actual:
                raise ChecksumMismatchError(
                    f"{url}: stored {stored[:12]}… != read {actual[:12]}…"
                )
        return data

    def stat(self, url: str) -> ObjectInfo:
        """Object metadata (read permission)."""
        backend, parsed = self._split(url)
        self.auth.check(url, "read")
        info = self._attempt(f"stat {url}", lambda: backend.stat(parsed.path))
        return ObjectInfo(url=str(parsed), size=info.size, checksum=info.checksum,
                          created=info.created, extra=info.extra)

    def listdir(self, url: str) -> list[ObjectInfo]:
        """Objects under a URL prefix (read permission)."""
        backend, parsed = self._split(url)
        self.auth.check(url, "read")
        out = []
        for info in self._attempt(f"listdir {url}",
                                  lambda: backend.listdir(parsed.path)):
            out.append(
                ObjectInfo(
                    url=f"{SCHEME}://{parsed.store}/{info.url}",
                    size=info.size,
                    checksum=info.checksum,
                    created=info.created,
                    extra=info.extra,
                )
            )
        return out

    def delete(self, url: str) -> None:
        """Remove an object (delete permission)."""
        backend, parsed = self._split(url)
        self.auth.check(url, "delete")
        self._attempt(f"delete {url}", lambda: backend.delete(parsed.path))

    def exists(self, url: str) -> bool:
        """Existence check (read permission)."""
        backend, parsed = self._split(url)
        self.auth.check(url, "read")
        return self._attempt(f"exists {url}", lambda: backend.exists(parsed.path))

    def copy(self, src_url: str, dst_url: str, overwrite: bool = False) -> ObjectInfo:
        """Copy between any two stores (read on src, write on dst)."""
        data = self.get(src_url)
        return self.put(dst_url, data, overwrite=overwrite)

    def checksum(self, url: str) -> str:
        """Stored checksum of an object (read permission)."""
        return self.stat(url).checksum
