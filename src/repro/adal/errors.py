"""Exception types of the Abstract Data Access Layer."""

from __future__ import annotations


class AdalError(Exception):
    """Base class for ADAL errors."""


class BackendNotFoundError(AdalError, KeyError):
    """No backend registered for the URL's store name."""


class ObjectNotFoundError(AdalError, FileNotFoundError):
    """The referenced object does not exist in the backend."""


class ObjectExistsError(AdalError, FileExistsError):
    """Write-once violation: the object already exists."""


class AuthError(AdalError):
    """Authentication failed (unknown principal, bad token)."""


class PermissionDeniedError(AdalError, PermissionError):
    """Authenticated principal lacks the required permission."""


class ChecksumMismatchError(AdalError):
    """Stored checksum does not match the data read back."""


class BackendUnavailableError(AdalError):
    """Transient backend failure (network blip, brown-out, flaky service).

    Raised by :class:`~repro.adal.backends.faulty.FaultyBackend` and by real
    backends on recoverable faults; the :class:`~repro.adal.api.AdalClient`
    retries it when configured with a retry policy."""
