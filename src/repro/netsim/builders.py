"""Topology builders.

:func:`build_lsdf_backbone` reproduces the network figure on slide 7 of the
paper: a dedicated 10 GE backbone with two redundant routers connecting the
experiment DAQs, the two storage systems (DDN and IBM) with the tape library
behind them, the 60-node Hadoop/cloud cluster, the login headnodes, the KIT
campus network / internet gateway, and the access-firewalled link to the
University of Heidelberg.

Load is spread across the two routers by biasing path latencies, so under
normal operation both carry traffic, and when one fails every route falls
over to the survivor (exercised by experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simkit import units
from repro.netsim.topology import Topology


@dataclass
class LsdfNames:
    """Well-known node names of the LSDF backbone topology."""

    routers: list[str] = field(default_factory=list)
    storage: list[str] = field(default_factory=list)
    tape: str = "tape-library"
    daq: list[str] = field(default_factory=list)
    cluster: list[str] = field(default_factory=list)
    login: str = "login-headnode"
    heidelberg: str = "uni-heidelberg"
    kit_lan: str = "kit-lan"
    internet: str = "internet-gw"
    cluster_switch: str = "sw-cluster"
    daq_switch: str = "sw-daq"
    storage_switch: str = "sw-storage"


def build_lsdf_backbone(
    daq_count: int = 4,
    cluster_nodes: int = 60,
    trunk_gbits: float = 10.0,
    node_gbits: float = 1.0,
    storage_gbits: float = 10.0,
    wan_gbits: float = 10.0,
) -> tuple[Topology, LsdfNames]:
    """Build the canonical LSDF-2011 backbone.

    Parameters mirror the paper's figures: 10 GE trunks, a 60-node analysis
    cluster on commodity 1 GE NICs, 10 GE attachments for the DDN and IBM
    storage systems, and a 10 GE WAN path to Heidelberg through the access
    firewall.

    Returns the topology plus an :class:`LsdfNames` record of node names.
    """
    if daq_count < 1 or cluster_nodes < 0:
        raise ValueError("need at least one DAQ host (cluster_nodes may be 0)")
    topo = Topology()
    names = LsdfNames()
    trunk = units.gbit_per_s(trunk_gbits)
    node_bw = units.gbit_per_s(node_gbits)
    storage_bw = units.gbit_per_s(storage_gbits)
    wan = units.gbit_per_s(wan_gbits)

    # Redundant core routers, interconnected.
    names.routers = ["router-1", "router-2"]
    for router in names.routers:
        topo.add_node(router, kind="router")
    topo.add_link("router-1", "router-2", capacity=trunk, latency=0.0001)

    # Aggregation switches; each connects to both routers.  Latency biases
    # steer half the switches through router-1 and half through router-2 so
    # both carry load under normal operation.
    switches = [names.storage_switch, names.cluster_switch, names.daq_switch]
    for i, switch in enumerate(switches):
        topo.add_node(switch, kind="switch")
        near = names.routers[i % 2]
        far = names.routers[(i + 1) % 2]
        topo.add_link(switch, near, capacity=trunk, latency=0.0001)
        topo.add_link(switch, far, capacity=trunk, latency=0.0002)

    # Storage systems (slide 7: DDN 0.5 PB + IBM 1.4 PB) and the tape
    # library behind the storage switch.
    names.storage = ["store-ddn", "store-ibm"]
    for store in names.storage:
        topo.add_node(store, kind="storage")
        topo.add_link(store, names.storage_switch, capacity=storage_bw, latency=0.0001)
    topo.add_node(names.tape, kind="tape")
    topo.add_link(names.tape, names.storage_switch, capacity=storage_bw / 2, latency=0.0001)

    # Experiment data acquisition hosts.
    names.daq = [f"daq-{i:02d}" for i in range(daq_count)]
    for host in names.daq:
        topo.add_node(host, kind="daq")
        topo.add_link(host, names.daq_switch, capacity=storage_bw, latency=0.0002)

    # Hadoop / cloud cluster on commodity 1 GE NICs.
    names.cluster = [f"node-{i:03d}" for i in range(cluster_nodes)]
    for host in names.cluster:
        topo.add_node(host, kind="compute")
        topo.add_link(host, names.cluster_switch, capacity=node_bw, latency=0.0002)
    topo.add_node(names.login, kind="login")
    topo.add_link(names.login, names.cluster_switch, capacity=trunk, latency=0.0001)

    # External connectivity: KIT LAN / internet and the Heidelberg WAN path
    # through the access firewall.
    topo.add_node(names.kit_lan, kind="external")
    topo.add_link(names.kit_lan, "router-1", capacity=trunk, latency=0.0005)
    topo.add_link(names.kit_lan, "router-2", capacity=trunk, latency=0.0006)
    topo.add_node(names.internet, kind="external")
    topo.add_link(names.internet, names.kit_lan, capacity=wan, latency=0.002)
    topo.add_node("access-firewall", kind="firewall")
    topo.add_link("access-firewall", "router-2", capacity=wan, latency=0.0005)
    topo.add_link("access-firewall", "router-1", capacity=wan, latency=0.0006)
    topo.add_node(names.heidelberg, kind="external")
    topo.add_link(names.heidelberg, "access-firewall", capacity=wan, latency=0.004)

    return topo, names


def build_star(
    center: str, leaves: list[str], capacity: float, latency: float = 0.0005
) -> Topology:
    """A star topology: every leaf connected to ``center``."""
    topo = Topology()
    topo.add_node(center, kind="switch")
    for leaf in leaves:
        topo.add_link(leaf, center, capacity=capacity, latency=latency)
    return topo


def build_fat_tree(
    racks: int,
    hosts_per_rack: int,
    host_bw: float,
    rack_uplink_bw: float,
    core_bw: float | None = None,
) -> tuple[Topology, list[list[str]]]:
    """A two-level rack/core tree, the shape of the Hadoop cluster network.

    Returns the topology and the host names grouped per rack (used by the
    HDFS simulator for rack-aware placement).
    """
    if racks < 1 or hosts_per_rack < 1:
        raise ValueError("racks and hosts_per_rack must be >= 1")
    topo = Topology()
    topo.add_node("core", kind="switch")
    rack_hosts: list[list[str]] = []
    for r in range(racks):
        rack_switch = f"rack-{r:02d}"
        topo.add_node(rack_switch, kind="switch")
        topo.add_link(rack_switch, "core", capacity=rack_uplink_bw, latency=0.0001)
        hosts = []
        for h in range(hosts_per_rack):
            host = f"r{r:02d}h{h:02d}"
            topo.add_link(host, rack_switch, capacity=host_bw, latency=0.0001)
            hosts.append(host)
        rack_hosts.append(hosts)
    return topo, rack_hosts
