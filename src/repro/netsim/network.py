"""The fluid flow engine.

A :class:`Network` turns ``transfer(src, dst, nbytes)`` calls into
:class:`Flow` objects that share link bandwidth according to the configured
sharing model (max-min fair by default).  Whenever the flow set or the
topology changes, rates are recomputed and the next flow completion is
rescheduled — the classic event-driven fluid simulation.

The default ``incremental`` engine keeps the solver inputs — the
``flow -> link keys`` map, the ``link -> capacity`` map and the per-flow
weights — as persistent structures maintained as flows arrive and leave,
instead of rebuilding them on every event.  Rate solves triggered by
same-instant arrivals are additionally *batched*: N transfers starting at
one simulation time trigger one deferred solve, not N, and a solve is
skipped entirely when nothing about the flow set changed (e.g. a topology
epoch bump whose reroute produced identical paths).  The ``reference``
engine retains the seed repo's naive rebuild-everything-per-event path and
is used by the differential tests to prove the incremental engine produces
identical completion times (``tests/netsim/test_differential.py``).

Failures: when a router/link on a flow's path fails, the flow is rerouted
over the surviving topology (this is how the paper's redundant routers are
exercised); if no route remains, the flow's completion event *fails* with
:class:`NoRouteError`, which the initiating process may catch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simkit.core import Simulator
from repro.simkit.events import LOW, Event
from repro.simkit.monitor import TimeWeighted
from repro.telemetry.hub import TelemetryHub
from repro.netsim.fairshare import (
    HAVE_NUMPY,
    _reference_equal_split_rates,
    _reference_maxmin_rates,
    equal_split_rates,
    maxmin_rates,
    vectorized_maxmin_rates,
)
from repro.netsim.topology import Link, NoRouteError, Topology

_COMPLETE_EPS_BYTES = 1e-3

SHARING_MODELS: dict[str, Callable] = {
    "maxmin": maxmin_rates,
    "equal": equal_split_rates,
}

#: Naive twins of :data:`SHARING_MODELS`, used by the ``reference`` engine.
_REFERENCE_SHARING_MODELS: dict[str, Callable] = {
    "maxmin": _reference_maxmin_rates,
    "equal": _reference_equal_split_rates,
}

ENGINES = ("incremental", "reference")


class NetworkError(Exception):
    """Generic network-level failure."""


@dataclass
class TransferResult:
    """Outcome of a completed transfer, the value of the flow's done event."""

    src: str
    dst: str
    nbytes: float
    started: float
    finished: float
    reroutes: int = 0

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) seconds from start to completion."""
        return self.finished - self.started

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in bytes/s."""
        return self.nbytes / self.duration if self.duration > 0 else float("inf")


@dataclass
class Flow:
    """An in-flight transfer."""

    fid: int
    src: str
    dst: str
    nbytes: float
    remaining: float
    links: list[Link]
    done: Event
    weight: float = 1.0
    rate: float = 0.0
    started: float = 0.0
    reroutes: int = 0
    name: Optional[str] = None
    tags: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Flow #{self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.3g}/{self.nbytes:.3g}B @{self.rate:.3g}B/s>"
        )


class Network:
    """Event-driven fluid network over a :class:`Topology`.

    Parameters
    ----------
    sim:
        The simulator.
    topology:
        Node/link graph; may be mutated (failures) during the run, but call
        :meth:`notify_topology_changed` afterwards so in-flight flows react.
    sharing:
        ``"maxmin"`` (default) or ``"equal"`` — see
        :mod:`repro.netsim.fairshare`.
    efficiency:
        Fraction of nominal link capacity actually usable by payload
        (protocol overhead, TCP dynamics).  The paper's "15 days for 1 PB
        over an *ideal* 10 Gb/s link" corresponds to ``efficiency < 1``;
        E6 sweeps this.
    engine:
        ``"incremental"`` (default) maintains solver inputs persistently,
        batches same-instant solves and skips no-op solves;
        ``"reference"`` is the retained naive rebuild-per-event path used
        as the differential-testing oracle.
    vector_threshold:
        Flow-count at which the incremental max-min engine switches to
        the numpy-vectorised solver (bit-identical results, lower python
        overhead on large flow sets).  ``None`` disables the vectorised
        path; ignored for the ``equal`` model, the ``reference`` engine
        and when numpy is not installed.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        sharing: str = "maxmin",
        efficiency: float = 1.0,
        engine: str = "incremental",
        vector_threshold: int | None = 32,
    ):
        if sharing not in SHARING_MODELS:
            raise ValueError(f"unknown sharing model {sharing!r}")
        if not (0.0 < efficiency <= 1.0):
            raise ValueError("efficiency must be in (0, 1]")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (want one of {ENGINES})")
        self.sim = sim
        self.topology = topology
        self.sharing = sharing
        self.efficiency = efficiency
        self.engine = engine
        if engine == "reference":
            self._share_fn = _REFERENCE_SHARING_MODELS[sharing]
        else:
            self._share_fn = SHARING_MODELS[sharing]
        #: Flow count from which the incremental max-min engine solves on
        #: the dense vectorised path (None / no numpy / "equal" = never).
        self._vector_threshold = (
            int(vector_threshold)
            if (vector_threshold is not None and HAVE_NUMPY
                and sharing == "maxmin" and engine != "reference")
            else None)
        self._flows: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_progress_t = sim.now
        self._timer_gen = 0
        self._seen_epoch = topology.epoch
        # -- persistent solver inputs (incremental engine) ------------------
        # Maintained in lockstep with self._flows so a solve never rebuilds
        # them; the reference engine rebuilds equivalents per event instead.
        self._flow_links: dict[int, tuple] = {}
        self._weights: dict[int, float] = {}
        self._caps: dict[tuple, float] = {}
        self._link_refs: dict[tuple, int] = {}
        #: Solve needed: the flow set / routes / weights changed since the
        #: last solve.  A clean rebalance reuses the previous rates.
        self._dirty = False
        #: A same-instant batched solve is already scheduled.
        self._solve_pending = False
        # -- statistics (the time-weighted series stays a monitor
        # primitive; the registry exposes the live level as a gauge)
        reg = TelemetryHub.for_sim(sim).registry
        self.bytes_delivered = reg.counter(
            "net.bytes_delivered_total", "Payload bytes delivered end-to-end",
            unit="bytes")
        self.flow_durations = reg.summary(
            "net.flow_duration_seconds", "Flow start -> completion duration",
            unit="seconds")
        self.active_flows = TimeWeighted(sim.now, 0, name="net.active_flows")
        self._failed_flows = reg.counter(
            "net.flows_failed_total", "Flows that lost every route")
        self.rebalances = reg.counter(
            "net.rebalances_total", "Rebalance passes (solved or skipped)")
        self.solves = reg.counter(
            "net.solves_total", "Fair-share solves actually executed")
        self.solves_skipped = reg.counter(
            "net.solves_skipped_total",
            "Rebalances that reused the previous rates (clean flow set)")
        self.vector_solves = reg.counter(
            "net.vector_solves_total",
            "Fair-share solves executed by the vectorised max-min solver")
        reg.gauge_fn("net.flows_inflight", lambda: float(len(self._flows)),
                     "Flows currently in flight")
        reg.gauge_fn("net.route_cache_hits",
                     lambda: float(topology.route_cache_hits),
                     "Topology route-cache hits")
        reg.gauge_fn("net.route_cache_misses",
                     lambda: float(topology.route_cache_misses),
                     "Topology route-cache misses (pathfinding runs)")

    # -- public API --------------------------------------------------------
    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        weight: float = 1.0,
        name: Optional[str] = None,
        **tags,
    ) -> Event:
        """Start a transfer; the returned event yields a :class:`TransferResult`.

        The event *fails* with :class:`NoRouteError` if no healthy route
        exists now or after a mid-transfer failure, and the initiating
        process sees that exception when it ``yield``s the event.
        """
        if nbytes < 0:
            raise ValueError("transfer size must be >= 0")
        done = self.sim.event(name=name or f"xfer:{src}->{dst}")
        self._next_fid += 1
        flow = Flow(
            fid=self._next_fid,
            src=src,
            dst=dst,
            nbytes=float(nbytes),
            remaining=float(nbytes),
            links=[],
            done=done,
            weight=float(weight),
            started=self.sim.now,
            name=name,
            tags=tags,
        )
        try:
            flow.links = list(self.topology.route(src, dst))
        except NoRouteError as exc:
            self._failed_flows.add(1)
            done.fail(exc)
            return done
        if nbytes == 0 or not flow.links:
            # Local copy or empty payload: completes after path latency only.
            latency = self.topology.path_latency(flow.links)
            result = TransferResult(src, dst, nbytes, flow.started, self.sim.now + latency)
            done.succeed(result, delay=latency)
            self.bytes_delivered.add(nbytes)
            self.flow_durations.record(latency)
            return done
        self._flows[flow.fid] = flow
        self.active_flows.set(self.sim.now, len(self._flows))
        if self.engine == "reference":
            self._advance_progress()
            self._rebalance()
        else:
            self._track_flow(flow)
            self._request_rebalance()
        return done

    def notify_topology_changed(self) -> None:
        """React to failures/repairs done directly on the topology."""
        self._advance_progress()
        self._reroute_all()
        self._rebalance()

    def fail_node(self, name: str) -> None:
        """Fail a node and immediately reroute affected flows."""
        self.topology.fail_node(name)
        self.notify_topology_changed()

    def repair_node(self, name: str) -> None:
        """Repair a node and rebalance."""
        self.topology.repair_node(name)
        self.notify_topology_changed()

    def fail_link(self, a: str, b: str) -> None:
        """Fail a link and immediately reroute affected flows."""
        self.topology.fail_link(a, b)
        self.notify_topology_changed()

    def repair_link(self, a: str, b: str) -> None:
        """Bring a failed link back and rebalance."""
        self.topology.repair_link(a, b)
        self.notify_topology_changed()

    @property
    def flow_count(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    @property
    def failed_flows(self) -> int:
        """Flows that failed with no surviving route."""
        return int(self._failed_flows.value)

    def current_rate(self, fid: int) -> float:
        """Instantaneous rate of an in-flight flow (bytes/s).

        With the incremental engine a flow that arrived at the *current*
        instant may still be awaiting the batched solve; its rate reads 0
        until the same-instant solve event runs.
        """
        return self._flows[fid].rate

    # -- engine internals ------------------------------------------------------
    def _advance_progress(self) -> None:
        """Integrate every flow's progress from the last event to now."""
        now = self.sim.now
        dt = now - self._last_progress_t
        if dt > 0:
            for flow in self._flows.values():
                rate = flow.rate
                if rate > 0:
                    left = flow.remaining - rate * dt
                    flow.remaining = left if left > 0.0 else 0.0
        self._last_progress_t = now

    def _track_flow(self, flow: Flow) -> None:
        """Fold one arriving flow into the persistent solver inputs."""
        keys = []
        refs = self._link_refs
        caps = self._caps
        efficiency = self.efficiency
        for link in flow.links:
            key = link.key
            keys.append(key)
            count = refs.get(key, 0)
            if count == 0:
                caps[key] = link.capacity * efficiency
            refs[key] = count + 1
        self._flow_links[flow.fid] = tuple(keys)
        self._weights[flow.fid] = flow.weight
        self._dirty = True

    def _untrack_flow(self, flow: Flow) -> None:
        """Remove one departing flow from the persistent solver inputs."""
        keys = self._flow_links.pop(flow.fid, ())
        del self._weights[flow.fid]
        refs = self._link_refs
        for key in keys:
            count = refs[key] - 1
            if count:
                refs[key] = count
            else:
                del refs[key]
                del self._caps[key]
        self._dirty = True

    def _rebuild_tracking(self) -> None:
        """Rebuild the solver inputs from scratch (after a reroute).

        If the rebuilt inputs equal the previous ones — every surviving
        flow kept its exact path — the flow set is *not* marked dirty, so
        the next rebalance skips the fair-share solve entirely (the
        "bottleneck set unchanged" fast path for no-op topology events).
        """
        flow_links: dict[int, tuple] = {}
        refs: dict[tuple, int] = {}
        caps: dict[tuple, float] = {}
        efficiency = self.efficiency
        for flow in self._flows.values():
            keys = []
            for link in flow.links:
                key = link.key
                keys.append(key)
                count = refs.get(key, 0)
                if count == 0:
                    caps[key] = link.capacity * efficiency
                refs[key] = count + 1
            flow_links[flow.fid] = tuple(keys)
        weights = {f.fid: f.weight for f in self._flows.values()}
        if (flow_links != self._flow_links or caps != self._caps
                or weights != self._weights):
            self._dirty = True
        self._flow_links = flow_links
        self._link_refs = refs
        self._caps = caps
        self._weights = weights

    def _reroute_all(self) -> None:
        """Re-resolve the path of every flow after a topology change."""
        self._seen_epoch = self.topology.epoch
        dead: list[Flow] = []
        for flow in self._flows.values():
            try:
                flow.links = list(self.topology.route(flow.src, flow.dst))
                flow.reroutes += 1
            except NoRouteError as exc:
                dead.append(flow)
                flow.tags["error"] = exc
        for flow in dead:
            del self._flows[flow.fid]
            self._failed_flows.add(1)
            flow.done.fail(NoRouteError(f"flow {flow.src}->{flow.dst} lost its route"))
        if self.engine != "reference":
            self._rebuild_tracking()
        if dead:
            self.active_flows.set(self.sim.now, len(self._flows))

    def _request_rebalance(self) -> None:
        """Schedule one batched solve at the current instant.

        Same-instant arrivals coalesce: the first request schedules a
        low-priority event at ``now`` (so all other work at this timestamp
        lands first) and subsequent requests are no-ops.  Rates only matter
        once time advances, so deferring the solve within the timestamp is
        invisible to completion times — N simultaneous arrivals cost one
        solve instead of N.
        """
        if self._solve_pending:
            return
        self._solve_pending = True
        self.sim.call_at(self.sim.now, self._run_pending_solve, priority=LOW)

    def _run_pending_solve(self) -> None:
        self._solve_pending = False
        self._advance_progress()
        self._rebalance()

    def _rebalance(self) -> None:
        """Recompute rates (if needed) and schedule the next completion."""
        if self.topology.epoch != self._seen_epoch:
            self._reroute_all()
        self._complete_finished()
        if not self._flows:
            self._timer_gen += 1  # cancel any outstanding timer
            return
        self.rebalances.add(1)
        if self.engine == "reference":
            flow_links = {f.fid: [lk.key for lk in f.links] for f in self._flows.values()}
            capacities = {}
            for flow in self._flows.values():
                for link in flow.links:
                    capacities[link.key] = link.capacity * self.efficiency
            weights = {f.fid: f.weight for f in self._flows.values()}
            rates = self._share_fn(flow_links, capacities, weights)
            self.solves.add(1)
            for flow in self._flows.values():
                flow.rate = rates[flow.fid]
        elif self._dirty:
            flow_links = self._flow_links
            threshold = self._vector_threshold
            if threshold is not None and len(flow_links) >= threshold:
                rates = vectorized_maxmin_rates(
                    flow_links, self._caps, self._weights)
                self.vector_solves.add(1)
            else:
                rates = self._share_fn(flow_links, self._caps, self._weights)
            self._dirty = False
            self.solves.add(1)
            for flow in self._flows.values():
                flow.rate = rates[flow.fid]
        else:
            # Nothing about the flow set changed: the previous solution is
            # still the fair-share solution.  Only the timer needs care.
            self.solves_skipped.add(1)
        horizon = math.inf
        for flow in self._flows.values():
            rate = flow.rate
            if rate > 0:
                eta = flow.remaining / rate
                if eta < horizon:
                    horizon = eta
        if math.isinf(horizon):
            # No flow is making progress (all rates zero — only possible
            # with a degenerate sharing model).  Cancel the outstanding
            # timer instead of scheduling one at t=inf; the flows stall
            # until the next arrival/topology event re-solves.
            self._timer_gen += 1
            return
        self._timer_gen += 1
        gen = self._timer_gen
        self.sim.call_at(self.sim.now + horizon, lambda: self._on_timer(gen))

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a later rebalance
        self._advance_progress()
        self._rebalance()

    def _complete_finished(self) -> None:
        # A flow is done when its residual is below an absolute byte epsilon
        # OR below a microsecond of service at its current rate — the latter
        # guards against float-precision livelock (a timer scheduled at
        # now + sub-ulp delay would never advance the clock).  All flows
        # reaching the horizon together complete in this one pass: one
        # recompute for N simultaneous completions.
        finished = [
            f
            for f in self._flows.values()
            if f.remaining <= _COMPLETE_EPS_BYTES or f.remaining <= f.rate * 1e-6
        ]
        incremental = self.engine != "reference"
        for flow in finished:
            del self._flows[flow.fid]
            if incremental:
                self._untrack_flow(flow)
            latency = self.topology.path_latency(flow.links)
            result = TransferResult(
                flow.src,
                flow.dst,
                flow.nbytes,
                flow.started,
                self.sim.now + latency,
                reroutes=flow.reroutes,
            )
            self.bytes_delivered.add(flow.nbytes)
            self.flow_durations.record(result.duration)
            flow.done.succeed(result, delay=latency)
        if finished:
            self.active_flows.set(self.sim.now, len(self._flows))
