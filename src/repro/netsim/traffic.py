"""Background-traffic generation for contention studies.

The LSDF backbone is shared: while an experiment ingests, other communities
move data, the cluster shuffles, users browse.  A :class:`TrafficGenerator`
injects a Poisson stream of transfers with bounded-Pareto sizes (the
standard heavy-tailed model of bulk data traffic) between random endpoint
pairs, so experiments can measure how foreground flows behave *under
realistic cross-traffic* rather than on an idle network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.simkit.core import Simulator
from repro.simkit.rand import RandomSource
from repro.telemetry.hub import TelemetryHub
from repro.netsim.network import Network
from repro.netsim.topology import NoRouteError


@dataclass
class TrafficConfig:
    """Shape of the background load."""

    #: Mean seconds between flow arrivals (Poisson process).
    mean_interarrival: float = 10.0
    #: Bounded-Pareto flow sizes: shape and [lo, hi] bytes.
    size_shape: float = 1.3
    size_lo: float = 10e6
    size_hi: float = 50e9

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be > 0")
        if not (0 < self.size_lo <= self.size_hi):
            raise ValueError("require 0 < size_lo <= size_hi")


class TrafficGenerator:
    """Poisson/bounded-Pareto background flows between endpoint pairs."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        endpoints: Sequence[str],
        config: Optional[TrafficConfig] = None,
        rng: Optional[RandomSource] = None,
        name: str = "bgtraffic",
    ):
        if len(endpoints) < 2:
            raise ValueError("need at least two endpoints")
        self.sim = sim
        self.net = net
        self.endpoints = list(endpoints)
        self.config = config or TrafficConfig()
        self.rng = rng or sim.random.spawn(name)
        self.name = name
        reg = TelemetryHub.for_sim(sim).registry
        self.flows_started = reg.counter(
            "traffic.flows_total", "Background flows launched", source=name)
        self.bytes_offered = reg.counter(
            "traffic.bytes_offered_total", "Background bytes offered",
            unit="bytes", source=name)
        self.flow_durations = reg.summary(
            "traffic.flow_duration_seconds",
            "Background flow completion times", unit="seconds", source=name)
        self._stop = False

    def start(self, duration: Optional[float] = None):
        """Launch the generator process (optionally for a fixed duration)."""
        return self.sim.process(self._run(duration), name=self.name)

    def stop(self) -> None:
        """Stop generating new flows (in-flight ones finish)."""
        self._stop = True

    def _pick_pair(self) -> tuple[str, str]:
        src = self.rng.choice(self.endpoints)
        dst = src
        while dst == src:
            dst = self.rng.choice(self.endpoints)
        return src, dst

    def _run(self, duration: Optional[float]) -> Generator:
        cfg = self.config
        t_end = self.sim.now + duration if duration is not None else float("inf")
        while not self._stop and self.sim.now < t_end:
            yield self.sim.timeout(self.rng.exponential(cfg.mean_interarrival))
            if self._stop or self.sim.now >= t_end:
                break
            src, dst = self._pick_pair()
            size = self.rng.pareto_bounded(cfg.size_shape, cfg.size_lo, cfg.size_hi)
            try:
                flow = self.net.transfer(src, dst, size, name=f"{self.name}.flow")
            except NoRouteError:
                continue
            self.flows_started.add(1)
            self.bytes_offered.add(size)
            self.sim.process(self._track(flow))
        return int(self.flows_started.value)

    def _track(self, flow) -> Generator:
        try:
            result = yield flow
        except NoRouteError:
            return  # lost to a failure mid-flight; fine for background load
        self.flow_durations.record(result.duration)

    def offered_rate(self, elapsed: float) -> float:
        """Mean offered load in bytes/s over ``elapsed`` seconds."""
        return self.bytes_offered.rate(elapsed)
