"""Flow-level network simulator for the LSDF 10 GE backbone.

The paper's network claims ("dedicated 10 GE backbone", "redundant routers",
"15 days to transfer 1 PB over an ideal 10 Gb/s link") are all about
bandwidth arithmetic under contention, not per-packet behaviour — so the
simulator is *fluid*: a transfer is a :class:`~repro.netsim.network.Flow`
that progresses at a rate set by max-min fair sharing of the links on its
path.  Whenever a flow starts, finishes, or a link/node fails, rates are
recomputed and completion times rescheduled.

Public surface
--------------
:class:`Topology`
    Nodes (hosts/routers/switches) and :class:`Link` capacities; supports
    failing and repairing nodes/links with automatic rerouting.
:class:`Network`
    The flow engine: ``transfer(src, dst, nbytes)`` returns an event that
    triggers when the transfer completes.
:func:`maxmin_rates`, :func:`equal_split_rates`
    The two bandwidth-sharing models (ablation E3).
:func:`build_lsdf_backbone`
    The canonical LSDF-2011 topology from slide 7.
"""

from repro.netsim.fairshare import equal_split_rates, maxmin_rates
from repro.netsim.network import Flow, Network, NetworkError, NoRouteError, TransferResult
from repro.netsim.topology import Link, Topology
from repro.netsim.builders import build_lsdf_backbone, build_fat_tree, build_star
from repro.netsim.traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "Flow",
    "Link",
    "Network",
    "NetworkError",
    "NoRouteError",
    "Topology",
    "TrafficConfig",
    "TrafficGenerator",
    "TransferResult",
    "build_fat_tree",
    "build_lsdf_backbone",
    "build_star",
    "equal_split_rates",
    "maxmin_rates",
]
