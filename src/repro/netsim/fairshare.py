"""Bandwidth-sharing models for the fluid network simulator.

:func:`maxmin_rates` implements weighted max-min fairness by progressive
filling — the standard model of what long-lived TCP flows converge to on a
shared network, and the default for all experiments.  It is the optimized
production solver: per-link weight sums are cached between filling rounds
and recomputed only for links whose membership changed, and frozen flows
are collected from the saturated links directly instead of rescanning the
whole active set.

:func:`_reference_maxmin_rates` is the retained naive implementation —
every round recomputes every link's weight sum from scratch.  Both solvers
perform *bit-identical arithmetic*: they build the same insertion-ordered
membership maps, sum weights left-to-right over the same element order,
freeze flows in the same order, and apply capacity subtractions in the
same sequence.  The differential property tests
(``tests/netsim/test_differential.py``) assert **exact** equality of their
outputs, which is what makes the optimized solver trustworthy.  If you
touch either function, keep the arithmetic order mirrored or those tests
will catch you.

:func:`equal_split_rates` is the ablation alternative (DESIGN.md §4): each
link naively divides its capacity equally among crossing flows and a flow
gets the minimum along its path.  It underestimates achievable rates because
capacity "freed" by flows bottlenecked elsewhere is not redistributed.
:func:`_reference_equal_split_rates` is its naive twin, kept for the same
differential-testing purpose.

All are pure functions of ``(flow -> links)`` and ``(link -> capacity)``,
which makes them directly property-testable (see
``tests/netsim/test_fairshare.py``).

Determinism note: no bare sets are iterated anywhere (REP008) — every
ordered container is an insertion-ordered dict, so results are identical
across processes regardless of hash randomization.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: True when the vectorised solver can actually vectorise (numpy present).
HAVE_NUMPY = _np is not None

_EPS = 1e-12

_INF = float("inf")


def _setup(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None,
):
    """Shared validated setup for both max-min solvers.

    Returns ``(rates, active, w, remaining, members)`` where ``rates`` is
    pre-populated with the unconstrained (empty-path) flows, ``active``
    maps constrained flow ids to their link tuples, ``w`` holds validated
    float weights, ``remaining`` the validated float capacities and
    ``members`` the per-link insertion-ordered membership maps
    (``lid -> {fid: None}``).  All containers are insertion-ordered dicts;
    both solvers iterate them identically, which is what guarantees
    bit-identical results.
    """
    weights = weights or {}
    rates: dict[Hashable, float] = {}
    active: dict[Hashable, tuple[Hashable, ...]] = {}
    w: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = float(weights.get(fid, 1.0))
        if wf <= 0:
            raise ValueError(f"flow {fid!r}: weight must be > 0")
        active[fid] = tuple(links)
        w[fid] = wf
    remaining: dict[Hashable, float] = {}
    for lid, cap in capacities.items():
        cap = float(cap)
        if cap <= 0:
            raise ValueError(f"link {lid!r}: capacity must be > 0")
        remaining[lid] = cap
    members: dict[Hashable, dict[Hashable, None]] = {}
    for fid, links in active.items():
        for lid in links:
            if lid not in remaining:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            group = members.get(lid)
            if group is None:
                members[lid] = {fid: None}
            else:
                group[fid] = None
    return rates, active, w, remaining, members


def maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Weighted max-min fair rates by progressive filling (optimized).

    Parameters
    ----------
    flow_links:
        Maps each flow id to the links (hashable ids) on its path.  A flow
        with an empty path is unconstrained and gets ``float('inf')``.
    capacities:
        Maps each link id to its capacity (> 0).
    weights:
        Optional per-flow weights (> 0, default 1.0).  A flow's share of a
        bottleneck is proportional to its weight.

    Returns
    -------
    dict mapping each flow id to its rate.

    Invariants (property-tested)
    ----------------------------
    * no link's total allocated rate exceeds its capacity (within epsilon);
    * every flow is bottlenecked: it crosses at least one saturated link
      (or is unconstrained);
    * with equal weights, flows sharing identical paths get equal rates;
    * output is bit-identical to :func:`_reference_maxmin_rates`.
    """
    rates, active, w, remaining, members = _setup(flow_links, capacities, weights)

    if len(active) == 1:
        # Single constrained flow: its rate is its weighted share of the
        # tightest link.  Arithmetic mirrors the general round exactly
        # (share = remaining / wsum, then rate = bottleneck * weight).
        for fid, links in active.items():
            wf = w[fid]
            bottleneck = None
            for lid in members:
                share = remaining[lid] / wf
                if bottleneck is None or share < bottleneck:
                    bottleneck = share
            rates[fid] = bottleneck * wf
        return rates

    # Per-link weight sums, cached across rounds; only the links touched by
    # a freezing round are recomputed (over an unchanged membership map a
    # recomputation would reproduce the cached value bit-for-bit, so the
    # cache never diverges from the reference's recompute-everything loop).
    wsum: dict[Hashable, float] = {}
    for lid, fids in members.items():
        total = 0.0
        for fid in fids:
            total += w[fid]
        wsum[lid] = total
    loaded: dict[Hashable, None] = dict.fromkeys(members)

    while active:
        shares: dict[Hashable, float] = {}
        bottleneck = None
        for lid in loaded:
            share = remaining[lid] / wsum[lid]
            shares[lid] = share
            if bottleneck is None or share < bottleneck:
                bottleneck = share
        if bottleneck is None:
            # All remaining flows cross only unloaded links (cannot happen,
            # every active flow loads its links) — defensive exit.
            for fid in active:
                rates[fid] = _INF
            break

        threshold = bottleneck + _EPS
        frozen: dict[Hashable, None] = {}
        for lid, share in shares.items():
            if share <= threshold:
                for fid in members[lid]:
                    frozen[fid] = None
        touched: dict[Hashable, None] = {}
        for fid in frozen:
            rate = bottleneck * w[fid]
            rates[fid] = rate
            for lid in active[fid]:
                members[lid].pop(fid, None)
                left = remaining[lid] - rate
                remaining[lid] = left if left > 0.0 else 0.0
                touched[lid] = None
            del active[fid]
        for lid in touched:
            fids = members[lid]
            if fids:
                total = 0.0
                for fid in fids:
                    total += w[fid]
                wsum[lid] = total
            else:
                del loaded[lid]

    return rates


def _reference_maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """The retained naive max-min solver (differential-test oracle).

    Every progressive-filling round recomputes every loaded link's weight
    sum from scratch — O(flows x links) per round, quadratic over a run —
    which is exactly what :func:`maxmin_rates` avoids.  Kept deliberately
    simple so its correctness is obvious; the optimized solver must match
    it bit-for-bit (see the module docstring).
    """
    rates, active, w, remaining, members = _setup(flow_links, capacities, weights)

    while active:
        shares: dict[Hashable, float] = {}
        bottleneck = None
        for lid, fids in members.items():
            if not fids:
                continue
            total = 0.0
            for fid in fids:
                total += w[fid]
            share = remaining[lid] / total
            shares[lid] = share
            if bottleneck is None or share < bottleneck:
                bottleneck = share
        if bottleneck is None:
            for fid in active:
                rates[fid] = _INF
            break

        threshold = bottleneck + _EPS
        frozen: dict[Hashable, None] = {}
        for lid, share in shares.items():
            if share <= threshold:
                for fid in members[lid]:
                    frozen[fid] = None
        for fid in frozen:
            rate = bottleneck * w[fid]
            rates[fid] = rate
            for lid in active[fid]:
                members[lid].pop(fid, None)
                left = remaining[lid] - rate
                remaining[lid] = left if left > 0.0 else 0.0
            del active[fid]

    return rates


def vectorized_maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Weighted max-min fair rates on a dense link x flow formulation.

    Numerically **bit-identical** to :func:`maxmin_rates` and
    :func:`_reference_maxmin_rates` — not merely close.  The equivalences
    that make that possible:

    * per-link weight sums use ``np.cumsum`` row sums, which accumulates
      strictly left-to-right like the scalar ``total += w[fid]`` loop
      (``np.sum`` would use pairwise summation and differ in the last
      ulp); non-members contribute ``0.0``, and ``x + 0.0 == x`` bitwise
      for the non-negative partial sums weights produce;
    * link order in the dense formulation is ``members`` insertion order
      and flow order is ``active`` insertion order, so saturated links
      and their member flows freeze in exactly the reference's order
      (``np.nonzero`` enumerates row-major = link-then-member);
    * shares / bottleneck / threshold / rate are elementwise IEEE ops,
      identical to the scalar expressions;
    * the per-link capacity subtractions of a freezing round are replayed
      *sequentially* in frozen-flow order (they form a data dependence
      chain through ``remaining``), as scalar ``np.float64`` arithmetic.

    The differential suite (``tests/netsim/test_vectorized.py``) asserts
    exact equality on randomized topologies.  Without numpy installed
    this transparently falls back to the optimized scalar solver (same
    bits, no speedup).
    """
    if _np is None:
        return maxmin_rates(flow_links, capacities, weights)
    rates, active, w, remaining, members = _setup(flow_links, capacities, weights)
    if not active:
        return rates

    fids = list(active)
    lids = list(members)
    findex = {fid: i for i, fid in enumerate(fids)}
    lindex = {lid: j for j, lid in enumerate(lids)}
    nflows, nlinks = len(fids), len(lids)
    wv = _np.fromiter((w[fid] for fid in fids), dtype=_np.float64, count=nflows)
    rem = _np.fromiter((remaining[lid] for lid in lids), dtype=_np.float64,
                       count=nlinks)
    membership = _np.zeros((nlinks, nflows), dtype=bool)
    # Per-flow link paths as index arrays, kept in *path* order (with
    # duplicates, if a path repeats a link) for the subtraction replay.
    paths = []
    for i, fid in enumerate(fids):
        links = active[fid]
        idx = _np.fromiter((lindex[lid] for lid in links), dtype=_np.intp,
                           count=len(links))
        paths.append(idx)
        membership[idx, i] = True

    # Cached per-link weight sums, sequential-semantics via cumsum.
    masked = _np.where(membership, wv[_np.newaxis, :], 0.0)
    wsum = _np.cumsum(masked, axis=1)[:, -1]
    loaded = _np.ones(nlinks, dtype=bool)
    alive = _np.ones(nflows, dtype=bool)
    out = _np.zeros(nflows, dtype=_np.float64)

    while alive.any():
        live_links = _np.nonzero(loaded)[0]
        if live_links.size == 0:
            # Mirror of the scalar solvers' defensive exit.
            out[alive] = _INF
            break
        shares = rem[live_links] / wsum[live_links]
        bottleneck = shares.min()
        threshold = bottleneck + _EPS
        sat_links = live_links[shares <= threshold]
        # Frozen flows in link-then-member discovery order with keep-first
        # dedup — exactly the scalar solvers' `frozen` dict construction.
        cols = _np.nonzero(membership[sat_links])[1]
        _uniq, first = _np.unique(cols, return_index=True)
        frozen = cols[_np.sort(first)]
        # Capacity subtractions form a sequential dependence chain through
        # `rem`; replay them in frozen order as scalar float64 arithmetic.
        for i in frozen.tolist():
            rate = bottleneck * wv[i]
            out[i] = rate
            for j in paths[i].tolist():
                left = rem[j] - rate
                rem[j] = left if left > 0.0 else 0.0
        alive[frozen] = False
        membership[:, frozen] = False
        touched = _np.unique(_np.concatenate([paths[i] for i in frozen.tolist()]))
        still_loaded = membership[touched].any(axis=1)
        loaded[touched] = still_loaded
        refresh = touched[still_loaded]
        if refresh.size:
            masked = _np.where(membership[refresh], wv[_np.newaxis, :], 0.0)
            wsum[refresh] = _np.cumsum(masked, axis=1)[:, -1]

    for fid, i in findex.items():
        rates[fid] = float(out[i])
    return rates


def equal_split_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Naive equal-split sharing (ablation baseline).

    Each link offers ``capacity / n_flows`` to every crossing flow
    (weight-proportionally when weights are given); a flow's rate is the
    minimum offer along its path.  Never exceeds link capacities, but wastes
    capacity relative to max-min fairness.
    """
    weights = weights or {}
    w: dict[Hashable, float] = {}
    link_load: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        wf = float(weights.get(fid, 1.0))
        w[fid] = wf
        for lid in links:
            if lid not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_load[lid] = link_load.get(lid, 0.0) + wf

    rates: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = w[fid]
        best = None
        for lid in links:
            offer = capacities[lid] * wf / link_load[lid]
            if best is None or offer < best:
                best = offer
        rates[fid] = best
    return rates


def _reference_equal_split_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """The retained naive equal-split implementation (differential oracle).

    Recomputes the per-flow weight lookup inside both passes instead of
    caching it — the seed repo's original shape.  Arithmetic mirrors
    :func:`equal_split_rates` exactly.
    """
    weights = weights or {}
    link_load: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        wf = float(weights.get(fid, 1.0))
        for lid in links:
            if lid not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_load[lid] = link_load.get(lid, 0.0) + wf

    rates: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = float(weights.get(fid, 1.0))
        best = None
        for lid in links:
            offer = capacities[lid] * wf / link_load[lid]
            if best is None or offer < best:
                best = offer
        rates[fid] = best
    return rates
