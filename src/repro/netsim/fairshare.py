"""Bandwidth-sharing models for the fluid network simulator.

:func:`maxmin_rates` implements weighted max-min fairness by progressive
filling — the standard model of what long-lived TCP flows converge to on a
shared network, and the default for all experiments.

:func:`equal_split_rates` is the ablation alternative (DESIGN.md §4): each
link naively divides its capacity equally among crossing flows and a flow
gets the minimum along its path.  It underestimates achievable rates because
capacity "freed" by flows bottlenecked elsewhere is not redistributed.

Both are pure functions of ``(flow -> links)`` and ``(link -> capacity)``,
which makes them directly property-testable (see
``tests/netsim/test_fairshare.py``).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

_EPS = 1e-12


def maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Weighted max-min fair rates by progressive filling.

    Parameters
    ----------
    flow_links:
        Maps each flow id to the links (hashable ids) on its path.  A flow
        with an empty path is unconstrained and gets ``float('inf')``.
    capacities:
        Maps each link id to its capacity (> 0).
    weights:
        Optional per-flow weights (> 0, default 1.0).  A flow's share of a
        bottleneck is proportional to its weight.

    Returns
    -------
    dict mapping each flow id to its rate.

    Invariants (property-tested)
    ----------------------------
    * no link's total allocated rate exceeds its capacity (within epsilon);
    * every flow is bottlenecked: it crosses at least one saturated link
      (or is unconstrained);
    * with equal weights, flows sharing identical paths get equal rates.
    """
    weights = weights or {}
    rates: dict[Hashable, float] = {}
    # Flows with no links are unconstrained.
    active: dict[Hashable, tuple[Hashable, ...]] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = float("inf")
        else:
            active[fid] = tuple(links)

    remaining_cap = {lid: float(cap) for lid, cap in capacities.items()}
    for lid, cap in remaining_cap.items():
        if cap <= 0:
            raise ValueError(f"link {lid!r}: capacity must be > 0")

    # links -> set of active flows crossing them
    link_flows: dict[Hashable, set[Hashable]] = {}
    for fid, links in active.items():
        for lid in links:
            if lid not in remaining_cap:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_flows.setdefault(lid, set()).add(fid)

    def flow_weight(fid: Hashable) -> float:
        w = float(weights.get(fid, 1.0))
        if w <= 0:
            raise ValueError(f"flow {fid!r}: weight must be > 0")
        return w

    while active:
        # Fair share per unit weight on each loaded link.
        bottleneck_share = None
        for lid, fids in link_flows.items():
            if not fids:
                continue
            total_w = sum(flow_weight(f) for f in fids)
            share = remaining_cap[lid] / total_w
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share is None:
            # All remaining flows cross only unloaded links (cannot happen,
            # every active flow loads its links) — defensive exit.
            for fid in active:
                rates[fid] = float("inf")
            break

        # Find the saturated links and freeze the flows crossing them.
        frozen: set[Hashable] = set()
        for lid, fids in list(link_flows.items()):
            if not fids:
                continue
            total_w = sum(flow_weight(f) for f in fids)
            if remaining_cap[lid] / total_w <= bottleneck_share + _EPS:
                frozen.update(fids)
        for fid in frozen:
            rate = bottleneck_share * flow_weight(fid)
            rates[fid] = rate
            for lid in active[fid]:
                link_flows[lid].discard(fid)
                remaining_cap[lid] = max(0.0, remaining_cap[lid] - rate)
            del active[fid]

    return rates


def equal_split_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Naive equal-split sharing (ablation baseline).

    Each link offers ``capacity / n_flows`` to every crossing flow
    (weight-proportionally when weights are given); a flow's rate is the
    minimum offer along its path.  Never exceeds link capacities, but wastes
    capacity relative to max-min fairness.
    """
    weights = weights or {}
    link_load: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        w = float(weights.get(fid, 1.0))
        for lid in links:
            if lid not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_load[lid] = link_load.get(lid, 0.0) + w

    rates: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = float("inf")
            continue
        w = float(weights.get(fid, 1.0))
        rates[fid] = min(capacities[lid] * w / link_load[lid] for lid in links)
    return rates
