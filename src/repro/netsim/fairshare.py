"""Bandwidth-sharing models for the fluid network simulator.

:func:`maxmin_rates` implements weighted max-min fairness by progressive
filling — the standard model of what long-lived TCP flows converge to on a
shared network, and the default for all experiments.  It is the optimized
production solver: per-link weight sums are cached between filling rounds
and recomputed only for links whose membership changed, and frozen flows
are collected from the saturated links directly instead of rescanning the
whole active set.

:func:`_reference_maxmin_rates` is the retained naive implementation —
every round recomputes every link's weight sum from scratch.  Both solvers
perform *bit-identical arithmetic*: they build the same insertion-ordered
membership maps, sum weights left-to-right over the same element order,
freeze flows in the same order, and apply capacity subtractions in the
same sequence.  The differential property tests
(``tests/netsim/test_differential.py``) assert **exact** equality of their
outputs, which is what makes the optimized solver trustworthy.  If you
touch either function, keep the arithmetic order mirrored or those tests
will catch you.

:func:`equal_split_rates` is the ablation alternative (DESIGN.md §4): each
link naively divides its capacity equally among crossing flows and a flow
gets the minimum along its path.  It underestimates achievable rates because
capacity "freed" by flows bottlenecked elsewhere is not redistributed.
:func:`_reference_equal_split_rates` is its naive twin, kept for the same
differential-testing purpose.

All are pure functions of ``(flow -> links)`` and ``(link -> capacity)``,
which makes them directly property-testable (see
``tests/netsim/test_fairshare.py``).

Determinism note: no bare sets are iterated anywhere (REP008) — every
ordered container is an insertion-ordered dict, so results are identical
across processes regardless of hash randomization.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

_EPS = 1e-12

_INF = float("inf")


def _setup(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None,
):
    """Shared validated setup for both max-min solvers.

    Returns ``(rates, active, w, remaining, members)`` where ``rates`` is
    pre-populated with the unconstrained (empty-path) flows, ``active``
    maps constrained flow ids to their link tuples, ``w`` holds validated
    float weights, ``remaining`` the validated float capacities and
    ``members`` the per-link insertion-ordered membership maps
    (``lid -> {fid: None}``).  All containers are insertion-ordered dicts;
    both solvers iterate them identically, which is what guarantees
    bit-identical results.
    """
    weights = weights or {}
    rates: dict[Hashable, float] = {}
    active: dict[Hashable, tuple[Hashable, ...]] = {}
    w: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = float(weights.get(fid, 1.0))
        if wf <= 0:
            raise ValueError(f"flow {fid!r}: weight must be > 0")
        active[fid] = tuple(links)
        w[fid] = wf
    remaining: dict[Hashable, float] = {}
    for lid, cap in capacities.items():
        cap = float(cap)
        if cap <= 0:
            raise ValueError(f"link {lid!r}: capacity must be > 0")
        remaining[lid] = cap
    members: dict[Hashable, dict[Hashable, None]] = {}
    for fid, links in active.items():
        for lid in links:
            if lid not in remaining:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            group = members.get(lid)
            if group is None:
                members[lid] = {fid: None}
            else:
                group[fid] = None
    return rates, active, w, remaining, members


def maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Weighted max-min fair rates by progressive filling (optimized).

    Parameters
    ----------
    flow_links:
        Maps each flow id to the links (hashable ids) on its path.  A flow
        with an empty path is unconstrained and gets ``float('inf')``.
    capacities:
        Maps each link id to its capacity (> 0).
    weights:
        Optional per-flow weights (> 0, default 1.0).  A flow's share of a
        bottleneck is proportional to its weight.

    Returns
    -------
    dict mapping each flow id to its rate.

    Invariants (property-tested)
    ----------------------------
    * no link's total allocated rate exceeds its capacity (within epsilon);
    * every flow is bottlenecked: it crosses at least one saturated link
      (or is unconstrained);
    * with equal weights, flows sharing identical paths get equal rates;
    * output is bit-identical to :func:`_reference_maxmin_rates`.
    """
    rates, active, w, remaining, members = _setup(flow_links, capacities, weights)

    if len(active) == 1:
        # Single constrained flow: its rate is its weighted share of the
        # tightest link.  Arithmetic mirrors the general round exactly
        # (share = remaining / wsum, then rate = bottleneck * weight).
        for fid, links in active.items():
            wf = w[fid]
            bottleneck = None
            for lid in members:
                share = remaining[lid] / wf
                if bottleneck is None or share < bottleneck:
                    bottleneck = share
            rates[fid] = bottleneck * wf
        return rates

    # Per-link weight sums, cached across rounds; only the links touched by
    # a freezing round are recomputed (over an unchanged membership map a
    # recomputation would reproduce the cached value bit-for-bit, so the
    # cache never diverges from the reference's recompute-everything loop).
    wsum: dict[Hashable, float] = {}
    for lid, fids in members.items():
        total = 0.0
        for fid in fids:
            total += w[fid]
        wsum[lid] = total
    loaded: dict[Hashable, None] = dict.fromkeys(members)

    while active:
        shares: dict[Hashable, float] = {}
        bottleneck = None
        for lid in loaded:
            share = remaining[lid] / wsum[lid]
            shares[lid] = share
            if bottleneck is None or share < bottleneck:
                bottleneck = share
        if bottleneck is None:
            # All remaining flows cross only unloaded links (cannot happen,
            # every active flow loads its links) — defensive exit.
            for fid in active:
                rates[fid] = _INF
            break

        threshold = bottleneck + _EPS
        frozen: dict[Hashable, None] = {}
        for lid, share in shares.items():
            if share <= threshold:
                for fid in members[lid]:
                    frozen[fid] = None
        touched: dict[Hashable, None] = {}
        for fid in frozen:
            rate = bottleneck * w[fid]
            rates[fid] = rate
            for lid in active[fid]:
                members[lid].pop(fid, None)
                left = remaining[lid] - rate
                remaining[lid] = left if left > 0.0 else 0.0
                touched[lid] = None
            del active[fid]
        for lid in touched:
            fids = members[lid]
            if fids:
                total = 0.0
                for fid in fids:
                    total += w[fid]
                wsum[lid] = total
            else:
                del loaded[lid]

    return rates


def _reference_maxmin_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """The retained naive max-min solver (differential-test oracle).

    Every progressive-filling round recomputes every loaded link's weight
    sum from scratch — O(flows x links) per round, quadratic over a run —
    which is exactly what :func:`maxmin_rates` avoids.  Kept deliberately
    simple so its correctness is obvious; the optimized solver must match
    it bit-for-bit (see the module docstring).
    """
    rates, active, w, remaining, members = _setup(flow_links, capacities, weights)

    while active:
        shares: dict[Hashable, float] = {}
        bottleneck = None
        for lid, fids in members.items():
            if not fids:
                continue
            total = 0.0
            for fid in fids:
                total += w[fid]
            share = remaining[lid] / total
            shares[lid] = share
            if bottleneck is None or share < bottleneck:
                bottleneck = share
        if bottleneck is None:
            for fid in active:
                rates[fid] = _INF
            break

        threshold = bottleneck + _EPS
        frozen: dict[Hashable, None] = {}
        for lid, share in shares.items():
            if share <= threshold:
                for fid in members[lid]:
                    frozen[fid] = None
        for fid in frozen:
            rate = bottleneck * w[fid]
            rates[fid] = rate
            for lid in active[fid]:
                members[lid].pop(fid, None)
                left = remaining[lid] - rate
                remaining[lid] = left if left > 0.0 else 0.0
            del active[fid]

    return rates


def equal_split_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Naive equal-split sharing (ablation baseline).

    Each link offers ``capacity / n_flows`` to every crossing flow
    (weight-proportionally when weights are given); a flow's rate is the
    minimum offer along its path.  Never exceeds link capacities, but wastes
    capacity relative to max-min fairness.
    """
    weights = weights or {}
    w: dict[Hashable, float] = {}
    link_load: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        wf = float(weights.get(fid, 1.0))
        w[fid] = wf
        for lid in links:
            if lid not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_load[lid] = link_load.get(lid, 0.0) + wf

    rates: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = w[fid]
        best = None
        for lid in links:
            offer = capacities[lid] * wf / link_load[lid]
            if best is None or offer < best:
                best = offer
        rates[fid] = best
    return rates


def _reference_equal_split_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """The retained naive equal-split implementation (differential oracle).

    Recomputes the per-flow weight lookup inside both passes instead of
    caching it — the seed repo's original shape.  Arithmetic mirrors
    :func:`equal_split_rates` exactly.
    """
    weights = weights or {}
    link_load: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        wf = float(weights.get(fid, 1.0))
        for lid in links:
            if lid not in capacities:
                raise KeyError(f"flow {fid!r} crosses unknown link {lid!r}")
            link_load[lid] = link_load.get(lid, 0.0) + wf

    rates: dict[Hashable, float] = {}
    for fid, links in flow_links.items():
        if len(links) == 0:
            rates[fid] = _INF
            continue
        wf = float(weights.get(fid, 1.0))
        best = None
        for lid in links:
            offer = capacities[lid] * wf / link_load[lid]
            if best is None or offer < best:
                best = offer
        rates[fid] = best
    return rates
