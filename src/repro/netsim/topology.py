"""Network topology: nodes, links, routing, failures.

A :class:`Topology` is an undirected multigraph-free graph of named nodes.
Each edge carries a :class:`Link` with a capacity in bytes/s and a one-way
latency in seconds.  Nodes and links can be failed and repaired; routing
(shortest path by latency, tie-broken by hop count deterministically) only
uses healthy elements, which is how the redundant-router failover of the
LSDF backbone is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import networkx as nx


class NoRouteError(Exception):
    """No healthy path exists between two nodes."""


@dataclass
class Link:
    """A bidirectional network link.

    Attributes
    ----------
    a, b:
        Endpoint node names (stored in sorted order).
    capacity:
        Usable capacity in bytes/s, shared by both directions (fluid model).
    latency:
        One-way propagation + forwarding latency in seconds.
    up:
        Health flag; failed links are excluded from routing.
    """

    a: str
    b: str
    capacity: float
    latency: float = 0.0005
    up: bool = True
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.a}<->{self.b}: capacity must be > 0")
        if self.latency < 0:
            raise ValueError("link latency must be >= 0")
        if self.a == self.b:
            raise ValueError("self-loop links are not allowed")
        if self.b < self.a:
            self.a, self.b = self.b, self.a

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying this link."""
        return (self.a, self.b)

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "DOWN"
        return f"<Link {self.a}<->{self.b} {self.capacity:.3g} B/s {state}>"


class Topology:
    """A named-node graph with failable links and nodes and cached routing."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._links: dict[tuple[str, str], Link] = {}
        self._node_up: dict[str, bool] = {}
        self._node_attrs: dict[str, dict] = {}
        self._route_cache: dict[tuple[str, str], list[Link]] = {}
        self._epoch = 0  # bumped on any failure/repair/structure change
        # Healthy-subgraph view, rebuilt at most once per epoch (a cache
        # miss on any route would otherwise rebuild the whole nx.Graph).
        self._healthy: Optional[nx.Graph] = None
        #: Route-cache hit/miss tallies (plain ints: the network layer
        #: exposes them as telemetry gauges; keeping them raw here avoids a
        #: registry dependency in the pure-graph layer).
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    # -- construction -----------------------------------------------------
    def add_node(self, name: str, **attrs: Any) -> None:
        """Add a named node (idempotent; attrs merge)."""
        self._graph.add_node(name)
        self._node_up.setdefault(name, True)
        self._node_attrs.setdefault(name, {}).update(attrs)
        self._invalidate()

    def add_link(
        self, a: str, b: str, capacity: float, latency: float = 0.0005, **tags: Any
    ) -> Link:
        """Connect two nodes (adding them if needed) with a new link."""
        self.add_node(a)
        self.add_node(b)
        link = Link(a, b, capacity, latency, tags=dict(tags))
        if link.key in self._links:
            raise ValueError(f"duplicate link {a}<->{b}")
        self._links[link.key] = link
        self._graph.add_edge(link.a, link.b)
        self._invalidate()
        return link

    # -- inspection ---------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All node names, sorted."""
        return sorted(self._graph.nodes)

    @property
    def links(self) -> list[Link]:
        """All links, in insertion order."""
        return list(self._links.values())

    def node_attrs(self, name: str) -> dict:
        """Attribute dict of a node."""
        return self._node_attrs[name]

    def has_node(self, name: str) -> bool:
        """Whether a node of this name exists."""
        return name in self._node_up

    def link_between(self, a: str, b: str) -> Link:
        """The link connecting two adjacent nodes."""
        key = (a, b) if a < b else (b, a)
        return self._links[key]

    def node_is_up(self, name: str) -> bool:
        """Health flag of a node."""
        return self._node_up[name]

    @property
    def epoch(self) -> int:
        """Monotonic counter bumped on any topology/health change."""
        return self._epoch

    # -- failures -----------------------------------------------------------
    def fail_node(self, name: str) -> None:
        """Mark a node failed; routes through it become unavailable."""
        if name not in self._node_up:
            raise KeyError(name)
        self._node_up[name] = False
        self._invalidate()

    def repair_node(self, name: str) -> None:
        """Bring a failed node back."""
        if name not in self._node_up:
            raise KeyError(name)
        self._node_up[name] = True
        self._invalidate()

    def fail_link(self, a: str, b: str) -> None:
        """Mark a link failed."""
        self.link_between(a, b).up = False
        self._invalidate()

    def repair_link(self, a: str, b: str) -> None:
        """Bring a failed link back."""
        self.link_between(a, b).up = True
        self._invalidate()

    def _invalidate(self) -> None:
        self._route_cache.clear()
        self._healthy = None
        self._epoch += 1

    # -- routing -------------------------------------------------------------
    def _healthy_subgraph(self) -> nx.Graph:
        """The healthy-elements-only graph, cached until the next epoch bump."""
        g = self._healthy
        if g is None:
            g = nx.Graph()
            for node, up in self._node_up.items():
                if up:
                    g.add_node(node)
            for link in self._links.values():
                if link.up and self._node_up[link.a] and self._node_up[link.b]:
                    g.add_edge(link.a, link.b, weight=link.latency + 1e-9)
            self._healthy = g
        return g

    def route(self, src: str, dst: str) -> list[Link]:
        """Links on the healthy min-latency path from ``src`` to ``dst``.

        Returns an empty list when ``src == dst``.  Raises
        :class:`NoRouteError` when no healthy path exists.  Results are
        cached per ``(src, dst)`` pair until the next epoch bump, so an
        unchanged topology never re-runs pathfinding;
        :meth:`_reference_route` is the uncached oracle the differential
        tests compare against.
        """
        if src == dst:
            return []
        key = (src, dst) if src < dst else (dst, src)
        cached = self._route_cache.get(key)
        if cached is not None:
            self.route_cache_hits += 1
            return cached
        self.route_cache_misses += 1
        links = self._reference_route(src, dst)
        self._route_cache[key] = links
        return links

    def _reference_route(self, src: str, dst: str) -> list[Link]:
        """Uncached pathfinding over the healthy subgraph (oracle).

        This is the actual shortest-path computation :meth:`route`
        memoizes.  ``tests/netsim/test_differential.py`` calls it directly
        to prove cached answers never go stale across epoch bumps.
        """
        if src == dst:
            return []
        if not self._node_up.get(src, False) or not self._node_up.get(dst, False):
            raise NoRouteError(f"endpoint down: {src if not self._node_up.get(src) else dst}")
        g = self._healthy_subgraph()
        try:
            path = nx.shortest_path(g, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no healthy route {src} -> {dst}") from exc
        return [self.link_between(u, v) for u, v in zip(path, path[1:])]

    def path_latency(self, links: Iterable[Link]) -> float:
        """Sum of one-way latencies along a route."""
        return sum(link.latency for link in links)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Topology nodes={len(self._node_up)} links={len(self._links)}>"
