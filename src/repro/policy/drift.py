"""Drift detection: declared placement state vs. facility reality.

The :class:`DriftDetector` walks every policy-managed dataset (via the
:class:`~repro.policy.engine.PolicyEngine` assignment pass), re-derives
the declared state and diffs it against what the stores, tape library and
HDFS namespace actually hold.  Every divergence becomes one typed
:class:`Drift` and a ``policy.drift`` event on the telemetry spine.

Primary-copy damage reuses the
:class:`~repro.durability.audit.ConsistencyAuditor` classifications: the
detector re-hashes the primary object and emits a real
:class:`~repro.durability.audit.Finding` (``lost_data`` /
``checksum_mismatch``) inside the drift, which the convergence daemon
hands straight to the :class:`~repro.durability.repair.RepairPlanner` —
the policy loop *subsumes* the planner's object-restore paths instead of
duplicating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.adal.api import AdalUrl, checksum_bytes
from repro.adal.errors import AdalError, ObjectNotFoundError
from repro.durability.audit import CHECKSUM_MISMATCH, LOST_DATA, Finding
from repro.metadata.records import DatasetRecord
from repro.policy.engine import PolicyEngine
from repro.policy.model import EXPIRED_TAG, PlacementRule
from repro.telemetry.events import WARNING
from repro.telemetry.hub import TelemetryHub

#: Drift taxonomy, in repair-priority order: heal the primary before
#: fanning copies out from it, reclaim space (surplus/expiry) before
#: charging quota for new copies.
DRIFT_KINDS = (
    "corrupt_primary",
    "expired",
    "surplus_replica",
    "missing_replica",
    "missing_tape",
    "missing_hdfs",
)

CORRUPT_PRIMARY = "corrupt_primary"
EXPIRED = "expired"
SURPLUS_REPLICA = "surplus_replica"
MISSING_REPLICA = "missing_replica"
MISSING_TAPE = "missing_tape"
MISSING_HDFS = "missing_hdfs"

_KIND_ORDER = {kind: index for index, kind in enumerate(DRIFT_KINDS)}


def hdfs_path(record: DatasetRecord) -> str:
    """The canonical HDFS staging path for a policy-managed dataset."""
    return f"/policy/{record.dataset_id}"


@dataclass(frozen=True)
class Drift:
    """One divergence between declared and actual placement state."""

    kind: str  # one of DRIFT_KINDS
    dataset_id: str
    rule: str
    detected_at: float
    #: The replica store involved (missing/surplus replica kinds).
    store: str = ""
    detail: str = ""
    #: Bytes the repair will move (bandwidth budgeting / quota charge).
    size: float = 0.0
    project: str = ""
    #: For ``corrupt_primary``: the auditor-classified finding to hand to
    #: the repair planner.
    finding: Optional[Finding] = None

    @property
    def key(self) -> tuple[str, str, str]:
        """Stable identity for retry bookkeeping across detection passes."""
        return (self.kind, self.dataset_id, self.store)


class DriftDetector:
    """Diffs declared placement state against stores, tape and HDFS.

    Parameters
    ----------
    engine:
        The policy engine (assignments, declared state, store registry).
    tape:
        Optional :class:`~repro.storage.tape.TapeLibrary`; without one,
        tape declarations are not checked.
    namenode:
        Optional HDFS namenode; without one, HDFS declarations are not
        checked.
    clock:
        Timestamp source for drift records (``lambda: sim.now``).
    hub:
        Optional telemetry hub for ``policy.drift`` events and the
        per-kind detection counters.
    """

    def __init__(
        self,
        engine: PolicyEngine,
        tape=None,
        namenode=None,
        clock: Optional[Callable[[], float]] = None,
        hub: Optional[TelemetryHub] = None,
    ):
        self.engine = engine
        self.tape = tape
        self.namenode = namenode
        self.clock = clock or (lambda: 0.0)
        self.hub = hub
        #: Records whose primary store was unreachable in the last pass.
        self.unreachable = 0
        self.passes = 0

    # -- detection ----------------------------------------------------------
    def detect(self, publish: bool = True) -> list[Drift]:
        """One full declared-vs-actual diff; returns drifts in repair order.

        ``publish`` mirrors every drift onto the event bus (the daemon
        silences it for its inner re-check rounds so one incident does
        not flood the ring buffer).
        """
        drifts: list[Drift] = []
        self.unreachable = 0
        for record, rule in self.engine.assignments():
            drifts.extend(self._diff_one(record, rule))
        drifts.sort(key=lambda d: (_KIND_ORDER[d.kind], d.dataset_id, d.store))
        self.passes += 1
        if publish and self.hub is not None:
            for drift in drifts:
                self.hub.bus.publish(
                    "policy.drift", subject=drift.dataset_id,
                    severity=WARNING, drift_kind=drift.kind, rule=drift.rule,
                    store=drift.store or None, detail=drift.detail)
        if self.hub is not None:
            for drift in drifts:
                self.hub.registry.counter(
                    "policy.drift_detected_total",
                    "Placement drifts detected, by kind",
                    kind=drift.kind).add(1)
        return drifts

    # -- internals ----------------------------------------------------------
    def _diff_one(self, record: DatasetRecord,
                  rule: PlacementRule) -> list[Drift]:
        now = self.clock()
        url = AdalUrl.parse(record.url)
        declared = self.engine.declared(record, rule)
        base = dict(dataset_id=record.dataset_id, rule=rule.name,
                    detected_at=now, size=float(record.size),
                    project=record.project)

        # Retention first: an expiring dataset shrinks its declaration
        # next pass, so nothing else is worth diffing this round.
        if (rule.lifetime is not None and EXPIRED_TAG not in record.tags
                and now - record.created >= rule.lifetime):
            return [Drift(EXPIRED, detail=(
                f"lifetime {rule.lifetime:g}s elapsed "
                f"(created {record.created:g})"), **base)]

        # Primary health, classified exactly as the consistency auditor
        # would (lost_data / checksum_mismatch findings).
        finding = self._primary_finding(record, url, now)
        if finding is not None:
            if finding.kind == "unreachable":
                self.unreachable += 1
                return []  # cannot assess this pass; do not guess
            # A damaged primary blocks replica fan-out (copying corrupt
            # bytes would propagate the damage) — repair it first.
            return [Drift(CORRUPT_PRIMARY, detail=finding.detail,
                          finding=finding, **base)]

        drifts: list[Drift] = []
        for store in declared.replica_stores:
            status = self._replica_status(store, url.path, record.checksum)
            if status != "healthy":
                drifts.append(Drift(MISSING_REPLICA, store=store,
                                    detail=f"replica {status}", **base))
        for store in sorted(set(self.engine.replica_stores)
                            - set(declared.replica_stores)):
            if self._replica_status(store, url.path, None) != "missing":
                drifts.append(Drift(SURPLUS_REPLICA, store=store,
                                    detail="copy beyond declared count",
                                    **base))
        if declared.tape and self.tape is not None \
                and not self.tape.contains(record.dataset_id):
            drifts.append(Drift(MISSING_TAPE, detail="no tape copy", **base))
        if declared.hdfs and self.namenode is not None \
                and not self.namenode.exists(hdfs_path(record)):
            drifts.append(Drift(MISSING_HDFS,
                                detail=f"not staged at {hdfs_path(record)}",
                                **base))
        return drifts

    def _primary_finding(self, record: DatasetRecord, url: AdalUrl,
                         now: float) -> Optional[Finding]:
        try:
            backend = self.engine.registry.resolve(url.store)
            data = backend.get(url.path)
        except ObjectNotFoundError:
            return Finding(
                kind=LOST_DATA, subject=record.url, detected_at=now,
                expected_checksum=record.checksum,
                dataset_id=record.dataset_id,
                detail="catalog entry with no bytes on storage")
        except AdalError as exc:
            return Finding(kind="unreachable", subject=record.url,
                           detected_at=now, detail=str(exc))
        actual = checksum_bytes(data)
        if actual != record.checksum:
            return Finding(
                kind=CHECKSUM_MISMATCH, subject=record.url, detected_at=now,
                expected_checksum=record.checksum,
                dataset_id=record.dataset_id,
                detail=(f"catalog {record.checksum[:12]}… != "
                        f"stored {actual[:12]}…"))
        return None

    def _replica_status(self, store: str, path: str,
                        expected: Optional[str]) -> str:
        """``healthy`` / ``stale`` (wrong bytes) / ``missing`` for one copy."""
        try:
            backend = self.engine.registry.resolve(store)
            data = backend.get(path)
        except AdalError:
            return "missing"
        if expected is None or checksum_bytes(data) == expected:
            return "healthy"
        return "stale"
