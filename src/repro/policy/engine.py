"""The policy engine: rule registry, assignment, quota bookkeeping.

The :class:`PolicyEngine` holds the facility's :class:`PlacementRule`\\ s
and answers two questions deterministically:

* *which rule governs this dataset?* — the highest-priority rule whose
  metadata query matches (:meth:`PolicyEngine.assign`), evaluated through
  the store's index-assisted query planner;
* *what is the declared state?* — the concrete replica-store / tape /
  HDFS targets one dataset must satisfy
  (:meth:`PolicyEngine.declared`), including the shrunken declaration of
  an expired dataset.

Only *real* objects are managed: records whose URL points into the
primary store with a path and whose checksum is a content hash
(:func:`is_real_object`).  Ingest registers simulated-only placements
(``checksum="sim-…"``, no bytes behind the URL) in the same catalog;
declaring replicas for those would flood the drift detector with
unreparable lost-primary findings.
"""

from __future__ import annotations

import string
from typing import Iterable, Optional

from repro.adal.api import AdalUrl, BackendRegistry
from repro.adal.errors import AdalError
from repro.metadata.records import DatasetRecord
from repro.metadata.store import MetadataStore
from repro.policy.model import (
    EXPIRED_TAG,
    DeclaredState,
    PlacementRule,
    PolicyError,
    QuotaBook,
)

_HEX_DIGITS = frozenset(string.hexdigits.lower())


def is_real_object(record: DatasetRecord) -> bool:
    """Whether a catalog record describes real, content-hashed bytes.

    The facility-wide checksum is sha256 hex (64 lowercase hex digits);
    simulated-only ingest placements use ``sim-…`` markers instead and
    are out of policy scope.
    """
    checksum = record.checksum or ""
    return len(checksum) == 64 and set(checksum) <= _HEX_DIGITS


class PolicyEngine:
    """Evaluates placement rules over the metadata catalog.

    Parameters
    ----------
    store:
        The metadata repository (rule scopes compile against its query
        planner).
    registry:
        ADAL backend registry holding the primary and replica stores.
    primary_store:
        Store name of the canonical copies (catalog URLs must point here
        for a dataset to be policy-managed).
    replica_stores:
        Replica-store names, in declaration order: a rule requiring
        ``disk_replicas=N`` claims the first ``N - 1`` of them.
    quotas:
        Per-community replica byte budgets (default: unlimited).
    """

    def __init__(
        self,
        store: MetadataStore,
        registry: BackendRegistry,
        primary_store: str = "lsdf",
        replica_stores: Iterable[str] = (),
        quotas: Optional[QuotaBook] = None,
    ):
        self.store = store
        self.registry = registry
        self.primary_store = primary_store
        self.replica_stores = tuple(replica_stores)
        self.quotas = quotas or QuotaBook()
        self.rules: list[PlacementRule] = []
        #: Datasets matched by the last :meth:`assignments` evaluation.
        self.last_managed = 0

    # -- rule registry ------------------------------------------------------
    def register(self, rule: PlacementRule) -> None:
        """Install one placement rule (duplicate names are rejected)."""
        if any(r.name == rule.name for r in self.rules):
            raise PolicyError(f"duplicate placement rule name {rule.name!r}")
        if rule.disk_replicas - 1 > len(self.replica_stores):
            raise PolicyError(
                f"rule {rule.name!r} declares {rule.disk_replicas} disk "
                f"copies but only {len(self.replica_stores)} replica "
                "store(s) are configured")
        self.rules.append(rule)

    def register_defaults(self, rules: Iterable[PlacementRule]) -> int:
        """Install a default rule set, skipping names already present."""
        installed = 0
        for rule in rules:
            if any(r.name == rule.name for r in self.rules):
                continue
            self.register(rule)
            installed += 1
        return installed

    # -- assignment ---------------------------------------------------------
    def manages(self, record: DatasetRecord) -> bool:
        """Whether this record is in policy scope (a real primary object)."""
        if not is_real_object(record):
            return False
        try:
            url = AdalUrl.parse(record.url)
        except AdalError:
            return False
        return url.store == self.primary_store and bool(url.path)

    def assign(self, record: DatasetRecord) -> Optional[PlacementRule]:
        """The governing rule for one dataset, or None when unmanaged.

        Highest priority wins; ties break on rule name so the assignment
        is deterministic across runs.
        """
        if not self.manages(record):
            return None
        matching = [rule for rule in self.rules if rule.scope.matches(record)]
        if not matching:
            return None
        return min(matching, key=lambda r: (-r.priority, r.name))

    def assignments(self) -> list[tuple[DatasetRecord, PlacementRule]]:
        """Every managed dataset with its governing rule, sorted by id.

        Each rule's scope runs through the metadata query planner
        (index-assisted); a dataset matched by several rules appears once
        under the winning one.
        """
        best: dict[str, tuple[DatasetRecord, PlacementRule]] = {}
        for rule in self.rules:
            for record in self.store.query(rule.scope):
                if not self.manages(record):
                    continue
                current = best.get(record.dataset_id)
                if current is None or (
                    (-rule.priority, rule.name)
                    < (-current[1].priority, current[1].name)
                ):
                    best[record.dataset_id] = (record, rule)
        self.last_managed = len(best)
        return [best[dataset_id] for dataset_id in sorted(best)]

    def declared(self, record: DatasetRecord,
                 rule: PlacementRule) -> DeclaredState:
        """The concrete targets ``record`` must satisfy under ``rule``.

        An expired dataset declares no extra disk replicas, no new tape
        copy and no HDFS staging — the primary (write-once) and any
        existing tape copy are retained, everything else is reclaimable.
        """
        if EXPIRED_TAG in record.tags:
            return DeclaredState()
        return DeclaredState(
            replica_stores=self.replica_stores[: rule.disk_replicas - 1],
            tape=rule.tape_copies > 0,
            hdfs=rule.hdfs_stage,
        )

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """Headline policy-engine numbers (machine-readable)."""
        return {
            "rules": len(self.rules),
            "replica_stores": list(self.replica_stores),
            "managed_datasets": self.last_managed,
            "quotas": self.quotas.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PolicyEngine rules={len(self.rules)} "
                f"replica_stores={self.replica_stores}>")
