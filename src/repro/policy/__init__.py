"""Declarative placement policy with self-healing convergence.

ROADMAP item 1 — the production-scale form of the paper's per-community
data-management policy (write-once ingest, disk/tape placement, tape
archival), generalised Rucio-style:

* :class:`~repro.policy.model.PlacementRule` declares what should exist
  ("2 disk replicas + 1 tape copy for microscopy; HDFS-local for DNA"),
  scoped by metadata queries, bounded by per-community
  :class:`~repro.policy.model.QuotaBook` budgets and lifetimes;
* the :class:`~repro.policy.engine.PolicyEngine` assigns every managed
  dataset its governing rule through the metadata query planner;
* the :class:`~repro.policy.drift.DriftDetector` diffs declared vs.
  actual replica state — reusing the consistency auditor's finding
  classifications for primary damage — and emits typed ``policy.drift``
  events;
* the :class:`~repro.policy.daemon.ConvergenceDaemon` (a
  bandwidth-budgeted simkit process) executes the difference through the
  resilience and durability layers until the facility is quiescent,
  with bounded retries and graceful degradation on quota or capacity
  exhaustion.

The same loop that enforces steady-state policy heals chaos incidents:
see ``Facility.policy_drill()`` and ``docs/placement.md``.
"""

from repro.policy.daemon import (
    ACTION_BY_KIND,
    ConvergenceDaemon,
    ConvergenceReport,
)
from repro.policy.drift import (
    CORRUPT_PRIMARY,
    DRIFT_KINDS,
    EXPIRED,
    MISSING_HDFS,
    MISSING_REPLICA,
    MISSING_TAPE,
    SURPLUS_REPLICA,
    Drift,
    DriftDetector,
    hdfs_path,
)
from repro.policy.engine import PolicyEngine, is_real_object
from repro.policy.model import (
    EXPIRED_TAG,
    DeclaredState,
    PlacementRule,
    PolicyError,
    QuotaBook,
    QuotaExceededError,
    community_defaults,
)

__all__ = [
    "ACTION_BY_KIND",
    "CORRUPT_PRIMARY",
    "ConvergenceDaemon",
    "ConvergenceReport",
    "DRIFT_KINDS",
    "DeclaredState",
    "Drift",
    "DriftDetector",
    "EXPIRED",
    "EXPIRED_TAG",
    "MISSING_HDFS",
    "MISSING_REPLICA",
    "MISSING_TAPE",
    "PlacementRule",
    "PolicyEngine",
    "PolicyError",
    "QuotaBook",
    "QuotaExceededError",
    "SURPLUS_REPLICA",
    "community_defaults",
    "hdfs_path",
    "is_real_object",
]
