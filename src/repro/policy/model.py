"""The declarative placement model: rules, quotas, community defaults.

A :class:`PlacementRule` states — Rucio-style — what the facility *should*
look like for the datasets its metadata query matches: how many healthy
disk copies exist (primary plus off-system replicas), whether a tape copy
is required, whether the dataset is staged HDFS-local for cluster
analysis, and for how long the placement is retained.  The rules are pure
declarations; the :class:`~repro.policy.drift.DriftDetector` diffs them
against reality and the
:class:`~repro.policy.daemon.ConvergenceDaemon` executes the difference.

Replica space is accounted per community through a :class:`QuotaBook` —
the per-project byte budgets of the paper's user agreements.  When a
community's budget is exhausted the daemon degrades gracefully (the copy
is skipped and reported, nothing crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.metadata.query import Q, Query

#: Tag placed on datasets whose retention lifetime has elapsed.  An
#: expired dataset keeps its write-once primary copy and any tape copy
#: (tape is the archival medium) but declares zero extra disk replicas,
#: so the convergence loop reclaims its replica-store space.
EXPIRED_TAG = "expired"


class PolicyError(Exception):
    """Bad placement-rule definitions or policy-engine usage."""


class QuotaExceededError(PolicyError):
    """A replica copy would overrun its community's byte budget."""


@dataclass(frozen=True)
class PlacementRule:
    """One declarative placement statement.

    Examples: "2 disk replicas + 1 tape copy for microscopy data",
    "HDFS-local staging for DNA sequencing output".

    Parameters
    ----------
    name:
        Unique rule name (duplicate registrations are rejected).
    scope:
        Metadata :class:`~repro.metadata.query.Query` selecting the
        datasets this rule governs — evaluated through the store's
        index-assisted query planner, exactly like periodic rules.
    disk_replicas:
        Total healthy disk copies required, *including* the primary
        (``2`` means primary + one replica-store copy).
    tape_copies:
        ``1`` to require a tape copy, ``0`` for none.
    hdfs_stage:
        Require the dataset staged into the analysis cluster's HDFS
        (the paper's "copy the screen data onto the cluster" step).
    lifetime:
        Retention in simulated seconds from the record's ``created``
        time; ``None`` keeps the placement forever.  On expiry the
        dataset is tagged :data:`EXPIRED_TAG` and its extra disk
        replicas are reclaimed.
    priority:
        When several rules match one dataset the highest priority wins
        (ties broken by rule name, so assignment is deterministic).
    """

    name: str
    scope: Query
    disk_replicas: int = 1
    tape_copies: int = 0
    hdfs_stage: bool = False
    lifetime: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("placement rule needs a name")
        if self.disk_replicas < 1:
            raise PolicyError(
                f"rule {self.name!r}: disk_replicas must be >= 1 "
                "(the primary copy always counts)")
        if self.tape_copies not in (0, 1):
            raise PolicyError(
                f"rule {self.name!r}: tape_copies must be 0 or 1 "
                "(the library holds one archival copy per file id)")
        if self.lifetime is not None and self.lifetime <= 0:
            raise PolicyError(f"rule {self.name!r}: lifetime must be > 0")


@dataclass(frozen=True)
class DeclaredState:
    """What one rule declares for one dataset, resolved to concrete targets."""

    #: Replica-store names that must hold a healthy copy.
    replica_stores: tuple[str, ...] = ()
    #: Whether a tape copy is required.
    tape: bool = False
    #: Whether an HDFS staging is required.
    hdfs: bool = False


class QuotaBook:
    """Per-community byte budgets for replica space.

    Tracks bytes *charged* by the convergence daemon when it lays down a
    replica copy and *released* when a surplus copy is reclaimed.  A
    project without an explicit limit uses ``default_limit``
    (``None`` = unlimited).
    """

    def __init__(self, limits: Optional[dict[str, float]] = None,
                 default_limit: Optional[float] = None):
        self._limits: dict[str, float] = dict(limits or {})
        self.default_limit = default_limit
        self._used: dict[str, float] = {}

    def limit(self, project: str) -> Optional[float]:
        """The byte budget for a project (None = unlimited)."""
        return self._limits.get(project, self.default_limit)

    def set_limit(self, project: str, limit: Optional[float]) -> None:
        """Set (or clear, with None) one project's budget."""
        if limit is None:
            self._limits.pop(project, None)
        else:
            self._limits[project] = float(limit)

    def used(self, project: str) -> float:
        """Bytes currently charged against a project."""
        return self._used.get(project, 0.0)

    def headroom(self, project: str) -> Optional[float]:
        """Remaining budget (None = unlimited)."""
        limit = self.limit(project)
        if limit is None:
            return None
        return max(0.0, limit - self.used(project))

    def charge(self, project: str, nbytes: float) -> None:
        """Account ``nbytes`` of new replica space to a project.

        Raises :class:`QuotaExceededError` — without charging — when the
        budget would be overrun.
        """
        limit = self.limit(project)
        if limit is not None and self.used(project) + nbytes > limit:
            raise QuotaExceededError(
                f"project {project!r}: {nbytes:.3g} B replica copy would "
                f"exceed quota ({self.used(project):.3g}/{limit:.3g} B used)")
        self._used[project] = self.used(project) + float(nbytes)

    def release(self, project: str, nbytes: float) -> None:
        """Return reclaimed replica space to a project's budget."""
        self._used[project] = max(0.0, self.used(project) - float(nbytes))

    def snapshot(self) -> dict[str, dict[str, Optional[float]]]:
        """Per-project ``{used, limit}`` for reporting, sorted by name."""
        projects = sorted(set(self._used) | set(self._limits))
        return {
            name: {"used": self.used(name), "limit": self.limit(name)}
            for name in projects
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<QuotaBook projects={len(self.snapshot())}>"


def community_defaults(replica_store_count: int = 2) -> list[PlacementRule]:
    """The paper's per-community default placements.

    Encodes the data-management policy of section IV for the four LSDF
    communities, scaled down to the replica stores actually configured
    (``replica_store_count`` caps ``disk_replicas`` at 1 + that count):

    * **microscopy** (the zebrafish screens): irreplaceable instrument
      output — two disk copies plus a tape copy;
    * **dna** sequencing: re-analysed on the cluster — HDFS-local
      staging plus a tape copy;
    * **katrin** / **anka**: detector archives — one disk copy with an
      archival tape copy.
    """
    replicas = max(1, min(2, 1 + replica_store_count))
    return [
        PlacementRule("microscopy-default", Q.project("zebrafish"),
                      disk_replicas=replicas, tape_copies=1, priority=10),
        PlacementRule("dna-default", Q.project("dna"),
                      disk_replicas=1, tape_copies=1, hdfs_stage=True,
                      priority=10),
        PlacementRule("katrin-default", Q.project("katrin"),
                      disk_replicas=1, tape_copies=1, priority=10),
        PlacementRule("anka-default", Q.project("anka"),
                      disk_replicas=1, tape_copies=1, priority=10),
    ]
