"""The self-healing convergence daemon.

A background simkit process (bandwidth-budgeted like the integrity
scrubber) that repeatedly diffs declared vs. actual placement state and
executes the difference until the facility is quiescent:

* ``corrupt_primary`` drifts are handed — as real auditor findings — to
  the :class:`~repro.durability.repair.RepairPlanner`, subsuming its
  object-restore decision tree behind the rules;
* ``missing_replica`` copies move bytes at the configured bandwidth
  budget through the resilience layer (retries on transient backend
  faults, dead-lettering when exhausted) under per-community quotas;
* ``missing_tape`` archives through the tape library (mount/write time
  is simulated), ``missing_hdfs`` stages through the analysis cluster;
* ``expired`` datasets are tagged, which shrinks their declaration so
  the next round reclaims their surplus replicas.

Re-convergence is **bounded**: a drift that keeps failing accrues
strikes and is abandoned after ``max_retries`` (dead-lettered, with a
``policy.gave_up`` event), and quota/capacity exhaustion degrades
gracefully — the copy is skipped and reported, the pass still
terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.adal.api import AdalUrl, checksum_bytes
from repro.adal.errors import BackendUnavailableError
from repro.durability.repair import RepairPlanner
from repro.policy.drift import (
    CORRUPT_PRIMARY,
    EXPIRED,
    MISSING_HDFS,
    MISSING_REPLICA,
    MISSING_TAPE,
    SURPLUS_REPLICA,
    Drift,
    DriftDetector,
)
from repro.policy.engine import PolicyEngine
from repro.policy.model import EXPIRED_TAG, QuotaExceededError
from repro.simkit.core import Simulator
from repro.simkit.events import Event
from repro.telemetry.events import ERROR, INFO, WARNING
from repro.telemetry.hub import TelemetryHub

#: Human-readable action label per drift kind (metrics/report rows).
ACTION_BY_KIND = {
    CORRUPT_PRIMARY: "repair_primary",
    EXPIRED: "expire",
    SURPLUS_REPLICA: "reclaim_replica",
    MISSING_REPLICA: "copy_replica",
    MISSING_TAPE: "archive_tape",
    MISSING_HDFS: "stage_hdfs",
}


class _ActionFailed(Exception):
    """Internal: one convergence action could not complete this round."""


@dataclass
class ConvergenceReport:
    """Outcome of one full convergence pass."""

    started: float
    finished: float
    rounds: int = 0
    drifts_seen: int = 0
    #: Successful actions tallied by label (``copy_replica`` …).
    actions: dict[str, int] = field(default_factory=dict)
    repaired: int = 0
    failed: int = 0
    quota_skipped: int = 0
    abandoned: int = 0
    #: True when no actionable drift remained at the end of the pass.
    converged: bool = False
    #: True when the pass ended with abandoned or quota-blocked work —
    #: quiescent only in the degraded sense.
    degraded: bool = False

    def note_action(self, label: str) -> None:
        """Record one successful action."""
        self.actions[label] = self.actions.get(label, 0) + 1
        self.repaired += 1


class ConvergenceDaemon:
    """Plans and executes the declared-vs-actual placement difference.

    Parameters
    ----------
    sim:
        The facility simulator.
    engine, detector:
        The policy engine and its drift detector.
    planner:
        The facility :class:`~repro.durability.repair.RepairPlanner`;
        ``corrupt_primary`` drifts are repaired through it.
    resilience:
        Optional :class:`~repro.resilience.kit.ResilienceKit`: replica
        reads/writes retry on transient backend faults through its
        policy and abandoned work spills to its dead-letter queue.
    tape:
        Optional tape library for ``missing_tape`` repairs.
    stager:
        Optional callable ``(record) -> Event`` staging a dataset into
        HDFS (the facility wires ``load_into_hdfs``).
    bandwidth:
        Convergence budget in bytes/second of simulated time; every
        byte-moving action costs ``size / bandwidth`` before it lands
        (convergence competes with production I/O, like scrubbing).
    interval:
        Daemon sleep between passes once :meth:`start`\\ ed.
    max_retries:
        Strikes before a persistently failing drift is abandoned
        (dead-lettered + ``policy.gave_up``).
    max_rounds:
        Re-detection rounds per pass (a terminating bound even when
        every round makes progress).
    enabled:
        Master switch: when ``False`` passes only detect and report —
        no actions are executed (the ablation arm).
    """

    def __init__(
        self,
        sim: Simulator,
        engine: PolicyEngine,
        detector: DriftDetector,
        planner: Optional[RepairPlanner] = None,
        resilience=None,
        tape=None,
        stager: Optional[Callable[..., Event]] = None,
        bandwidth: float = 500e6,
        interval: float = 6 * 3600.0,
        max_retries: int = 3,
        max_rounds: int = 8,
        enabled: bool = True,
    ):
        if bandwidth <= 0:
            raise ValueError("convergence bandwidth must be > 0")
        if interval <= 0:
            raise ValueError("convergence interval must be > 0")
        if max_retries < 1 or max_rounds < 1:
            raise ValueError("max_retries and max_rounds must be >= 1")
        self.sim = sim
        self.engine = engine
        self.detector = detector
        self.planner = planner
        self.resilience = resilience
        self.tape = tape
        self.stager = stager
        self.bandwidth = float(bandwidth)
        self.interval = float(interval)
        self.max_retries = int(max_retries)
        self.max_rounds = int(max_rounds)
        self.enabled = enabled
        self.reports: list[ConvergenceReport] = []
        self._strikes: dict[tuple, int] = {}
        self._abandoned: set[tuple] = set()
        self._rng = sim.random.spawn("policy.converge")
        self._daemon_running = False
        self._hub = TelemetryHub.for_sim(sim)
        reg = self._hub.registry
        self.passes_meter = reg.counter(
            "policy.converge_passes_total", "Convergence passes completed")
        self.rounds_meter = reg.counter(
            "policy.converge_rounds_total", "Action rounds executed")
        self.quota_skip_meter = reg.counter(
            "policy.quota_skips_total",
            "Replica copies skipped on exhausted community quota")
        self.gave_up_meter = reg.counter(
            "policy.gave_up_total",
            "Drifts abandoned after bounded re-convergence retries")
        self.pass_duration = reg.summary(
            "policy.converge_duration_seconds",
            "Duration of one convergence pass", unit="seconds")
        reg.gauge_fn("policy.enabled",
                     lambda: 1.0 if self.enabled else 0.0,
                     "Whether the placement-policy layer is active")
        reg.gauge_fn("policy.rules", lambda: float(len(self.engine.rules)),
                     "Placement rules installed")
        reg.gauge_fn("policy.managed_datasets",
                     lambda: float(self.engine.last_managed),
                     "Datasets governed by placement rules (last evaluation)")
        reg.gauge_fn("policy.abandoned_keys",
                     lambda: float(len(self._abandoned)),
                     "Drifts abandoned after bounded retries")

    # -- public API ---------------------------------------------------------
    def start(self) -> None:
        """Start the periodic convergence daemon (idempotent).

        Like the HSM and scrub daemons this keeps the event queue
        non-empty forever — run the simulation with a horizon.
        """
        if not self._daemon_running:
            self._daemon_running = True
            self.sim.process(self._daemon(), name="policy.converge")

    def converge_once(self) -> Event:
        """Run one full convergence pass now; the event's value is the
        :class:`ConvergenceReport`."""
        return self.sim.process(self._pass(), name="policy.converge_pass")

    def forgive(self) -> int:
        """Clear abandoned drifts and strike counts (operator override);
        returns how many abandoned keys were forgiven."""
        forgiven = len(self._abandoned)
        self._abandoned.clear()
        self._strikes.clear()
        return forgiven

    @property
    def abandoned(self) -> list[tuple]:
        """Abandoned drift keys, sorted (kind, dataset, store)."""
        return sorted(self._abandoned)

    # -- the convergence loop -----------------------------------------------
    def _daemon(self) -> Generator:
        while True:
            yield self.converge_once()
            yield self.sim.timeout(self.interval)

    def _pass(self) -> Generator:
        report = ConvergenceReport(started=self.sim.now, finished=self.sim.now)
        for round_index in range(self.max_rounds):
            drifts = [d for d in self.detector.detect(publish=round_index == 0)
                      if d.key not in self._abandoned]
            if not drifts:
                report.converged = True
                break
            report.rounds += 1
            self.rounds_meter.add(1)
            report.drifts_seen += len(drifts)
            if not self.enabled:
                break  # detection-only arm: report the drift, touch nothing
            progress = 0
            for drift in drifts:
                status = yield from self._execute(drift, report)
                if status == "repaired":
                    progress += 1
            if progress == 0:
                break  # every remaining drift is blocked; do not spin
        if not report.converged:
            remaining = [d for d in self.detector.detect(publish=False)
                         if d.key not in self._abandoned]
            report.converged = not remaining
        report.abandoned = len(self._abandoned)
        report.degraded = bool(self._abandoned) or report.quota_skipped > 0
        report.finished = self.sim.now
        self.reports.append(report)
        self.passes_meter.add(1)
        self.pass_duration.record(report.finished - report.started)
        self._hub.bus.publish(
            "policy.converged" if report.converged else "policy.diverged",
            subject=f"pass-{len(self.reports)}",
            severity=INFO if report.converged else WARNING,
            rounds=report.rounds, repaired=report.repaired,
            failed=report.failed, quota_skipped=report.quota_skipped,
            abandoned=report.abandoned, degraded=report.degraded)
        return report

    # -- action execution ---------------------------------------------------
    def _execute(self, drift: Drift, report: ConvergenceReport) -> Generator:
        label = ACTION_BY_KIND[drift.kind]
        reg = self._hub.registry
        try:
            yield from self._dispatch(drift)
        except QuotaExceededError as exc:
            report.quota_skipped += 1
            self.quota_skip_meter.add(1)
            reg.counter("policy.actions_total",
                        "Convergence actions by label and status",
                        action=label, status="quota_skipped").add(1)
            self._hub.bus.publish(
                "policy.quota_exhausted", subject=drift.project,
                severity=WARNING, dataset=drift.dataset_id,
                store=drift.store, detail=str(exc))
            return "quota_skipped"
        except Exception as exc:
            # Failure isolation: one stuck drift must not wedge the pass.
            report.failed += 1
            reg.counter("policy.actions_total",
                        "Convergence actions by label and status",
                        action=label, status="failed").add(1)
            self._strike(drift, exc)
            return "failed"
        self._strikes.pop(drift.key, None)
        report.note_action(label)
        reg.counter("policy.actions_total",
                    "Convergence actions by label and status",
                    action=label, status="repaired").add(1)
        return "repaired"

    def _strike(self, drift: Drift, exc: BaseException) -> None:
        strikes = self._strikes.get(drift.key, 0) + 1
        self._strikes[drift.key] = strikes
        if strikes < self.max_retries:
            return
        self._abandoned.add(drift.key)
        self.gave_up_meter.add(1)
        detail = f"{type(exc).__name__}: {exc}"
        if self.resilience is not None:
            self.resilience.dlq.push(
                payload={"drift": drift.kind, "dataset": drift.dataset_id,
                         "store": drift.store, "rule": drift.rule},
                error=f"convergence abandoned after {strikes} attempts: "
                      f"{detail}",
                attempts=[(self.sim.now, detail)],
                source="policy.converge",
                time=self.sim.now,
                nbytes=drift.size,
            )
        self._hub.bus.publish(
            "policy.gave_up", subject=drift.dataset_id, severity=ERROR,
            drift_kind=drift.kind, store=drift.store, attempts=strikes,
            detail=detail)

    def _retry(self, fn: Callable, label: str):
        """Run a backend call through the resilience retry policy."""
        if self.resilience is None or not self.resilience.enabled:
            return fn()
        return self.resilience.policy.run_sync(
            fn, retry_on=(BackendUnavailableError,), rng=self._rng,
            label=label)

    def _dispatch(self, drift: Drift) -> Generator:
        if drift.kind == CORRUPT_PRIMARY:
            yield from self._repair_primary(drift)
        elif drift.kind == EXPIRED:
            self._expire(drift)
        elif drift.kind == SURPLUS_REPLICA:
            self._reclaim_replica(drift)
        elif drift.kind == MISSING_REPLICA:
            yield from self._copy_replica(drift)
        elif drift.kind == MISSING_TAPE:
            yield from self._archive_tape(drift)
        elif drift.kind == MISSING_HDFS:
            yield from self._stage_hdfs(drift)
        else:
            raise _ActionFailed(f"no executor for drift kind {drift.kind!r}")

    def _repair_primary(self, drift: Drift) -> Generator:
        if self.planner is None:
            raise _ActionFailed("no repair planner wired")
        if drift.size > 0:
            yield self.sim.timeout(drift.size / self.bandwidth)
        outcome = yield from self.planner.repair_object(drift.finding)
        if not outcome.repaired:
            raise _ActionFailed(
                f"planner could not repair: {outcome.detail or outcome.action}")

    def _expire(self, drift: Drift) -> None:
        self.engine.store.tag(drift.dataset_id, EXPIRED_TAG)
        self._hub.bus.publish(
            "policy.expired", subject=drift.dataset_id, severity=INFO,
            rule=drift.rule, detail=drift.detail)

    def _reclaim_replica(self, drift: Drift) -> None:
        record = self.engine.store.get(drift.dataset_id)
        path = AdalUrl.parse(record.url).path
        backend = self.engine.registry.resolve(drift.store)
        if self._retry(lambda: backend.exists(path),
                       label=f"policy.reclaim_check:{drift.dataset_id}"):
            self._retry(lambda: backend.delete(path),
                        label=f"policy.reclaim_delete:{drift.dataset_id}")
            self.engine.quotas.release(record.project, record.size)

    def _copy_replica(self, drift: Drift) -> Generator:
        record = self.engine.store.get(drift.dataset_id)
        url = AdalUrl.parse(record.url)
        primary = self.engine.registry.resolve(self.engine.primary_store)
        data = self._retry(lambda: primary.get(url.path),
                           label=f"policy.read:{drift.dataset_id}")
        if checksum_bytes(data) != record.checksum:
            raise _ActionFailed(
                "primary bytes no longer match the catalog checksum "
                "(repair the primary first)")
        target = self.engine.registry.resolve(drift.store)
        replacing = target.exists(url.path)
        if not replacing:
            # Charge before moving bytes — cheaper to refuse now than
            # after the simulated transfer.  Replacing a stale copy is
            # quota-neutral (its bytes were charged when first written).
            self.engine.quotas.charge(record.project, len(data))
        if len(data) > 0:
            yield self.sim.timeout(len(data) / self.bandwidth)
        try:
            if replacing:
                target.delete(url.path)
            self._retry(lambda: target.put(url.path, data),
                        label=f"policy.write:{drift.dataset_id}")
        except Exception:
            if not replacing:
                self.engine.quotas.release(record.project, len(data))
            raise

    def _archive_tape(self, drift: Drift) -> Generator:
        if self.tape is None:
            raise _ActionFailed("no tape library wired")
        if self.tape.contains(drift.dataset_id):
            return  # raced with another archival path: already satisfied
        yield self.tape.archive(drift.dataset_id, drift.size)

    def _stage_hdfs(self, drift: Drift) -> Generator:
        if self.stager is None:
            raise _ActionFailed("no HDFS stager wired")
        record = self.engine.store.get(drift.dataset_id)
        yield self.stager(record)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> dict:
        """Headline convergence numbers (machine-readable)."""
        tally: dict[str, int] = {}
        for report in self.reports:
            for label, count in report.actions.items():
                tally[label] = tally.get(label, 0) + count
        last = self.reports[-1] if self.reports else None
        return {
            "enabled": self.enabled,
            "passes": len(self.reports),
            "actions": tally,
            "quota_skipped": sum(r.quota_skipped for r in self.reports),
            "failed": sum(r.failed for r in self.reports),
            "abandoned": len(self._abandoned),
            "last_converged": last.converged if last else None,
            "last_degraded": last.degraded if last else None,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ConvergenceDaemon enabled={self.enabled} "
                f"passes={len(self.reports)} "
                f"abandoned={len(self._abandoned)}>")
