"""The facility-wide resilience layer.

The paper sells the LSDF on resilience — redundant 10 GE routers,
replicated HDFS, tape backup — and the chaos framework injects the matching
faults.  This package is what lets the data paths *survive* them:

* :class:`~repro.resilience.policy.RetryPolicy` — capped exponential
  backoff with deterministic jitter from the seeded random tree;
* :func:`~repro.resilience.timeout.with_timeout` — deadline wrapper over
  ``sim.any_of``;
* :class:`~repro.resilience.breaker.CircuitBreaker` /
  :class:`~repro.resilience.breaker.BreakerBoard` — per-target
  closed → open → half-open automata with a transition log;
* :class:`~repro.resilience.dlq.DeadLetterQueue` — exhausted work is
  captured with its attempt history, never silently dropped;
* :class:`~repro.resilience.kit.ResilienceKit` — the facility-wide bundle
  of all of the above plus aggregate counters.

See ``docs/resilience.md`` for the model and the chaos incident kinds that
exercise it.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.resilience.dlq import DeadLetter, DeadLetterQueue
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    RetriesExhaustedError,
)
from repro.resilience.kit import ResilienceKit
from repro.resilience.policy import RetryPolicy
from repro.resilience.timeout import with_timeout

__all__ = [
    "BreakerBoard",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadLetter",
    "DeadLetterQueue",
    "DeadlineExceededError",
    "HALF_OPEN",
    "OPEN",
    "ResilienceError",
    "ResilienceKit",
    "RetriesExhaustedError",
    "RetryPolicy",
    "with_timeout",
]
