"""The dead-letter queue: exhausted work is captured, never dropped.

When the data path gives up on a unit of work (a frame, an object, a batch)
after retries and failover, the payload goes to a :class:`DeadLetterQueue`
together with the final error and the full attempt history — so a chaos run
can prove *zero silent loss*: every unit is either delivered or sits in the
DLQ with an audit trail, ready for operator-driven replay via
:meth:`~DeadLetterQueue.drain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.telemetry.events import WARNING, EventBus


@dataclass
class DeadLetter:
    """One unit of work the data path gave up on."""

    payload: Any
    error: str
    #: ``(time, message)`` for every failed attempt, in order.
    attempts: list[tuple[float, str]] = field(default_factory=list)
    source: str = ""
    time: float = 0.0
    nbytes: float = 0.0


class DeadLetterQueue:
    """Append-only queue of :class:`DeadLetter` records.

    When ``capacity`` is set, the queue is bounded: pushing past capacity
    evicts the *oldest* entry into a persistent ``evicted_count`` /
    ``evicted_bytes`` tally (and a ``dlq.evict`` event), so a sustained
    overload cannot grow memory without bound while zero-silent-loss
    accounting still balances — ``pushed_total`` always equals
    ``depth + evicted_count + drained``.  Default is unbounded.
    """

    def __init__(
        self,
        name: str = "dlq",
        bus: Optional[EventBus] = None,
        capacity: Optional[int] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.name = name
        #: Optional facility event bus: every push publishes a
        #: ``dlq.spill`` event so chaos runs can watch loss as it happens.
        self.bus = bus
        #: Maximum queued entries before oldest-first eviction (None = ∞).
        self.capacity = capacity
        self._entries: list[DeadLetter] = []
        self._total_bytes = 0.0
        self._pushed_total = 0
        self._evicted_count = 0
        self._evicted_bytes = 0.0

    def push(
        self,
        payload: Any,
        error: str,
        attempts: list[tuple[float, str]],
        source: str = "",
        time: float = 0.0,
        nbytes: float = 0.0,
    ) -> DeadLetter:
        """Capture one exhausted unit of work."""
        letter = DeadLetter(
            payload=payload,
            error=error,
            attempts=list(attempts),
            source=source,
            time=time,
            nbytes=float(nbytes),
        )
        self._entries.append(letter)
        self._total_bytes += letter.nbytes
        self._pushed_total += 1
        if self.capacity is not None and len(self._entries) > self.capacity:
            evicted = self._entries.pop(0)
            self._total_bytes -= evicted.nbytes
            self._evicted_count += 1
            self._evicted_bytes += evicted.nbytes
            if self.bus is not None:
                self.bus.publish(
                    "dlq.evict", subject=evicted.source or self.name,
                    severity=WARNING, error=evicted.error,
                    nbytes=evicted.nbytes, evicted_total=self._evicted_count)
        if self.bus is not None:
            self.bus.publish(
                "dlq.spill", subject=source or self.name, severity=WARNING,
                error=error, nbytes=letter.nbytes, depth=len(self._entries))
        return letter

    @property
    def depth(self) -> int:
        """Number of dead letters currently queued."""
        return len(self._entries)

    @property
    def total_bytes(self) -> float:
        """Payload bytes represented by the queued dead letters."""
        return self._total_bytes

    @property
    def pushed_total(self) -> int:
        """Every push ever made, whether still queued, evicted or drained."""
        return self._pushed_total

    @property
    def evicted_count(self) -> int:
        """Entries evicted (oldest first) to honour ``capacity``."""
        return self._evicted_count

    @property
    def evicted_bytes(self) -> float:
        """Payload bytes represented by evicted entries."""
        return self._evicted_bytes

    def items(self) -> list[DeadLetter]:
        """The queued dead letters, oldest first (non-destructive)."""
        return list(self._entries)

    def by_source(self) -> dict[str, int]:
        """Dead-letter counts grouped by source label."""
        counts: dict[str, int] = {}
        for letter in self._entries:
            counts[letter.source] = counts.get(letter.source, 0) + 1
        return counts

    def drain(self) -> list[DeadLetter]:
        """Remove and return everything (operator replay hook)."""
        entries, self._entries = self._entries, []
        self._total_bytes = 0.0
        return entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DeadLetterQueue {self.name} depth={len(self._entries)}>"
