"""Deadline wrapper for simulation events.

:func:`with_timeout` races an event against a timer via ``sim.any_of`` and
returns a process-event the caller can ``yield`` exactly like the original:
it carries the event's value on success, re-raises the event's exception on
failure, and fails with
:class:`~repro.resilience.errors.DeadlineExceededError` when the deadline
wins.  A timed-out event is *abandoned but defused*: if it later fails, the
failure is acknowledged instead of escalating out of the kernel.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.resilience.errors import DeadlineExceededError
from repro.simkit.core import Simulator
from repro.simkit.events import Event


def _defuse(event: Event) -> None:
    """Acknowledge a possibly-failed abandoned event."""
    event.defused = True


def with_timeout(
    sim: Simulator, event: Event, seconds: float, label: Optional[str] = None
) -> Event:
    """Wrap ``event`` with a deadline of ``seconds`` simulated seconds.

    Returns a process-event that succeeds/fails exactly as ``event`` does,
    unless the deadline expires first — then it fails with
    :class:`DeadlineExceededError` and the late event is defused.
    """
    if seconds <= 0:
        raise ValueError("timeout must be > 0 seconds")
    name = label or event.name or "operation"

    def guard() -> Generator:
        timer = sim.timeout(seconds)
        # AnyOf fails fast if `event` fails, re-raising here; otherwise it
        # succeeds as soon as either side triggers.
        yield sim.any_of([event, timer])
        if event.processed and event.ok:
            return event.value
        event.callbacks.append(_defuse)
        raise DeadlineExceededError(seconds, name)

    return sim.process(guard(), name=f"timeout:{name}")
