"""Facility-wide resilience state: one policy, one breaker board, one DLQ.

The :class:`ResilienceKit` is what the :class:`~repro.core.facility.Facility`
hands to every data-path consumer (transfer agents, the ADAL client): a
shared :class:`~repro.resilience.policy.RetryPolicy`, a per-target
:class:`~repro.resilience.breaker.BreakerBoard` on the simulator clock, the
facility :class:`~repro.resilience.dlq.DeadLetterQueue`, a dedicated random
substream for jitter, and the aggregate counters the "Resilience" report
section renders.
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.resilience.dlq import DeadLetterQueue
from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.telemetry.events import INFO, WARNING
from repro.telemetry.hub import TelemetryHub

#: Breaker state encoded for the ``resilience.breaker_state`` gauge.
_STATE_CODE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

#: Event kind published for each breaker transition, by new state.
_TRANSITION_KIND = {OPEN: "breaker.trip", HALF_OPEN: "breaker.probe",
                    CLOSED: "breaker.close"}


class ResilienceKit:
    """Shared retry/breaker/DLQ state for one facility.

    Parameters
    ----------
    sim:
        The facility simulator (clock + root random source).
    policy:
        Retry policy applied by consumers (default: :class:`RetryPolicy`).
    breaker_failure_threshold, breaker_reset_timeout:
        Shared circuit-breaker configuration.
    breaker_probe_timeout:
        Half-open probe lease (seconds): an unresolved probe older than
        this is reclaimed by the next caller instead of starving recovery
        (None = the reset timeout).
    dlq_capacity:
        Bound of the shared dead-letter queue (None = unbounded).
    enabled:
        When ``False`` consumers fall back to their pre-resilience
        behaviour — the ablation arm of the E13 benchmark.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 120.0,
        breaker_probe_timeout: Optional[float] = None,
        dlq_capacity: Optional[int] = None,
        enabled: bool = True,
    ):
        self.sim = sim
        self.enabled = enabled
        self.policy = policy or RetryPolicy()
        self.rng = sim.random.spawn("resilience")
        self._hub = TelemetryHub.for_sim(sim)
        self.breakers = BreakerBoard(
            clock=lambda: sim.now,
            failure_threshold=breaker_failure_threshold,
            reset_timeout=breaker_reset_timeout,
            probe_timeout=breaker_probe_timeout,
            on_transition=self._on_breaker_transition,
        )
        self.dlq = DeadLetterQueue(name="facility-dlq", bus=self._hub.bus,
                                   capacity=dlq_capacity)
        reg = self._hub.registry
        self.retries = reg.counter(
            "resilience.retries_total", "Retry attempts across consumers")
        self.reroutes = reg.counter(
            "resilience.reroutes_total", "Failovers to an alternate target")
        self.timeouts = reg.counter(
            "resilience.timeouts_total", "Operations cut off by a deadline")
        #: Bytes that landed successfully after at least one retry.
        self.recovered_bytes = reg.counter(
            "resilience.recovered_bytes_total",
            "Bytes delivered after at least one retry", unit="bytes")
        #: Bytes that ended in the dead-letter queue.
        self.lost_bytes = reg.counter(
            "resilience.lost_bytes_total", "Bytes spilled to the DLQ",
            unit="bytes")
        self.breaker_transitions = reg.counter(
            "resilience.breaker_transitions_total",
            "Circuit-breaker state changes")
        reg.gauge_fn("resilience.dlq_depth", lambda: float(self.dlq.depth),
                     "Dead letters currently queued")
        reg.gauge_fn("resilience.dlq_bytes", lambda: self.dlq.total_bytes,
                     "Payload bytes held by the DLQ", unit="bytes")
        reg.gauge_fn("resilience.dlq_evicted",
                     lambda: float(self.dlq.evicted_count),
                     "Dead letters evicted by the capacity bound")
        reg.gauge_fn("resilience.dlq_evicted_bytes",
                     lambda: self.dlq.evicted_bytes,
                     "Payload bytes evicted by the capacity bound",
                     unit="bytes")
        reg.gauge_fn("resilience.enabled",
                     lambda: 1.0 if self.enabled else 0.0,
                     "Whether the resilience layer is active")

    def _on_breaker_transition(self, breaker: CircuitBreaker, when: float,
                               old: str, new: str) -> None:
        """Mirror a breaker state change onto the telemetry spine."""
        self.breaker_transitions.add(1)
        # Read the raw state in the gauge: the `state` property can itself
        # transition (open -> half-open), and collection must stay
        # side-effect free.
        self._hub.registry.gauge_fn(
            "resilience.breaker_state",
            lambda b=breaker: _STATE_CODE[b._state],
            "Breaker state (0=closed, 1=half-open, 2=open)",
            target=breaker.target)
        self._hub.bus.publish(
            _TRANSITION_KIND[new], subject=breaker.target,
            severity=WARNING if new == OPEN else INFO,
            old=old, new=new, failures=breaker.failures)

    def stats(self) -> dict:
        """Headline resilience numbers (machine-readable)."""
        return {
            "enabled": self.enabled,
            "retries": int(self.retries.value),
            "reroutes": int(self.reroutes.value),
            "timeouts": int(self.timeouts.value),
            "breaker_transitions": len(self.breakers.transitions()),
            "breakers_open": sorted(self.breakers.open_targets()),
            "dlq_depth": self.dlq.depth,
            "dlq_evicted": self.dlq.evicted_count,
            "recovered_bytes": self.recovered_bytes.value,
            "lost_bytes": self.lost_bytes.value,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ResilienceKit enabled={self.enabled} "
            f"retries={int(self.retries.value)} dlq={self.dlq.depth}>"
        )
