"""Facility-wide resilience state: one policy, one breaker board, one DLQ.

The :class:`ResilienceKit` is what the :class:`~repro.core.facility.Facility`
hands to every data-path consumer (transfer agents, the ADAL client): a
shared :class:`~repro.resilience.policy.RetryPolicy`, a per-target
:class:`~repro.resilience.breaker.BreakerBoard` on the simulator clock, the
facility :class:`~repro.resilience.dlq.DeadLetterQueue`, a dedicated random
substream for jitter, and the aggregate counters the "Resilience" report
section renders.
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.breaker import BreakerBoard
from repro.resilience.dlq import DeadLetterQueue
from repro.resilience.policy import RetryPolicy
from repro.simkit.core import Simulator
from repro.simkit.monitor import Counter


class ResilienceKit:
    """Shared retry/breaker/DLQ state for one facility.

    Parameters
    ----------
    sim:
        The facility simulator (clock + root random source).
    policy:
        Retry policy applied by consumers (default: :class:`RetryPolicy`).
    breaker_failure_threshold, breaker_reset_timeout:
        Shared circuit-breaker configuration.
    enabled:
        When ``False`` consumers fall back to their pre-resilience
        behaviour — the ablation arm of the E13 benchmark.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 120.0,
        enabled: bool = True,
    ):
        self.sim = sim
        self.enabled = enabled
        self.policy = policy or RetryPolicy()
        self.rng = sim.random.spawn("resilience")
        self.breakers = BreakerBoard(
            clock=lambda: sim.now,
            failure_threshold=breaker_failure_threshold,
            reset_timeout=breaker_reset_timeout,
        )
        self.dlq = DeadLetterQueue(name="facility-dlq")
        self.retries = Counter("resilience.retries")
        self.reroutes = Counter("resilience.reroutes")
        self.timeouts = Counter("resilience.timeouts")
        #: Bytes that landed successfully after at least one retry.
        self.recovered_bytes = Counter("resilience.recovered_bytes")
        #: Bytes that ended in the dead-letter queue.
        self.lost_bytes = Counter("resilience.lost_bytes")

    def stats(self) -> dict:
        """Headline resilience numbers (machine-readable)."""
        return {
            "enabled": self.enabled,
            "retries": int(self.retries.value),
            "reroutes": int(self.reroutes.value),
            "timeouts": int(self.timeouts.value),
            "breaker_transitions": len(self.breakers.transitions()),
            "breakers_open": sorted(self.breakers.open_targets()),
            "dlq_depth": self.dlq.depth,
            "recovered_bytes": self.recovered_bytes.value,
            "lost_bytes": self.lost_bytes.value,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ResilienceKit enabled={self.enabled} "
            f"retries={int(self.retries.value)} dlq={self.dlq.depth}>"
        )
