"""Per-target circuit breakers.

A :class:`CircuitBreaker` tracks consecutive failures against one target (a
disk array, a backend, a remote site) and cuts traffic to it once a
threshold is crossed — the classic closed → open → half-open automaton:

``closed``
    Normal operation; consecutive failures are counted.
``open``
    Tripped: callers should route around the target.  After
    ``reset_timeout`` seconds the breaker softens to half-open.
``half_open``
    One probe call is admitted; success closes the breaker, failure
    re-opens it (and restarts the reset clock).

Every state transition is logged with its (simulated) timestamp, which is
what the facility report's "Resilience" section renders.  A
:class:`BreakerBoard` manages one breaker per named target with shared
configuration.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker for one target.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time (pass
        ``lambda: sim.now``); the breaker never owns a clock of its own.
    target:
        Name used in logs and errors.
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds after opening before a half-open probe is allowed.
    probe_timeout:
        Seconds a claimed half-open probe slot may stay unreported
        before it is reclaimed.  A probe owner can die without calling
        :meth:`record_success` / :meth:`record_failure` (e.g. its
        deadline fires first); without a timeout the slot would be held
        forever and the breaker could never close again.  Defaults to
        ``reset_timeout``.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        target: str = "",
        failure_threshold: int = 3,
        reset_timeout: float = 120.0,
        probe_timeout: Optional[float] = None,
        on_transition: Optional[
            Callable[["CircuitBreaker", float, str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        if probe_timeout is not None and probe_timeout <= 0:
            raise ValueError("probe_timeout must be > 0 (or None)")
        self._clock = clock
        self.target = target
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_timeout = (
            probe_timeout if probe_timeout is not None else reset_timeout)
        #: Observer called as ``(breaker, when, old, new)`` after every
        #: state change (how trips reach the facility event bus).
        self.on_transition = on_transition
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self._probe_claimed_at: Optional[float] = None
        #: Probe slots reclaimed because the claimant never reported back.
        self.probe_reclaims = 0
        #: ``(time, old_state, new_state)`` history of every transition.
        self.transitions: list[tuple[float, str, str]] = []

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, softening ``open`` to ``half_open`` when due."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._transition(HALF_OPEN)
            self._probe_in_flight = False
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        return self._failures

    def _transition(self, new: str) -> None:
        if new != self._state:
            when = self._clock()
            old = self._state
            self.transitions.append((when, old, new))
            self._state = new
            if self.on_transition is not None:
                self.on_transition(self, when, old, new)

    # -- protocol ------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call to the target should be admitted now.

        In half-open state only a single probe is admitted at a time;
        calling ``allow()`` claims the probe slot until the probe reports
        success or failure — or until ``probe_timeout`` elapses without a
        report, after which the slot is reclaimed for the next caller.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probe_in_flight:
            claimed = self._probe_claimed_at
            if (claimed is None
                    or self._clock() - claimed < self.probe_timeout):
                return False
            # The claimant died without reporting: reclaim the slot so the
            # breaker cannot be starved in half-open forever.
            self.probe_reclaims += 1
        self._probe_in_flight = True
        self._probe_claimed_at = self._clock()
        return True

    def record_success(self) -> None:
        """Report one successful call; closes a half-open breaker."""
        self._failures = 0
        self._probe_in_flight = False
        self._probe_claimed_at = None
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """Report one failed call; may trip the breaker open."""
        state = self.state
        self._probe_in_flight = False
        self._probe_claimed_at = None
        if state == HALF_OPEN:
            # Failed probe: straight back to open, restart the reset clock.
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self._failures += 1
        if state == CLOSED and self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CircuitBreaker {self.target!r} {self._state} "
            f"failures={self._failures}/{self.failure_threshold}>"
        )


class BreakerBoard:
    """One lazily-created :class:`CircuitBreaker` per named target."""

    def __init__(
        self,
        clock: Callable[[], float],
        failure_threshold: int = 3,
        reset_timeout: float = 120.0,
        probe_timeout: Optional[float] = None,
        on_transition: Optional[
            Callable[[CircuitBreaker, float, str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        if probe_timeout is not None and probe_timeout <= 0:
            raise ValueError("probe_timeout must be > 0 (or None)")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_timeout = probe_timeout
        self.on_transition = on_transition
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, target: str) -> CircuitBreaker:
        """The breaker for ``target``, created on first use."""
        if target not in self._breakers:
            self._breakers[target] = CircuitBreaker(
                self._clock,
                target=target,
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                probe_timeout=self.probe_timeout,
                on_transition=self.on_transition,
            )
        return self._breakers[target]

    def open_targets(self) -> set[str]:
        """Targets whose breaker is currently open (half-open is eligible)."""
        return {t for t, b in self._breakers.items() if b.state == OPEN}

    def transitions(self) -> list[tuple[float, str, str, str]]:
        """All transitions across targets: ``(time, target, old, new)``."""
        out = [
            (when, b.target, old, new)
            for b in self._breakers.values()
            for when, old, new in b.transitions
        ]
        out.sort(key=lambda row: row[0])
        return out

    def __iter__(self) -> Iterator[CircuitBreaker]:
        return iter(self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)
