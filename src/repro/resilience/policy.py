"""Retry policies: capped exponential backoff with deterministic jitter.

A :class:`RetryPolicy` is pure configuration — it owns no clock and no
random state.  Jitter is drawn from a caller-supplied
:class:`~repro.simkit.rand.RandomSource` substream, so retry timing is part
of the same reproducible random universe as everything else in the
simulation: the same seed yields the same backoff sequence, run after run.

Simulated consumers (transfer agents) sleep the computed delay on the
simulator clock; glue-layer consumers (the ADAL client, which is
instantaneous from the simulator's perspective) retry via :meth:`run_sync`,
where the delay is bookkeeping only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.resilience.errors import RetriesExhaustedError
from repro.simkit.rand import RandomSource


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (so ``max_attempts - 1`` retries).
    base_delay:
        Backoff before the first retry, seconds.
    multiplier:
        Geometric growth factor between consecutive backoffs.
    max_delay:
        Hard cap on any single backoff, jitter included.
    jitter:
        Fractional jitter: each delay is scaled by a uniform draw from
        ``[1 - jitter, 1 + jitter]`` when a random source is supplied.
    max_elapsed:
        Optional total-time budget (seconds) over the whole retry
        sequence: no backoff is ever *scheduled* at or past this budget,
        measured from the first attempt — so a retried operation can
        never outlive a caller's deadline, however many attempts remain.
        ``None`` (the default) keeps the attempt count as the only bound.
    """

    max_attempts: int = 4
    base_delay: float = 2.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    max_elapsed: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.max_elapsed is not None and self.max_elapsed <= 0:
            raise ValueError("max_elapsed must be > 0 (or None)")

    def delay(self, attempt: int, rng: Optional[RandomSource] = None) -> float:
        """Backoff (seconds) before retry number ``attempt`` (1-based).

        The exponential ramp is capped at ``max_delay`` both before and
        after jitter, so no draw can ever exceed the cap.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0:
            raw *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return min(raw, self.max_delay)

    def delays(self, rng: Optional[RandomSource] = None) -> list[float]:
        """The full backoff sequence of one exhausting retry run."""
        return [self.delay(i, rng) for i in range(1, self.max_attempts)]

    def delay_within(
        self,
        attempt: int,
        elapsed: float,
        rng: Optional[RandomSource] = None,
    ) -> Optional[float]:
        """Backoff before retry ``attempt``, honouring the elapsed budget.

        ``elapsed`` is the time already spent since the first attempt.
        Returns ``None`` when the policy's ``max_elapsed`` budget (if any)
        is already spent or would be reached before the backoff completes —
        the caller must then stop retrying.  The jitter draw is consumed
        either way, so budget checks never shift the random stream of
        later consumers.
        """
        backoff = self.delay(attempt, rng)
        if self.max_elapsed is not None and elapsed + backoff >= self.max_elapsed:
            return None
        return backoff

    def run_sync(
        self,
        fn: Callable,
        retry_on: Tuple[Type[BaseException], ...],
        rng: Optional[RandomSource] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
        label: str = "call",
    ):
        """Call ``fn`` with immediate (clock-less) retries.

        Used by glue-layer components that run in zero simulated time: the
        backoff delay is still computed (and passed to ``on_retry`` for
        accounting) but not slept.  When ``max_elapsed`` is set, the
        accumulated (virtual) backoff counts against it and the sequence
        ends early once the budget is spent.  Raises
        :class:`~repro.resilience.errors.RetriesExhaustedError` chained to
        the last failure once ``max_attempts`` is reached or the budget
        runs out; exceptions not in ``retry_on`` propagate immediately.
        """
        attempts: list[tuple[int, str]] = []
        attempt = 1
        elapsed = 0.0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempts.append((attempt, f"{type(exc).__name__}: {exc}"))
                if attempt >= self.max_attempts:
                    raise RetriesExhaustedError(label, attempts) from exc
                backoff = self.delay_within(attempt, elapsed, rng)
                if backoff is None:
                    raise RetriesExhaustedError(label, attempts) from exc
                if on_retry is not None:
                    on_retry(attempt, exc, backoff)
                elapsed += backoff
                attempt += 1
