"""Exception types of the resilience layer."""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for resilience-layer errors."""


class DeadlineExceededError(ResilienceError):
    """An operation ran past its :func:`~repro.resilience.with_timeout` deadline."""

    def __init__(self, seconds: float, label: str = "operation"):
        super().__init__(f"{label} exceeded its {seconds:.6g} s deadline")
        self.seconds = seconds
        self.label = label


class RetriesExhaustedError(ResilienceError):
    """All attempts of a retried operation failed.

    The last underlying failure is chained as ``__cause__``; the full
    attempt history (one ``(time-or-attempt, message)`` pair per failure)
    rides along for dead-letter records and diagnostics.
    """

    def __init__(self, label: str, attempts: list):
        super().__init__(f"{label}: {len(attempts)} attempt(s) exhausted")
        self.label = label
        self.attempts = list(attempts)


class CircuitOpenError(ResilienceError):
    """A call was refused because the target's circuit breaker is open."""

    def __init__(self, target: str):
        super().__init__(f"circuit breaker for {target!r} is open")
        self.target = target
