"""E6 — slide 11: "Exascale => bring computing to the data!!
(15 days to transfer 1 PB over ideal 10Gb/s link)".

Two parts:

* the transfer-time table behind the slide's parenthetical: 1 PB over a
  10 Gb/s link at several protocol efficiencies — ideal arithmetic gives
  9.26 days; the paper's quoted 15 days corresponds to ~62% efficiency;
* the architectural claim: processing data *where it lives* (data-local
  MapReduce on the cluster) beats shipping it to an external compute site
  first, with the gap widening with dataset size.
"""

import pytest

from repro.simkit import Simulator
from repro.simkit.units import DAY, GB, PB, TB, gbit_per_s, fmt_duration
from repro.netsim import Network, Topology
from repro.core import Facility
from repro.mapreduce import JobSpec

_CPU_PER_BYTE = 5e-8  # analysis compute density used on both sides


def _transfer_days(nbytes, efficiency):
    sim = Simulator()
    topo = Topology()
    topo.add_link("src", "dst", capacity=gbit_per_s(10.0))
    net = Network(sim, topo, efficiency=efficiency)
    ev = net.transfer("src", "dst", nbytes)
    sim.run()
    return ev.value.duration / DAY


def test_e6_1pb_transfer_table(benchmark, report):
    def run():
        return {eff: _transfer_days(1 * PB, eff) for eff in (1.0, 0.8, 0.62, 0.5)}

    days = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E6", "1 PB over a 10 Gb/s link (the slide's parenthetical)",
        [
            ("ideal (100% efficiency)", "'15 days' (paper)", f"{days[1.0]:.2f} days"),
            ("80% efficiency", "-", f"{days[0.8]:.2f} days"),
            ("62% efficiency", "~15 days", f"{days[0.62]:.2f} days"),
            ("50% efficiency", "-", f"{days[0.5]:.2f} days"),
        ],
    )
    # Ideal arithmetic: 10^15 B / 1.25e9 B/s = 9.26 days; the paper's 15
    # days is reproduced at ~62% efficiency.
    assert days[1.0] == pytest.approx(9.26, abs=0.02)
    assert days[0.62] == pytest.approx(14.9, abs=0.2)


@pytest.mark.parametrize("size,label", [(50 * GB, "50 GB"), (200 * GB, "200 GB"),
                                        (1 * TB, "1 TB")])
def test_e6_data_local_vs_ship_to_compute(benchmark, report, size, label):
    """Data-local MR job vs 'ship the dataset off-site, then compute at the
    same aggregate rate'."""

    def run():
        facility = Facility(seed=6)
        sim = facility.sim

        outcome = {}

        def local_side():
            yield facility.load_into_hdfs("/data/set", size)
            start = sim.now
            result = yield facility.mapreduce.submit(
                JobSpec("local", "/data/set", map_cpu_per_byte=_CPU_PER_BYTE,
                        map_output_ratio=0.02, reduces=8)
            )
            outcome["local"] = sim.now - start
            outcome["locality"] = result.locality_fraction

        def shipped_side():
            # Ship over the WAN (10 GE to the remote site), then compute with
            # the same parallel capacity (60 nodes x 2 slots).
            start = sim.now
            yield facility.net.transfer(
                facility.names.storage[0], facility.names.internet, size
            )
            slots = len(facility.names.cluster) * 2
            yield sim.timeout(size * _CPU_PER_BYTE / slots)
            outcome["shipped"] = sim.now - start

        p1 = sim.process(local_side())
        p2 = sim.process(shipped_side())
        sim.run()
        assert not p1.failed and not p2.failed
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = outcome["shipped"] / outcome["local"]
    report(
        "E6b", f"bring-compute-to-data vs ship-to-compute ({label})",
        [
            ("data-local MapReduce", "wins", fmt_duration(outcome["local"])),
            ("ship + compute", "loses", fmt_duration(outcome["shipped"])),
            ("advantage", "grows with size", f"{speedup:.1f}x"),
            ("node-local map fraction", "high", f"{outcome['locality']:.0%}"),
        ],
    )
    # (Staging into HDFS is excluded from both sides: it is the one-time
    # ingest cost paid either way.)  Data-local must win at these sizes.
    assert outcome["local"] < outcome["shipped"]
