"""E9 — slide 13: "3D Biomedical data visualization — processing 1 TB
dataset in 20 min" on the Hadoop cluster.

The headline quantitative claim of the paper's DIC section.  Measured: the
visualisation job's cost model on the canonical 60-node cluster at 1 TB
(paper's number), plus sweeps over dataset size (linear in data) and
cluster size (the claim's 'extreme scalability' premise).
"""

import pytest

from repro.core import Facility, FacilityConfig, lsdf_2011_config
from repro.mapreduce import MapReduceSim
from repro.simkit.units import MINUTE, TB, fmt_duration
from repro.workloads import viz3d_cluster_job


def _run_viz(size, racks=4, nodes_per_rack=15, seed=9):
    config = lsdf_2011_config()
    config.cluster_racks = racks
    config.nodes_per_rack = nodes_per_rack
    facility = Facility(config, seed=seed)
    holder = {}

    def scenario():
        yield facility.load_into_hdfs("/data/volume", size)
        holder["result"] = yield facility.mapreduce.submit(
            viz3d_cluster_job("/data/volume")
        )

    p = facility.sim.process(scenario())
    facility.run()
    assert not p.failed, p.exception
    return holder["result"]


def test_e9_one_tb_in_twenty_minutes(benchmark, report):
    result = benchmark.pedantic(lambda: _run_viz(1 * TB), rounds=1, iterations=1)
    minutes = result.duration / MINUTE
    report(
        "E9", "3D visualisation of 1 TB on the 60-node cluster",
        [
            ("job duration", "20 min", f"{minutes:.1f} min"),
            ("map tasks", "-", f"{result.maps:,}"),
            ("node-local maps", "high (bring compute to data)",
             f"{result.locality_fraction:.0%}"),
            ("shuffled", "small (projections)",
             f"{result.bytes_shuffled / 1e9:.1f} GB"),
        ],
    )
    # The paper's headline: same order, within +-40% of 20 minutes.
    assert 12.0 <= minutes <= 28.0
    assert result.locality_fraction > 0.8


def test_e9_sweep_dataset_size(benchmark, report):
    def run():
        return {size: _run_viz(size) for size in (256e9, 512e9, 1 * TB)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    sizes = sorted(results)
    for size in sizes:
        rows.append((f"{size / 1e12:.2f} TB", "linear in data",
                     fmt_duration(results[size].duration)))
    report("E9b", "visualisation time vs dataset size", rows)
    durations = [results[s].duration for s in sizes]
    assert durations == sorted(durations)
    # Rough linearity: 4x data within 2.4x-6x time (overheads at small end).
    ratio = durations[-1] / durations[0]
    assert 2.4 <= ratio <= 6.0


def test_e9_sweep_cluster_size(benchmark, report):
    def run():
        return {
            racks * 15: _run_viz(512e9, racks=racks)
            for racks in (2, 4)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    small, big = results[30], results[60]
    report(
        "E9c", "visualisation of 0.5 TB: 30 vs 60 nodes",
        [
            ("30 nodes", "-", fmt_duration(small.duration)),
            ("60 nodes", "~half the time", fmt_duration(big.duration)),
            ("speedup", "~2x (commodity scalability)",
             f"{small.duration / big.duration:.2f}x"),
        ],
    )
    assert small.duration / big.duration > 1.5
