"""E18 — front door under overload: goodput vs offered load, with ablation.

The paper's ADAL chapter promises a uniform access layer for every
community, but says nothing about what happens when all of them show up at
once.  E18 runs the overload drill — a 5x open-loop surge over four
communities with a flaky backend and a degraded array in the middle of it —
through two front doors:

* the **defended** arm (admission control, CoDel shedding, deadline
  propagation, brownout) must hold surge goodput within 20% of baseline,
  keep queues bounded, lose nothing silently, and recover;
* the **naive** arm (same workers, no defences) is the ablation: it grinds
  expired backlog and collapses, which is the behaviour the tentpole
  removes.

A third arm closes the client feedback loop (impatient retries) and checks
the admitted rate stays pinned to the sum of the per-tenant rate limits —
retry storms are contained at the door instead of amplifying inside.

Twin runs of the defended arm must be bit-identical.
``LSDF_BENCH_TINY=1`` shrinks client counts and durations for CI smoke.
"""

import os

from repro.frontdoor import run_overload_drill

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_SCALE = 0.2 if _TINY else 1.0
_DURATION = 0.5 if _TINY else 1.0
_SEED = 47


def _run(enabled=True, storm=False, seed=_SEED):
    facility, result = run_overload_drill(
        seed=seed, scale=_SCALE, duration_scale=_DURATION,
        enabled=enabled, storm=storm)
    reg = facility.telemetry.registry
    [(_labels, latency)] = reg.samples("frontdoor.latency_seconds")
    return result, latency.percentile(99)


def _row(label, result):
    ratio = (result.surge_goodput / result.baseline_goodput
             if result.baseline_goodput else 0.0)
    return (f"{label}: surge/baseline goodput", ">= 0.80 (defended)",
            f"{ratio:.2f} ({result.surge_goodput:.1f}/s vs "
            f"{result.baseline_goodput:.1f}/s, peak queue "
            f"{result.peak_queue_depth}/{result.queue_bound})")


def test_e18_frontdoor_overload(benchmark, report):
    ((defended, defended_p99), (naive, naive_p99),
     (storm, _storm_p99)) = benchmark.pedantic(
        lambda: (_run(), _run(enabled=False), _run(storm=True)),
        rounds=1, iterations=1)
    twin, _twin_p99 = _run(seed=_SEED)

    served = defended.accounting["terminal"]
    rows = [
        _row("defended", defended),
        _row("naive (ablation)", naive),
        ("served-request p99 latency", "defended << naive",
         f"{defended_p99:.2f} s defended vs {naive_p99:.2f} s naive"),
        ("defended: silent loss", "0",
         str(defended.accounting["silent_loss"])),
        ("defended: outcome mix", "served >> shed",
         f"{served['served']} served, {served['served_degraded']} degraded, "
         f"{served['rejected']} rejected, {served['shed']} shed, "
         f"{served['timed_out']} timed out"),
        ("storm arm: client resubmissions", "contained at the door",
         f"{storm.client_retries} offered, "
         f"{storm.admitted_retries} admitted"),
        ("naive arm: timeouts", "collapse visible",
         str(naive.accounting["terminal"]["timed_out"])),
        ("twin-run determinism", "bit-identical",
         "identical" if defended.fingerprint() == twin.fingerprint()
         else "DIVERGED"),
    ]
    report("E18", "front door overload: goodput under a 5x surge", rows)

    # Shape: every defended gate passes, the ablation collapses (or at
    # least times work out en masse), and the drill is deterministic.
    assert defended.passed, defended.failures
    assert storm.passed, storm.failures
    assert defended.accounting["silent_loss"] == 0
    assert naive.accounting["silent_loss"] == 0
    assert naive.accounting["terminal"]["timed_out"] > 0
    assert defended.fingerprint() == twin.fingerprint()
