"""E17 — placement policy: time-to-converged vs object count.

The paper's data-management section promises per-community placement
(replicas for microscopy, HDFS-local staging for DNA, tape for archives)
but leaves enforcement to operators.  E17 measures the declarative policy
engine closing that loop: for growing catalog sizes the convergence
daemon must lay down every declared replica/tape/HDFS placement
(time-to-converged, the establishment pass), then heal the full chaos
drill — silent corruption, an array brown-out and a datanode loss —
back to zero declared-state violations (time-to-reconverged).

Twin runs of the smallest arm must be bit-identical: convergence is part
of the facility's deterministic core, not a best-effort background job.

``LSDF_BENCH_TINY=1`` shrinks the scales for CI smoke runs.
"""

import os

from repro.adal.api import checksum_bytes
from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.metadata.schema import FieldSpec, Schema
from repro.simkit.units import KiB, TB

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_SCALES = (4, 8) if _TINY else (8, 16, 32)
_OBJECT_SIZE = 4 * KiB if _TINY else 64 * KiB
_DRILL_AT = 300.0
_SETTLE = 700.0


def _seed_objects(facility, count):
    facility.metadata.register_project(
        "dna", Schema("dna-basic", [FieldSpec("sample", "str")]))
    backend = facility.adal_registry.resolve("lsdf")
    for i in range(count):
        data = bytes([i % 251]) * int(_OBJECT_SIZE)
        if i % 3 == 2:
            project, basic = "dna", {"sample": f"run{i}"}
        else:
            project, basic = "zebrafish", {"plate": i, "well": "A01"}
        backend.put(f"e17/obj{i}", data)
        facility.metadata.register_dataset(
            f"e17-{i}", project, f"adal://lsdf/e17/obj{i}", len(data),
            checksum_bytes(data), basic)


def _run(count, seed=47):
    facility = Facility(
        FacilityConfig(
            arrays=[ArraySpec("a1", 10 * TB, 2e9), ArraySpec("a2", 10 * TB, 2e9)],
            cluster_racks=2,
            nodes_per_rack=4,
        ),
        seed=seed,
    )
    _seed_objects(facility, count)
    # Archive verified copies so every community is repairable, then
    # establish the declared placements.
    facility.sim.run(until=facility.durability.scrubber.scrub_once())
    establish = facility.sim.run(until=facility.convergence.converge_once())
    schedule = facility.policy_drill(start=facility.sim.now + _DRILL_AT)
    schedule.run(facility)
    facility.run(until=facility.sim.now + _SETTLE)
    healing = facility.sim.run(until=facility.convergence.converge_once())
    residual = len(facility.drift.detect(publish=False))
    return facility, establish, healing, residual


def _fingerprint(count, seed):
    facility, establish, healing, residual = _run(count, seed=seed)
    bus = facility.telemetry.bus
    return (
        facility.stats()["policy"],
        dict(bus.counts()),
        establish.actions,
        healing.actions,
        residual,
        facility.sim.now,
    )


def test_e17_policy_convergence(benchmark, report):
    runs = benchmark.pedantic(
        lambda: [_run(n) for n in _SCALES], rounds=1, iterations=1
    )
    rows = []
    for count, (facility, establish, healing, residual) in zip(_SCALES, runs):
        t_establish = establish.finished - establish.started
        t_heal = healing.finished - healing.started
        rows.append(
            (f"{count} objects: establish / re-converge",
             "grows with bytes moved",
             f"{t_establish:.1f} s / {t_heal:.1f} s "
             f"({establish.repaired}+{healing.repaired} actions)"))
    last_facility, _, last_healing, _ = runs[-1]
    rows.append(("declared-state violations at quiescence", "0",
                 str(sum(r[3] for r in runs))))
    rows.append(("auditor findings at quiescence", "0 (clean)",
                 "clean" if last_facility.durability.auditor.audit(
                     verify_content=True).clean else "VIOLATIONS"))
    twin_a = _fingerprint(_SCALES[0], seed=53)
    twin_b = _fingerprint(_SCALES[0], seed=53)
    rows.append(("twin-run determinism", "bit-identical",
                 "identical" if twin_a == twin_b else "DIVERGED"))
    report("E17", "placement policy: time-to-converged vs object count", rows)

    # Shape: every arm establishes and re-converges with nothing left over,
    # the chaos damage is healed, and twin runs are bit-identical.
    for facility, establish, healing, residual in runs:
        assert establish.converged and healing.converged
        assert residual == 0
        assert facility.stats()["policy"]["abandoned"] == 0
    assert last_healing.actions.get("repair_primary", 0) > 0
    assert last_facility.durability.auditor.audit(verify_content=True).clean
    assert twin_a == twin_b
