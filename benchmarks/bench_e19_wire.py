"""E19 — wire-speed ADAL: requests/s and p99 vs client count, batched vs not.

The facility's metadata/ADAL front door eventually has to answer real
sockets.  E19 stands up the asyncio :class:`~repro.adal.wire.WireServer`
on localhost and drives it closed-loop at increasing client counts, in
two arms:

* **batched** — the pooled :class:`~repro.adal.wire.WireClient` with
  automatic request coalescing (N in-flight lookups ride one framed
  batch envelope, served by one admission pass and one store pass);
* **unbatched** — the same client with coalescing disabled: one frame,
  one admission pass, one store pass per op.

Gates: at 32+ clients the batched arm must sustain >= 2x the unbatched
requests/s; every arm must close its zero-silent-loss balance on both
sides of the socket and leak no tasks or connections.  p99 latency must
stay inside the request deadline budget — the deadline machinery reused
from the front door would otherwise fail requests visibly, never
silently.

``LSDF_BENCH_TINY=1`` shrinks client counts and per-client ops for the
CI smoke lane.  The wire layer is wall-clock by design (the determinism
boundary sits at the socket), so throughput numbers vary run to run;
every *correctness* gate (loss, leaks, batching ratio) is load-bearing,
the absolute rps numbers are reported for the record.
"""

import os

from repro.adal.wire import run_wire_bench

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")

#: Client-count scaling ladder (logical clients sharing one pooled client).
_CLIENTS = (1, 8, 32) if _TINY else (1, 8, 32, 128)
_OPS = 20 if _TINY else 60
#: The client count at which the batched >= 2x unbatched gate is applied.
_GATE_CLIENTS = 32
_BUDGET = 5.0


def _arm(clients, batching):
    return run_wire_bench(
        clients=clients, ops_per_client=_OPS, batching=batching,
        pool_size=8, max_in_flight=64, workers=4, budget=_BUDGET)


def _fmt_rps(result):
    return (f"{result['throughput_rps']:,.0f} rps, "
            f"p99 {result['latency_p99_s'] * 1000:.2f} ms")


def test_e19_wire_scaling(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            clients: {"batched": _arm(clients, True),
                      "unbatched": _arm(clients, False)}
            for clients in _CLIENTS
        },
        rounds=1, iterations=1)

    rows = []
    for clients in _CLIENTS:
        batched = results[clients]["batched"]
        unbatched = results[clients]["unbatched"]
        speedup = (batched["throughput_rps"] / unbatched["throughput_rps"]
                   if unbatched["throughput_rps"] else 0.0)
        rows.append((
            f"{clients:3d} clients: batched vs unbatched",
            ">= 2x at 32+ clients",
            f"{speedup:.1f}x  ({_fmt_rps(batched)} vs {_fmt_rps(unbatched)})"))
    gate = results[_GATE_CLIENTS]
    rows.extend([
        ("batched arm mean batch size (32 clients)", "> 1 (coalescing on)",
         f"{gate['batched']['mean_batch_size']:.1f} ops/envelope "
         f"({gate['batched']['client_batches']} envelopes)"),
        ("server silent loss, all arms", "0",
         str(sum(results[c][arm]["server_accounting"]["silent_loss"]
                 for c in _CLIENTS for arm in ("batched", "unbatched")))),
        ("client outstanding after close, all arms", "0",
         str(sum(results[c][arm]["client_accounting"]["outstanding"]
                 for c in _CLIENTS for arm in ("batched", "unbatched")))),
        ("leaked tasks / open conns after close", "0 / 0",
         f"{sum(results[c][arm]['leaked_tasks'] for c in _CLIENTS for arm in ('batched', 'unbatched'))}"
         f" / {sum(results[c][arm]['open_connections_after_close'] for c in _CLIENTS for arm in ('batched', 'unbatched'))}"),
        ("batched p99 within deadline budget", f"< {_BUDGET:.0f} s",
         f"{gate['batched']['latency_p99_s'] * 1000:.2f} ms"),
    ])
    report("E19", "wire ADAL: client-count scaling, batched vs unbatched",
           rows)

    # Correctness gates: nothing lost, nothing leaked, errors empty.
    for clients in _CLIENTS:
        for arm in ("batched", "unbatched"):
            result = results[clients][arm]
            label = f"{clients} clients {arm}"
            assert result["errors"] == {}, (label, result["errors"])
            assert result["ops_ok"] == result["ops_total"], label
            assert result["server_accounting"]["silent_loss"] == 0, label
            assert result["client_accounting"]["outstanding"] == 0, label
            assert result["leaked_tasks"] == 0, label
            assert result["open_connections_after_close"] == 0, label

    # Performance gates at the reference client count.
    assert (gate["batched"]["throughput_rps"]
            >= 2.0 * gate["unbatched"]["throughput_rps"]), (
        gate["batched"]["throughput_rps"],
        gate["unbatched"]["throughput_rps"])
    assert gate["batched"]["mean_batch_size"] > 1.0
    assert gate["batched"]["latency_p99_s"] < _BUDGET
