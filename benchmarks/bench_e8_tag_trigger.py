"""E8 — slide 12: tag-triggered workflow automation via the DataBrowser.

Paper: "Allow tagging data and triggering execution via DataBrowser.  Data
from finished workflows stored and tagged in DB — used for zebrafish
microscopy data."  Measured: a biologist tags a cohort of frames; the
trigger engine launches one analysis workflow per frame inside the DES;
throughput, wave parallelism, and the completeness of the provenance trail
are reported.
"""

import pytest

from repro.adal import AdalClient, BackendRegistry, MemoryBackend
from repro.databrowser import DataBrowser, TriggerEngine, TriggerRule
from repro.metadata import MetadataStore, Q
from repro.simkit import Simulator
from repro.simkit.units import fmt_duration
from repro.workflow import FunctionActor, SimulatedDirector, WorkflowGraph
from repro.workloads import zebrafish_basic_schema

N_DATASETS = 400
TAGGED = 120


def _analysis_graph() -> WorkflowGraph:
    """Segment (30 s) -> [count (10 s) || features (20 s)] -> classify (5 s)."""
    g = WorkflowGraph("zf-analysis")
    g.add(FunctionActor("segment", lambda data_url: data_url + ".mask",
                        inputs=("data_url",), outputs=("out",),
                        cost_model=lambda _i: 30.0))
    g.add(FunctionActor("count", lambda mask: 25, inputs=("mask",),
                        outputs=("out",), cost_model=lambda _i: 10.0))
    g.add(FunctionActor("features", lambda mask: [0.1, 0.9], inputs=("mask",),
                        outputs=("out",), cost_model=lambda _i: 20.0))
    g.add(FunctionActor("classify", lambda cells, feats: "normal",
                        inputs=("cells", "feats"), outputs=("out",),
                        cost_model=lambda _i: 5.0))
    g.connect("segment", "out", "count", "mask")
    g.connect("segment", "out", "features", "mask")
    g.connect("count", "out", "classify", "cells")
    g.connect("features", "out", "classify", "feats")
    return g


def _world():
    sim = Simulator(seed=8)
    registry = BackendRegistry()
    registry.register("lsdf", MemoryBackend())
    adal = AdalClient(registry)
    store = MetadataStore()
    store.register_project("zebrafish", zebrafish_basic_schema())
    for i in range(N_DATASETS):
        url = f"adal://lsdf/zf/plate{i % 8}/img{i:05d}.tif"
        adal.put(url, b"\0" * 64)
        store.register_dataset(f"img-{i:05d}", "zebrafish", url, 4_000_000,
                               f"c{i}", {"plate": i % 8, "well": f"A{i % 12:02d}"})
    engine = TriggerEngine(store, director=SimulatedDirector(sim))
    engine.register(TriggerRule(
        "analyze", _analysis_graph(),
        lambda record: {("segment", "data_url"): record.url},
        done_tag="analyzed", project="zebrafish",
    ))
    browser = DataBrowser(adal, store, engine, home="adal://lsdf/zf")
    return sim, store, engine, browser


def test_e8_tag_cohort_triggers_workflows(benchmark, report):
    def run():
        sim, store, engine, browser = _world()
        cohort = browser.find(Q.field("plate") < 3)[:TAGGED]
        start = sim.now
        for record in cohort:
            browser.tag(record.dataset_id, "analyze")
        sim.run()
        return sim.now - start, store, engine

    elapsed, store, engine = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = engine.stats()
    analyzed = store.tagged("analyzed")
    critical_path = 30.0 + 20.0 + 5.0  # segment -> features -> classify
    report(
        "E8", f"tag {TAGGED} frames -> triggered analysis workflows",
        [
            ("workflows executed", f"{TAGGED} (one per tag)", str(stats["executions"])),
            ("succeeded", "all", str(stats["succeeded"])),
            ("makespan (simulated)", f"~critical path ({critical_path:.0f} s): "
                                     "workflows run concurrently",
             fmt_duration(elapsed)),
            ("datasets tagged 'analyzed'", f"{TAGGED}", str(len(analyzed))),
            ("provenance records/dataset", "4 (one per actor)",
             str(len(analyzed[0].processing))),
        ],
    )
    assert stats["executions"] == TAGGED
    assert stats["succeeded"] == TAGGED
    assert len(analyzed) == TAGGED
    # Workflows are independent: the makespan is the workflow critical path,
    # not TAGGED x workflow time.
    assert elapsed == pytest.approx(critical_path, rel=0.01)
    # Provenance chain intact: classify's ancestry reaches segment.
    record = analyzed[0]
    leaf = record.processing[-1]
    chain = record.chain(leaf.step_id)
    assert chain[0].name.endswith("segment")
    assert leaf.name.endswith("classify")


def test_e8_dataflow_waves_beat_sequential(benchmark, report):
    """The diamond graph's parallel branches pay off: wave execution (what
    Kepler's dataflow director does) beats firing actors one-by-one."""

    def run():
        sim = Simulator()
        director = SimulatedDirector(sim)
        ev = director.run(_analysis_graph(), {("segment", "data_url"): "x"})
        sim.run()
        return ev.value.duration

    wave_time = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential_time = 30.0 + 10.0 + 20.0 + 5.0
    report(
        "E8b", "dataflow waves vs sequential actor firing",
        [
            ("workflow time (waves)", "critical path 55 s", fmt_duration(wave_time)),
            ("workflow time (sequential)", "sum 65 s", fmt_duration(sequential_time)),
        ],
    )
    assert wave_time == pytest.approx(55.0, rel=0.01)
