"""E3 — slide 7: the dedicated 10 GE backbone with redundant routers.

Paper figure: DAQs, two storage systems (0.5 + 1.4 PB), tape, cluster and
Heidelberg behind redundant 10 GE routers.  Shape checks:

* a single DAQ->storage stream achieves ~10 Gbit/s line rate;
* aggregate ingest is capped by the shared trunk, not the arrays;
* killing one router mid-transfer degrades nothing permanently (reroute),
  and killing both cuts the facility off;
* max-min fair sharing recovers capacity that naive equal-split wastes
  (ablation).
"""

import pytest

from repro.simkit import Simulator
from repro.simkit.units import GB, gbit_per_s, fmt_rate
from repro.netsim import Network, build_lsdf_backbone, NoRouteError


def _world(sharing="maxmin", wan_gbits=10.0):
    sim = Simulator(seed=3)
    topo, names = build_lsdf_backbone(wan_gbits=wan_gbits)
    return sim, Network(sim, topo, sharing=sharing), names


def test_e3_line_rate_single_stream(benchmark, report):
    def run():
        sim, net, names = _world()
        ev = net.transfer(names.daq[0], names.storage[0], 20 * GB)
        sim.run()
        return ev.value

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E3", "single DAQ->storage stream",
        [("achieved rate", "10 Gbit/s line rate", fmt_rate(result.mean_rate))],
    )
    assert result.mean_rate == pytest.approx(gbit_per_s(10), rel=0.02)


def test_e3_aggregate_capped_by_trunk(benchmark, report):
    def run():
        sim, net, names = _world()
        events = [
            net.transfer(names.daq[i % len(names.daq)],
                         names.storage[i % 2], 10 * GB)
            for i in range(4)
        ]
        sim.run()
        total = 40 * GB
        return total / max(e.value.finished for e in events)

    aggregate = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E3b", "four concurrent DAQ streams",
        [("aggregate rate", "~10 Gbit/s (shared trunk)", fmt_rate(aggregate))],
    )
    # All four flows share the daq-switch->router->storage-switch trunk.
    assert aggregate == pytest.approx(gbit_per_s(10), rel=0.05)


def test_e3_router_failover(benchmark, report):
    def run():
        sim, net, names = _world()
        ev = net.transfer(names.daq[0], names.storage[0], 100 * GB)

        def chaos():
            yield sim.timeout(10.0)
            net.fail_node("router-1")
            yield sim.timeout(20.0)
            net.repair_node("router-1")

        sim.process(chaos())
        sim.run()
        return ev.value

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ideal = 100 * GB / gbit_per_s(10)
    report(
        "E3c", "router failure mid-transfer (redundant routers)",
        [
            ("transfer completes", "yes (failover)", "yes"),
            ("slowdown vs ideal", "~0 (full reroute)",
             f"{result.duration / ideal:.2f}x"),
            ("reroutes", ">= 1", str(result.reroutes)),
        ],
    )
    assert result.reroutes >= 1
    assert result.duration == pytest.approx(ideal, rel=0.05)


def test_e3_double_router_failure_cuts_service(benchmark, report):
    def run():
        sim, net, names = _world()
        ev = net.transfer(names.daq[0], names.storage[0], 100 * GB)
        outcome = {}

        def watcher():
            try:
                yield ev
                outcome["ok"] = True
            except NoRouteError:
                outcome["ok"] = False

        def chaos():
            yield sim.timeout(5.0)
            net.fail_node("router-1")
            net.fail_node("router-2")

        sim.process(watcher())
        sim.process(chaos())
        sim.run()
        return outcome["ok"]

    survived = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E3d", "both routers down",
        [("service", "lost (redundancy is 2x)", "lost" if not survived else "up")],
    )
    assert survived is False


def test_e3_ablation_maxmin_vs_equal_split(benchmark, report):
    """Design-choice ablation (DESIGN.md §4): with an asymmetric flow mix,
    max-min fairness finishes the unconstrained flow faster."""

    def run(sharing):
        # Both flows leave the same DAQ host (sharing its 10 GE uplink);
        # the Heidelberg flow is bottlenecked at the 2 Gbit/s WAN, leaving
        # uplink capacity that only max-min redistributes.
        sim, net, names = _world(sharing, wan_gbits=2.0)
        fast = net.transfer(names.daq[0], names.storage[0], 20 * GB)
        net.transfer(names.daq[0], names.heidelberg, 20 * GB)
        sim.run()
        return fast.value.duration

    maxmin = benchmark.pedantic(lambda: run("maxmin"), rounds=1, iterations=1)
    equal = run("equal")
    report(
        "E3e", "ablation: max-min vs equal-split sharing",
        [("daq->storage flow duration",
          "max-min reclaims unused share",
          f"maxmin {maxmin:.1f} s vs equal-split {equal:.1f} s")],
    )
    assert maxmin < equal


def test_e3_ingest_under_cross_traffic(benchmark, report):
    """The backbone is shared: measure a reference DAQ->storage transfer on
    an idle backbone vs under heavy background cross-traffic (Poisson
    arrivals, bounded-Pareto sizes) — the regime the facility actually
    operates in."""
    from repro.netsim import TrafficConfig, TrafficGenerator

    def run(loaded):
        sim, net, names = _world()
        if loaded:
            generator = TrafficGenerator(
                sim, net,
                names.daq + names.storage + [names.heidelberg, names.kit_lan],
                TrafficConfig(mean_interarrival=5.0, size_lo=1 * GB,
                              size_hi=20 * GB),
            )
            generator.start(duration=600.0)
        reference = net.transfer(names.daq[0], names.storage[0], 100 * GB)
        result = sim.run(until=reference)
        return result.duration

    quiet = benchmark.pedantic(lambda: run(False), rounds=1, iterations=1)
    loaded = run(True)
    report(
        "E3f", "reference 100 GB transfer: idle vs loaded backbone",
        [
            ("idle backbone", "line rate", f"{quiet:.0f} s"),
            ("under cross-traffic", "degrades gracefully (fair share)",
             f"{loaded:.0f} s ({loaded / quiet:.2f}x)"),
        ],
    )
    assert loaded > quiet          # contention is real...
    assert loaded < quiet * 6      # ...but fair sharing prevents starvation
