"""E2 — slides 5 & 14: the storage capacity roadmap.

Paper: "currently 2 PB in 2 storage systems"; "improved storage: 6 PB in
2012"; community growth "1+ PB/year in 2012, 6 PB/year in 2014".  Shape
checks: the paper's procurement schedule covers projected demand through
2014, and dropping the 2012 procurement produces a shortfall exactly where
the paper says more capacity is needed.
"""

import pytest

from repro.core import CapacityPlanner, LSDF_PROCUREMENT
from repro.simkit import units

YEARS = list(range(2010, 2015))


def test_e2_roadmap_covers_demand(benchmark, report):
    planner = benchmark.pedantic(CapacityPlanner, rounds=1, iterations=1)
    rows = planner.table(YEARS)
    report(
        "E2", "capacity roadmap vs community demand",
        [(f"{r.year}: demand(disk)/installed",
          {"2011": "~2 PB installed", "2012": "6 PB installed"}.get(str(r.year), "-"),
          f"{units.fmt_bytes(r.demand_disk)} / {units.fmt_bytes(r.capacity_disk)} "
          f"({r.utilization:.0%}, {'ok' if r.ok else 'SHORTFALL'})")
         for r in rows]
        + [("aggregate ingest 2012", "1+ PB/year",
            units.fmt_bytes(planner.ingest_in(2012)) + "/yr"),
           ("aggregate ingest 2014", "~6 PB/year (ITG alone)",
            units.fmt_bytes(planner.ingest_in(2014)) + "/yr")],
    )
    assert all(r.ok for r in rows)
    # The paper's projections fall out of the community profiles.
    assert planner.ingest_in(2012) >= 1.0 * units.PB
    assert planner.ingest_in(2014) >= 6.0 * units.PB
    # Installed-capacity milestones match the slides.
    assert planner.installed_disk(2011) == pytest.approx(2 * units.PB)
    assert planner.installed_disk(2012) == pytest.approx(6 * units.PB)


def test_e2_shortfall_without_2012_procurement(benchmark, report):
    def run():
        schedule = {y: c for y, c in LSDF_PROCUREMENT.items() if y <= 2011}
        return CapacityPlanner(procurement=schedule)

    planner = benchmark.pedantic(run, rounds=1, iterations=1)
    shortfall = planner.first_shortfall(YEARS)
    report(
        "E2b", "counterfactual: 2012 procurement slips",
        [("first shortfall year", "2012 (why they buy 6 PB)", str(shortfall))],
    )
    assert shortfall in (2012, 2013)


def test_e2_archive_demand_needs_tape(benchmark, report):
    planner = benchmark.pedantic(CapacityPlanner, rounds=1, iterations=1)
    _disk, tape_2014 = planner.demand(2014)
    report(
        "E2c", "tape demand under the HSM/archival policy",
        [("tape demand through 2014", "grows with archival communities",
          units.fmt_bytes(tape_2014))],
    )
    assert tape_2014 > 1 * units.PB  # archive tier is load-bearing
