"""E16 — the hot-path overhaul actually paid off.

PR 5 makes the three hottest layers cheap per event: the netsim fair-share
engine goes incremental (persistent flow/link/weight structures, batched
same-instant solves, solve skipping, an epoch-keyed route cache), the
simkit kernel loses its per-event property/formatting overhead, and
telemetry handle lookups are pre-resolved.  E16 runs the high-concurrency
ingest+backbone scenario from :func:`repro.bench.run_hotpath` and gates on
**interpreter calls per ingested frame** — deterministic for a seeded
simulation, unlike wall-clock on shared CI machines (the E15 technique).

The ``_BASELINE_*`` constants are the same scenario measured at the PR 5
merge base (commit d8c3023, "Unified telemetry spine"); the gate asserts
at least a 2x reduction against them.  The run must stay bit-for-bit
deterministic: two same-seed runs must agree on every seed-determined
measurement.

The **fluid arm** runs the same scenario with rate-interval ingest (bulk
buffer/storage operations on a zero-jitter workload) over the
calendar-queue scheduler and gates on a >= 10x calls/frame reduction
against the same merge-base baseline, with its own determinism twin.

``LSDF_BENCH_TINY=1`` shrinks the horizon for CI smoke runs.
"""

import os

from repro.bench import run_hotpath
from repro.simkit.units import fmt_duration

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_SIM_HOURS = 0.25 if _TINY else 1.0
_INSTRUMENTS = 2 if _TINY else 6

# Interpreter calls per ingested frame at the pre-PR merge base
# (d8c3023), measured with this same scenario + cProfile recipe:
# tiny arm: 2,074 frames / 6,528,916 calls; standard arm: 8,322 frames /
# 29,121,138 calls.
_BASELINE_CALLS_PER_FRAME = 3148.0 if _TINY else 3499.3
_MIN_SPEEDUP = 2.0
_MIN_FLUID_SPEEDUP = 10.0


def _measure(fluid: bool = False):
    # Warm-up run (flushes lazy imports out of the profiled region) doubles
    # as the determinism twin; the profiled run supplies the gate metric.
    warm = run_hotpath(hours=_SIM_HOURS, instruments=_INSTRUMENTS, fluid=fluid)
    profiled = run_hotpath(
        hours=_SIM_HOURS, instruments=_INSTRUMENTS, profile=True, fluid=fluid
    )
    return warm, profiled


def test_e16_hotpath_speedup(benchmark, report):
    warm, profiled = benchmark.pedantic(_measure, rounds=1, iterations=1)
    speedup = _BASELINE_CALLS_PER_FRAME / profiled.calls_per_frame
    hit_ratio = profiled.route_cache_hits / max(
        1, profiled.route_cache_hits + profiled.route_cache_misses
    )
    report(
        "E16", "hot-path overhaul: incremental netsim + slotted kernel",
        [
            ("frames acquired", "-", f"{profiled.frames:,}"),
            ("background flows", "-", f"{profiled.background_flows:,}"),
            ("events scheduled", "-", f"{profiled.events_scheduled:,}"),
            ("events/sec (wall)", "informational",
             f"{warm.events_per_second:,.0f}"),
            ("interpreter calls/frame", f"{_BASELINE_CALLS_PER_FRAME:,.1f} "
             "at merge base", f"{profiled.calls_per_frame:,.1f}"),
            ("calls/frame reduction", f">= {_MIN_SPEEDUP:.1f}x",
             f"{speedup:.2f}x"),
            ("fair-share solves (skipped)", "-",
             f"{profiled.solves:,} ({profiled.solves_skipped:,} skipped)"),
            ("rebalance passes", "one per batched instant",
             f"{profiled.rebalances:,}"),
            ("route cache hit ratio", "> 0.9",
             f"{hit_ratio:.3f} ({profiled.route_cache_hits:,} hits)"),
            ("wall-clock (unprofiled)", "informational",
             fmt_duration(warm.wall_seconds)),
        ],
    )
    # Determinism: every seed-determined measurement agrees between the
    # warm-up and profiled runs (profiling must observe, not perturb).
    assert warm.deterministic() == profiled.deterministic()
    # The scenario actually exercised both subsystems under load.
    assert profiled.frames > 0 and profiled.background_flows > 0
    assert profiled.solves > 0
    # Route caching works: repeat pairs on a stable topology never re-run
    # pathfinding.
    assert hit_ratio > 0.9
    # The gate: interpreter work per frame dropped at least 2x vs the
    # pre-PR baseline.
    assert speedup >= _MIN_SPEEDUP, (
        f"calls/frame {profiled.calls_per_frame:,.1f} is only "
        f"{speedup:.2f}x better than the {_BASELINE_CALLS_PER_FRAME:,.1f} "
        f"baseline (need >= {_MIN_SPEEDUP:.1f}x)"
    )


def test_e16_fluid_arm_speedup(benchmark, report):
    warm, profiled = benchmark.pedantic(
        _measure, args=(True,), rounds=1, iterations=1)
    speedup = _BASELINE_CALLS_PER_FRAME / profiled.calls_per_frame
    report(
        "E16-fluid", "fluid-event kernel: rate-interval ingest + "
        "calendar-queue scheduler",
        [
            ("frames acquired", "-", f"{profiled.frames:,}"),
            ("background flows", "-", f"{profiled.background_flows:,}"),
            ("events scheduled", "vs per-frame arm's O(frames)",
             f"{profiled.events_scheduled:,}"),
            ("events/sec (wall)", "informational",
             f"{warm.events_per_second:,.0f}"),
            ("interpreter calls/frame", f"{_BASELINE_CALLS_PER_FRAME:,.1f} "
             "at merge base", f"{profiled.calls_per_frame:,.1f}"),
            ("calls/frame reduction", f">= {_MIN_FLUID_SPEEDUP:.1f}x",
             f"{speedup:.2f}x"),
            ("fair-share solves (skipped)", "-",
             f"{profiled.solves:,} ({profiled.solves_skipped:,} skipped)"),
            ("wall-clock (unprofiled)", "informational",
             fmt_duration(warm.wall_seconds)),
        ],
    )
    # Determinism twin: the fluid arm must be exactly as reproducible as
    # the per-frame arm (profiling observes, never perturbs).
    assert warm.deterministic() == profiled.deterministic()
    assert profiled.frames > 0 and profiled.background_flows > 0
    # The tentpole gate: rate-interval ingest cuts interpreter work per
    # frame at least 10x against the PR 5 merge-base baseline.
    assert speedup >= _MIN_FLUID_SPEEDUP, (
        f"fluid calls/frame {profiled.calls_per_frame:,.1f} is only "
        f"{speedup:.2f}x better than the {_BASELINE_CALLS_PER_FRAME:,.1f} "
        f"baseline (need >= {_MIN_FLUID_SPEEDUP:.1f}x)"
    )
