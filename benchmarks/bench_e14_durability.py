"""E14 — durability ablation: integrity scrubbing on vs off.

The paper positions the LSDF as "archival quality" storage (slide 14), yet
ADAL only verifies checksums when a caller asks — silent bit-rot sits
undetected until a user read fails, possibly years later.  E14 quantifies
the durability layer: identical facilities suffer the same
silent-corruption + metadata-crash chaos; one runs the integrity scrubber
daemon (detect, archive verified copies, repair in place), the other runs
undefended.  The headline metric is what the *first reader* sees: with the
scrubber on, every corrupted object is detected and repaired before any
read; with it off, readers eat the bit-rot.

``LSDF_BENCH_TINY=1`` shrinks the dataset and horizon for CI smoke runs.
"""

import os

from repro.adal.api import checksum_bytes
from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.metadata.schema import FieldSpec, Schema
from repro.simkit.units import KiB, TB

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_OBJECTS = 8 if _TINY else 48
_OBJECT_SIZE = 4 * KiB if _TINY else 256 * KiB
_CORRUPTED = 3 if _TINY else 9
_CORRUPT_AT = 310.0
_CRASH_AT = 420.0
_FIRST_READ_AT = 600.0 if _TINY else 3600.0
_SCRUB_INTERVAL = 60.0 if _TINY else 900.0


def _run(scrub_on: bool):
    facility = Facility(
        FacilityConfig(
            arrays=[ArraySpec("a1", 10 * TB, 2e9), ArraySpec("a2", 10 * TB, 2e9)],
            cluster_racks=2,
            nodes_per_rack=4,
            durability_enabled=scrub_on,
            scrub_interval=_SCRUB_INTERVAL,
        ),
        seed=31,
        scrub_daemon=True,  # the ablation arm scans too — it just can't act
    )
    backend = facility.adal_registry.resolve("lsdf")
    facility.metadata.register_project(
        "e14", Schema("basic", [FieldSpec("sample", "str")]))
    for i in range(_OBJECTS):
        data = bytes([i % 251]) * int(_OBJECT_SIZE)
        backend.put(f"e14/obj{i}", data)
        facility.metadata.register_dataset(
            f"e14-{i}", "e14", f"adal://lsdf/e14/obj{i}", len(data),
            checksum_bytes(data), {"sample": f"s{i}"},
        )

    schedule = facility.durability_drill(
        start=_CORRUPT_AT, corrupt_count=_CORRUPTED,
        crash_delay=_CRASH_AT - _CORRUPT_AT, recovery_after=30.0,
    )
    schedule.run(facility)
    facility.run(until=_FIRST_READ_AT)

    # The first reader arrives: verify every object against the catalog.
    corrupt_reads = 0
    for record in facility.metadata.datasets():
        path = record.url.split("/", 3)[3]
        if checksum_bytes(backend.get(path)) != record.checksum:
            corrupt_reads += 1
    return facility, corrupt_reads


def test_e14_scrubber_ablation(benchmark, report):
    (on_fac, on_bad), (off_fac, off_bad) = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    on = on_fac.durability.stats()
    off = off_fac.durability.stats()
    mttd = on["mean_time_to_detect"]
    report(
        "E14", "silent corruption: integrity scrubbing on vs off",
        [
            ("objects stored / corrupted", "identical runs",
             f"{_OBJECTS} / {_CORRUPTED}"),
            ("corruption detections logged", "3 vs re-detected each pass",
             f"{on['corruptions_detected']} vs {off['corruptions_detected']}"),
            ("repairs executed", "scrubber wins",
             f"{sum(on['repairs'].values())} vs {sum(off['repairs'].values())}"),
            ("corrupt objects seen by first reader", "0 with scrubbing",
             f"{on_bad} vs {off_bad}"),
            ("mean time to detect", "< scrub interval + pass",
             f"{mttd:.0f} s" if mttd is not None else "n/a"),
            ("scrub coverage (last pass)", "1.0",
             f"{on['scrub_coverage']:.2f} vs {off['scrub_coverage']:.2f}"),
            ("metadata crash recovered", "byte-identical replay",
             f"{on['metadata']['recoveries']}/{on['metadata']['crashes']} "
             f"({on['metadata']['replayed_records']} records)"),
        ],
    )
    # Shape: the defended facility hides the corruption from every reader;
    # the undefended one serves rotten bytes for the same chaos.
    assert on_bad == 0
    assert off_bad > 0
    assert sum(on["repairs"].values()) == _CORRUPTED
    assert on["metadata"]["recoveries"] == 1
