"""E10 — slide 13: "DNA sequencing and reconstruction using Hadoop tools".

Two levels, matching the repository's two MapReduce engines:

* the *real* k-mer counting pipeline (in-process engine) on synthetic
  shotgun reads — correctness against a reference counter plus the
  combiner's shuffle reduction;
* the same job shape at facility scale on the simulated cluster, where the
  k-mer expansion makes the shuffle the interesting phase.
"""

import time
from collections import Counter

import pytest

from repro.core import Facility
from repro.mapreduce import run_local
from repro.simkit import RandomSource
from repro.simkit.units import GB, fmt_bytes, fmt_duration
from repro.workloads import (
    dna_cluster_job,
    generate_genome,
    generate_reads,
    kmer_count_job,
    reads_to_splits,
)

K = 21


def test_e10_real_kmer_pipeline(benchmark, report):
    rng = RandomSource(101)
    genome = generate_genome(30_000, rng)
    reads = generate_reads(genome, 6_000, read_length=100, error_rate=0.01, rng=rng)
    splits = reads_to_splits(reads, 500)

    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_local(kmer_count_job(K), splits, reducers=8),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - t0

    reference = Counter()
    for read in reads:
        for i in range(len(read) - K + 1):
            reference[read[i : i + K]] += 1
    counts = result.as_dict()
    total_bases = sum(len(r) for r in reads)
    report(
        "E10", "real k-mer counting (in-process Hadoop data path)",
        [
            ("input", "-", f"{len(reads):,} reads, {total_bases / 1e6:.1f} Mbp"),
            ("distinct k-mers", "= reference", f"{len(counts):,}"),
            ("combiner shuffle reduction", "large",
             f"{result.map_output_records:,} -> {result.shuffle_records:,} records"),
            ("throughput", "-", f"{total_bases / elapsed / 1e6:.1f} Mbp/s"),
        ],
    )
    assert counts == dict(reference)
    assert result.shuffle_records < result.map_output_records


def test_e10_error_kmers_are_low_multiplicity(benchmark, report):
    """The assembly-relevant signal: true k-mers appear ~coverage times,
    error k-mers once or twice — the histogram valley real assemblers cut at."""
    import numpy as np

    def run():
        rng = RandomSource(7)
        genome = generate_genome(5_000, rng)
        reads = generate_reads(genome, 2_000, read_length=100, error_rate=0.01,
                               rng=rng)
        result = run_local(kmer_count_job(K), reads_to_splits(reads, 250),
                           reducers=8)
        return genome, result

    genome, result = benchmark.pedantic(run, rounds=1, iterations=1)
    genome_kmers = {genome[i : i + K] for i in range(len(genome) - K + 1)}
    true_counts, error_counts = [], []
    for kmer, count in result.output:
        (true_counts if kmer in genome_kmers else error_counts).append(count)
    true_med = float(np.median(true_counts))
    err_med = float(np.median(error_counts))
    report(
        "E10b", "k-mer spectrum: signal vs sequencing errors",
        [
            ("median multiplicity (true k-mers)", "~coverage (40x)", f"{true_med:.0f}"),
            ("median multiplicity (error k-mers)", "~1", f"{err_med:.0f}"),
        ],
    )
    assert true_med > 10 * err_med


def test_e10_cluster_scale_dna_job(benchmark, report):
    def run():
        facility = Facility(seed=10)
        holder = {}

        def scenario():
            yield facility.load_into_hdfs("/data/reads", 200 * GB)
            holder["result"] = yield facility.mapreduce.submit(
                dna_cluster_job("/data/reads", reduces=32)
            )

        p = facility.sim.process(scenario())
        facility.run()
        assert not p.failed, p.exception
        return holder["result"]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E10c", "DNA k-mer job at facility scale (200 GB of reads)",
        [
            ("job time", "-", fmt_duration(result.duration)),
            ("shuffle volume", "> input (k-mer expansion)",
             fmt_bytes(result.bytes_shuffled)),
            ("node-local maps", "high", f"{result.locality_fraction:.0%}"),
        ],
    )
    assert result.bytes_shuffled > result.bytes_input
    assert result.locality_fraction > 0.7


def test_e10_reconstruction_from_spectrum(benchmark, report):
    """The 'reconstruction' in 'DNA sequencing and reconstruction': a de
    Bruijn assembly over the MapReduce spectrum rebuilds the genome."""
    from repro.workloads import assemble

    def run():
        rng = RandomSource(202)
        genome = generate_genome(10_000, rng)
        reads = generate_reads(genome, 4_000, read_length=100, error_rate=0.01,
                               rng=rng)
        spectrum = run_local(kmer_count_job(K), reads_to_splits(reads, 500),
                             reducers=8).as_dict()
        return genome, assemble(spectrum, min_multiplicity=5)

    genome, result = benchmark.pedantic(run, rounds=1, iterations=1)
    identity = result.longest / len(genome)
    report(
        "E10d", "de-novo reconstruction (40x coverage, 1% errors)",
        [
            ("contigs", "~1 (repeat-free genome)", str(len(result.contigs))),
            ("N50", "~genome length", f"{result.n50():,} bp"),
            ("longest contig vs genome", ">= 95%", f"{identity:.1%}"),
            ("error k-mers discarded", "the 1x tail", f"{result.dropped_kmers:,}"),
        ],
    )
    assert identity >= 0.95
    assert result.dropped_kmers > 0
