"""E11 — slide 11: the OpenNebula cloud — "users can deploy own dedicated
data-processing VMs (customized environment!) — reliable, highly flexible,
and very fast to deploy".

Measured: cold vs cached deploy latency ("very fast to deploy" is the image
cache), deploy latency vs image size, a burst of user VMs (queueing under
contention), and the scheduler-policy ablation.
"""

import pytest

from repro.core import Facility
from repro.cloud import VMTemplate
from repro.simkit.units import GB, fmt_duration


def _facility(scheduler="rank", image_cache=True, seed=21):
    from repro.core import lsdf_2011_config

    config = lsdf_2011_config()
    config.cloud_scheduler = scheduler
    config.cloud_image_cache = image_cache
    return Facility(config, seed=seed)


def _deploy_n(facility, template, n):
    procs = [facility.cloud.deploy(template) for _ in range(n)]
    facility.run()
    return [p.value for p in procs]


def test_e11_cold_vs_cached_deploy(benchmark, report):
    def run():
        facility = _facility()
        template = VMTemplate("env", 4, 8 * GB, "custom-sl5", 8 * GB)
        cold = _deploy_n(facility, template, 1)[0]
        # Stop and redeploy onto the same (now cached) host pool.
        stop = facility.cloud.shutdown(cold.vm_id)
        facility.run()
        # Force placement back onto the cached host via first-fit on a
        # fresh controller state: simplest honest re-deploy is another VM;
        # rank spreads, so deploy as many as hosts to guarantee a cache hit.
        warm_vms = _deploy_n(facility, template, 60)
        warm_hits = facility.cloud.cache_hits.value
        warm = min(warm_vms, key=lambda vm: vm.deploy_latency)
        return cold, warm, warm_hits

    cold, warm, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E11", "VM deploy latency: cold image vs cached",
        [
            ("cold deploy (8 GB image)", "image transfer dominates",
             fmt_duration(cold.deploy_latency)),
            ("cached redeploy", "'very fast to deploy'",
             fmt_duration(warm.deploy_latency)),
            ("cache hits in warm wave", ">= 1", f"{hits:.0f}"),
        ],
    )
    assert hits >= 1
    assert warm.deploy_latency < cold.deploy_latency


def test_e11_ablation_image_cache_off(benchmark, report):
    def run(cache):
        facility = _facility(image_cache=cache)
        template = VMTemplate("env", 2, 4 * GB, "img", 6 * GB)
        vms = _deploy_n(facility, template, 20)
        second_wave = []
        for vm in vms:
            facility.cloud.shutdown(vm.vm_id)
        facility.run()
        second_wave = _deploy_n(facility, template, 20)
        import numpy as np

        return float(np.mean([vm.deploy_latency for vm in second_wave]))

    with_cache = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without = run(False)
    report(
        "E11b", "ablation: per-host image cache",
        [
            ("2nd-wave mean deploy (cache on)", "near boot-time only",
             fmt_duration(with_cache)),
            ("2nd-wave mean deploy (cache off)", "re-transfers every image",
             fmt_duration(without)),
        ],
    )
    assert with_cache < without


def test_e11_deploy_latency_vs_image_size(benchmark, report):
    def run():
        out = {}
        for size_gb in (1, 4, 16):
            facility = _facility()
            template = VMTemplate("env", 2, 4 * GB, f"img{size_gb}",
                                  size_gb * GB)
            out[size_gb] = _deploy_n(facility, template, 1)[0].deploy_latency
        return out

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E11c", "cold deploy latency vs image size",
        [(f"{s} GB image", "linear in size past boot", fmt_duration(latencies[s]))
         for s in sorted(latencies)],
    )
    assert latencies[1] < latencies[4] < latencies[16]


def test_e11_burst_of_user_vms(benchmark, report):
    def run():
        facility = _facility()
        template = VMTemplate("worker", 4, 8 * GB, "batch-img", 4 * GB)
        vms = _deploy_n(facility, template, 100)
        import numpy as np

        lat = np.array([vm.deploy_latency for vm in vms])
        queued = np.array([vm.queue_latency for vm in vms])
        return lat, queued, facility

    lat, queued, facility = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E11d", "burst: 100 user VMs on the 60-node pool",
        [
            ("all reach RUNNING", "reliable", str(len(lat))),
            ("deploy p50 / p95", "-",
             f"{fmt_duration(float(__import__('numpy').percentile(lat, 50)))} / "
             f"{fmt_duration(float(__import__('numpy').percentile(lat, 95)))}"),
            ("VMs that had to queue", "pool is finite",
             str(int((queued > 1.0).sum()))),
        ],
    )
    assert len(lat) == 100
    assert (queued > 1.0).sum() == 0  # 60 hosts x 2 VMs capacity: no queue at 100


def test_e11_ablation_schedulers(benchmark, report):
    def run(policy):
        facility = _facility(scheduler=policy)
        template = VMTemplate("w", 4, 8 * GB, "img", 2 * GB)
        vms = _deploy_n(facility, template, 30)
        hosts = {vm.host for vm in vms}
        return len(hosts)

    spread = benchmark.pedantic(lambda: run("rank"), rounds=1, iterations=1)
    packed = run("pack")
    first_fit = run("first_fit")
    report(
        "E11e", "ablation: scheduler policy (30 VMs, hosts used)",
        [
            ("rank (spread)", "many hosts", str(spread)),
            ("pack (consolidate)", "few hosts", str(packed)),
            ("first-fit", "between", str(first_fit)),
        ],
    )
    assert spread > packed
