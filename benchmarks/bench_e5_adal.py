"""E5 — slide 9: the Abstract Data Access Layer.

Paper claims: one unified layer over heterogeneous backends and auth
mechanisms, "extensible to support new backends".  Measured: per-operation
throughput of the same client code over each bundled backend, the cost of
the auth/ACL layer, and cross-backend copy — demonstrating that unification
costs little and extension is uniform.
"""

import time

import pytest

from repro.adal import (
    AclAuthorizer,
    AdalClient,
    BackendRegistry,
    Credentials,
    HdfsBackend,
    MemoryBackend,
    PosixBackend,
    TieredBackend,
    TokenAuth,
)
from repro.hdfs import NameNode
from repro.simkit import RandomSource

N_OBJECTS = 300
PAYLOAD = bytes(1024) * 64  # 64 KiB


def _registry(tmp_path) -> BackendRegistry:
    registry = BackendRegistry()
    registry.register("memory", MemoryBackend())
    registry.register("posix", PosixBackend(tmp_path / "posix"))
    registry.register(
        "tiered", TieredBackend(MemoryBackend(), MemoryBackend(),
                                hot_capacity=len(PAYLOAD) * N_OBJECTS // 4)
    )
    namenode = NameNode(block_size=2**20, replication=3, rng=RandomSource(0))
    for rack in range(4):
        for host in range(15):
            namenode.add_datanode(f"r{rack:02d}h{host:02d}", f"rack{rack}", 1e12)
    registry.register("hdfs", HdfsBackend(namenode))
    return registry


def _ops_per_s(fn, n) -> float:
    t0 = time.perf_counter()
    for i in range(n):
        fn(i)
    return n / (time.perf_counter() - t0)


def test_e5_uniform_api_across_backends(benchmark, report, tmp_path):
    registry = _registry(tmp_path)
    client = AdalClient(registry)
    rows = []

    def run():
        for store in registry.stores:
            put_rate = _ops_per_s(
                lambda i, s=store: client.put(f"adal://{s}/obj/{i}", PAYLOAD), N_OBJECTS
            )
            get_rate = _ops_per_s(
                lambda i, s=store: client.get(f"adal://{s}/obj/{i}"), N_OBJECTS
            )
            stat_rate = _ops_per_s(
                lambda i, s=store: client.stat(f"adal://{s}/obj/{i}"), N_OBJECTS
            )
            rows.append((f"{store}: put/get/stat", "same API everywhere",
                         f"{put_rate:,.0f} / {get_rate:,.0f} / {stat_rate:,.0f} op/s"))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report("E5", f"ADAL ops over 4 backends ({len(PAYLOAD) // 1024} KiB objects)", rows)
    # Every backend answered every operation through the identical client.
    for store in registry.stores:
        assert client.get(f"adal://{store}/obj/0") == PAYLOAD


def test_e5_auth_layer_overhead(benchmark, report, tmp_path):
    registry = _registry(tmp_path)
    plain = AdalClient(registry)

    auth = TokenAuth()
    auth.register("ana", "tok", groups=["zf"])
    acl = AclAuthorizer()
    acl.grant("adal://memory", "zf", ["read", "write"])
    secured = AdalClient(registry, auth, Credentials("ana", "tok"), acl)

    def run():
        plain_rate = _ops_per_s(
            lambda i: plain.put(f"adal://memory/plain/{i}", PAYLOAD), N_OBJECTS
        )
        secured_rate = _ops_per_s(
            lambda i: secured.put(f"adal://memory/sec/{i}", PAYLOAD), N_OBJECTS
        )
        return plain_rate, secured_rate

    plain_rate, secured_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = plain_rate / secured_rate
    report(
        "E5b", "auth + ACL overhead on the hot path",
        [("anonymous vs token+ACL put", "small constant cost",
          f"{plain_rate:,.0f} vs {secured_rate:,.0f} op/s ({overhead:.2f}x)")],
    )
    assert overhead < 5.0  # authorisation must not dominate object ops


def test_e5_cross_backend_copy(benchmark, report, tmp_path):
    registry = _registry(tmp_path)
    client = AdalClient(registry)
    for i in range(50):
        client.put(f"adal://memory/src/{i}", PAYLOAD)

    def run():
        for i in range(50):
            client.copy(f"adal://memory/src/{i}", f"adal://posix/dst/{i}")
        return True

    t0 = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    report(
        "E5c", "cross-backend copy (memory -> posix, 50 x 64 KiB)",
        [("copy", "one-call across stores", f"{50 / elapsed:,.0f} objects/s")],
    )
    assert client.stat("adal://posix/dst/0").checksum == \
        client.stat("adal://memory/src/0").checksum


def test_e5_checksum_verification_cost(benchmark, report, tmp_path):
    registry = _registry(tmp_path)
    client = AdalClient(registry)
    for i in range(N_OBJECTS):
        client.put(f"adal://memory/v/{i}", PAYLOAD)

    def run():
        raw = _ops_per_s(lambda i: client.get(f"adal://memory/v/{i}"), N_OBJECTS)
        verified = _ops_per_s(
            lambda i: client.get(f"adal://memory/v/{i}", verify=True), N_OBJECTS
        )
        return raw, verified

    raw, verified = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E5d", "end-to-end checksum verification",
        [("get vs get(verify=True)", "integrity costs CPU only",
          f"{raw:,.0f} vs {verified:,.0f} op/s")],
    )
    assert verified > 0
