"""Shared helpers for the experiment benches.

Every bench prints a paper-vs-measured table through :func:`report`, which
also appends to ``benchmarks/results.txt`` so the numbers survive pytest's
output capture (EXPERIMENTS.md is written from that file).
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS = pathlib.Path(__file__).parent / "results.txt"


def pytest_configure(config):
    # Fresh results file per session.
    if not config.option.collectonly:
        _RESULTS.write_text("")


@pytest.fixture
def report(capsys):
    """Print (and persist) one experiment's paper-vs-measured table."""

    def _report(exp_id: str, title: str, rows: list[tuple[str, str, str]]) -> None:
        lines = [f"\n== {exp_id}: {title} ==",
                 f"   {'quantity':40s} {'paper':>22s}   measured"]
        for quantity, paper, measured in rows:
            lines.append(f"   {quantity:40s} {paper:>22s}   {measured}")
        text = "\n".join(lines)
        with capsys.disabled():
            print(text)
        with _RESULTS.open("a") as fh:
            fh.write(text + "\n")

    return _report
