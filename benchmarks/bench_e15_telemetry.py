"""E15 — the telemetry spine is (nearly) free.

PR 4 re-routes every subsystem's counters through the facility-wide
:class:`~repro.telemetry.MetricsRegistry` and event bus.  E15 proves the
refactor did not tax the hot path: the E1 microscopy ingest runs twice —
telemetry enabled (the default) and disabled (``telemetry_enabled=False``,
all recording no-ops) — and the enabled run must cost **under 5 %** extra.

Wall-clock on shared CI machines is far noisier than a 5 % bound (load
swings of +/-20 % are routine), so the asserted overhead metric is the
*interpreter work* ratio — total function calls executed, measured with
:mod:`cProfile` — which is deterministic for the seeded simulation.
Wall-clock is still measured and reported, with only a loose sanity bound.
The two runs must also produce byte-identical simulated outcomes: the
spine observes the simulation, it never perturbs it.

``LSDF_BENCH_TINY=1`` shrinks the horizon for CI smoke runs.
"""

import cProfile
import dataclasses
import os
import pstats
import time

from repro.core import Facility
from repro.core.config import lsdf_2011_config
from repro.simkit.units import HOUR, fmt_duration
from repro.workloads import zebrafish_microscopes

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_SIM_HOURS = 0.5 if _TINY else 2.0
_INSTRUMENTS = 2 if _TINY else 4
_MAX_OVERHEAD = 0.05
#: Wall-clock sanity backstop only — see the module docstring.
_MAX_WALL_OVERHEAD = 0.50


def _run(enabled: bool, profiler: cProfile.Profile = None):
    cfg = dataclasses.replace(lsdf_2011_config(), telemetry_enabled=enabled)
    facility = Facility(cfg, seed=11)
    pipeline = facility.ingest_pipeline(
        zebrafish_microscopes(instruments=_INSTRUMENTS))
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    rep = pipeline.run(duration=_SIM_HOURS * HOUR)
    if profiler is not None:
        profiler.disable()
    return time.perf_counter() - started, facility, rep


def _calls(profiler: cProfile.Profile) -> int:
    return sum(v[0] for v in pstats.Stats(profiler).stats.values())


def _measure():
    # Warm-up pass (flushes lazy imports out of the profiled region) doubles
    # as the wall-clock sample and supplies the facilities for assertions.
    wall_on, fac_on, rep_on = _run(True)
    wall_off, fac_off, rep_off = _run(False)
    prof_on, prof_off = cProfile.Profile(), cProfile.Profile()
    _run(True, prof_on)
    _run(False, prof_off)
    return (wall_on, fac_on, rep_on), (wall_off, fac_off, rep_off), \
        _calls(prof_on), _calls(prof_off)


def test_e15_telemetry_overhead_under_5_percent(benchmark, report):
    ((wall_on, fac_on, rep_on), (wall_off, fac_off, rep_off),
     calls_on, calls_off) = benchmark.pedantic(_measure, rounds=1, iterations=1)
    overhead = calls_on / calls_off - 1.0
    wall_overhead = wall_on / wall_off - 1.0
    frames_metric = fac_on.telemetry.registry.total("ingest.frames_total")
    report(
        "E15", "telemetry spine overhead on the E1 ingest path (on vs off)",
        [
            ("frames acquired", "identical runs",
             f"{rep_on.frames_acquired:,} vs {rep_off.frames_acquired:,}"),
            ("interpreter calls", "-",
             f"{calls_on:,} vs {calls_off:,}"),
            ("work overhead (calls)", f"< {_MAX_OVERHEAD:.0%}",
             f"{overhead:+.2%}"),
            ("wall-clock", "informational",
             f"{fmt_duration(wall_on)} vs {fmt_duration(wall_off)} "
             f"({wall_overhead:+.1%})"),
            ("metrics registered", "> 0 only when on",
             f"{len(fac_on.telemetry.registry.names())} vs "
             f"{len(fac_off.telemetry.registry.names())}"),
        ],
    )
    # The spine observes, it never perturbs: identical simulated outcomes.
    # (Registry-derived report fields read 0 in the off arm by design, so
    # compare live facility state, not recorded stats.)
    assert rep_on.frames_acquired == rep_off.frames_acquired
    assert len(fac_on.metadata) == len(fac_off.metadata)
    assert fac_on.pool.used == fac_off.pool.used
    assert fac_on.sim.now == fac_off.sim.now
    # The enabled run actually recorded the workload...
    assert frames_metric == rep_on.frames_ingested == rep_on.frames_acquired
    # ...the disabled run recorded nothing (instruments exist, stay zero).
    assert fac_off.telemetry.registry.total("ingest.frames_total") == 0.0
    assert fac_off.telemetry.bus.published == 0
    # And the whole spine costs under 5 % of the hot path's work.
    assert overhead < _MAX_OVERHEAD, (
        f"telemetry work overhead {overhead:+.2%} exceeds {_MAX_OVERHEAD:.0%}")
    assert wall_overhead < _MAX_WALL_OVERHEAD
