"""E13 — facility resilience: ingest under chaos, retries on vs off.

The paper sells the LSDF on redundant infrastructure (slide 7: redundant
routers, replicated HDFS, tape backup) but says nothing about what the
*software* data path does when that infrastructure fails over.  E13
quantifies it: the bundled :func:`~repro.core.chaos.resilience_drill`
(router flap, full backbone blackout, rolling datanode failures, flaky ADAL
backend, array brown-out, metadata outage) runs against an identical
microscopy ingest twice — once with the resilience layer on (retry/backoff,
circuit breakers, failover, dead-letter queue) and once with it off (the
``on_error="drop"`` ablation).  With the layer on, every acquired frame is
registered or dead-lettered; with it off, the blackout window's frames
simply vanish.

``LSDF_BENCH_TINY=1`` shrinks the acquisition horizon and frame rate for
CI smoke runs.
"""

import os

from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.ingest import MicroscopeConfig
from repro.simkit.units import TB, fmt_bytes

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_DURATION = 300.0 if _TINY else 600.0
_FRAMES_PER_DAY = 100_000.0 if _TINY else 200_000.0


def _run(resilient: bool):
    facility = Facility(
        FacilityConfig(
            arrays=[ArraySpec("a1", 20 * TB, 2e9), ArraySpec("a2", 20 * TB, 2e9)],
            cluster_racks=2,
            nodes_per_rack=4,
            resilience_enabled=resilient,
        ),
        seed=23,
    )
    scopes = [MicroscopeConfig(name=f"scope-{i}", frames_per_day=_FRAMES_PER_DAY)
              for i in range(2)]
    pipeline = facility.ingest_pipeline(
        scopes, agents=2, batch_size=8,
        on_error="raise" if resilient else "drop",
    )
    for scope in pipeline.microscopes:
        scope.run(pipeline.buffer, duration=_DURATION)
    for agent in pipeline.agents:
        agent.start()
    schedule = facility.resilience_drill(start=60.0, blackout=45.0)
    schedule.run(facility)
    facility.run()  # to quiescence: acquisition over, backlog drained
    return facility, pipeline.report(_DURATION)


def test_e13_resilience_layer_under_chaos(benchmark, report):
    (on_fac, on_rep), (off_fac, off_rep) = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    kit = on_fac.resilience
    delivered_on = on_rep.frames_ingested / on_rep.frames_acquired
    delivered_off = off_rep.frames_ingested / off_rep.frames_acquired
    report(
        "E13", "ingest under the resilience drill (retries on vs off)",
        [
            ("frames acquired", "identical runs",
             f"{on_rep.frames_acquired:,} vs {off_rep.frames_acquired:,}"),
            ("frames delivered", "resilience wins",
             f"{delivered_on:.2%} vs {delivered_off:.2%}"),
            ("frames silently lost", "0 with resilience",
             f"{on_rep.frames_unaccounted} vs {off_rep.frames_lost}"),
            ("frames dead-lettered (audited)", "small tail",
             f"{on_rep.frames_dead_lettered} vs -"),
            ("batch retries / failovers", "-",
             f"{on_rep.retries} / {on_rep.failovers}"),
            ("breaker transitions", ">= 1 full cycle",
             f"{len(kit.breakers.transitions())}"),
            ("bytes recovered by retry", "> 0",
             fmt_bytes(kit.recovered_bytes.value)),
            ("bytes in dead-letter queue", "audited, not silent",
             fmt_bytes(kit.dlq.total_bytes)),
        ],
    )
    # Shape: with resilience every frame has a fate and most arrive;
    # without it the same chaos schedule demonstrably loses frames.
    assert on_rep.frames_unaccounted == 0
    assert on_rep.frames_lost == 0
    assert (on_rep.frames_ingested + on_rep.frames_dead_lettered
            == on_rep.frames_acquired)
    assert on_rep.retries > 0
    assert kit.recovered_bytes.value > 0
    assert off_rep.frames_lost > 0
    assert on_rep.frames_ingested > off_rep.frames_ingested
    assert delivered_on > 0.9
    assert off_fac.resilience.dlq.depth == 0  # no DLQ without the layer
