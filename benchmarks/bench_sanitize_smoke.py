"""Sanitizer smoke — the reproducibility claim, exercised end to end.

Every benchmark in this directory leans on the same promise: a facility
run is bit-for-bit deterministic given a seed, so paper-vs-measured
tables are stable and ablation arms are comparable.  This smoke runs the
``repro.analysis.sanitize`` checkers over a facility scenario and reports
the evidence: identical event traces across same-seed runs, and a
tie-shuffle pass showing the outcome does not depend on the insertion
order of simultaneous events.

``LSDF_BENCH_TINY=1`` selects the 2-sim-minute ``tiny`` scenario (CI);
otherwise the ``standard`` ingest + HDFS + MapReduce scenario runs.
"""

import os

from repro.analysis.sanitize import check_determinism, check_races, facility_run
from repro.analysis.scenarios import get_scenario

_TINY = os.environ.get("LSDF_BENCH_TINY", "") not in ("", "0")
_SCENARIO = "tiny" if _TINY else "standard"


def test_sanitize_smoke(benchmark, report):
    scenario = get_scenario(_SCENARIO)
    run_fn = facility_run(scenario)

    det, races = benchmark.pedantic(
        lambda: (
            check_determinism(run_fn, seed=0),
            check_races(run_fn, seed=0, allowed=scenario.races_allowed),
        ),
        rounds=1, iterations=1,
    )

    report(
        "SAN", f"determinism + race sanitizers ({scenario.name} scenario)",
        [
            ("events per run", "-", f"{det.events:,}"),
            ("same-seed traces", "byte-identical",
             "identical" if det.identical else f"diverge at #{det.divergence_index}"),
            ("trace digest", "-", det.trace_digest[:16]),
            ("tie groups reordered", "> 0 (shuffle exercised)",
             f"{races.reordered_groups:,}"),
            ("order-dependent event pairs", "0",
             f"{len(races.violations)}"),
            ("outcome under tie-shuffle", "invariants identical",
             "identical" if races.outcome_matches else "CHANGED"),
        ],
    )

    assert det.identical
    assert races.ok
    assert races.reordered_groups > 0
