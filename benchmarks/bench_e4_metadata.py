"""E4 — slide 8: the project metadata DB.

Paper claims are qualitative ("metadata is essential", "invisible data is
lost data", chained processing records).  Measured here:

* registration and query throughput at screening-campaign scale;
* index-assisted vs full-scan query speedup;
* the findability experiment: fraction of data retrievable by content
  criteria *with* metadata vs *without* (where only path listing exists);
* chained processing-record reconstruction cost.
"""

import time

import pytest

from repro.metadata import MetadataStore, Q
from repro.workloads import zebrafish_basic_schema

N_RECORDS = 30_000


def _populate(n=N_RECORDS):
    store = MetadataStore()
    store.register_project("zebrafish", zebrafish_basic_schema())
    for i in range(n):
        store.register_dataset(
            f"img-{i:06d}", "zebrafish", f"adal://lsdf/zf/{i}", 4_000_000, f"c{i}",
            {
                "plate": i % 40,
                "well": f"A{i % 12:02d}",
                "channel": i % 4,
                "wavelength": 400 + (i % 4) * 40,
                "z_plane": i % 6,
                "timepoint": i // 4000,
            },
            created=float(i),
        )
    return store


def test_e4_registration_and_query_scale(benchmark, report):
    t0 = time.perf_counter()
    store = benchmark.pedantic(_populate, rounds=1, iterations=1)
    register_rate = N_RECORDS / (time.perf_counter() - t0)

    # plate = i % 40 and z_plane = i % 6 are partially correlated (gcd 2):
    # plate 7 occurs 750 times; a third of those have z_plane 1.
    query = Q.project("zebrafish") & (Q.field("plate") == 7) & (Q.field("z_plane") == 1)

    t0 = time.perf_counter()
    scan_hits = store.query(query)
    scan_time = time.perf_counter() - t0

    store.index_field("plate")
    t0 = time.perf_counter()
    indexed_hits = store.query(query)
    indexed_time = time.perf_counter() - t0

    report(
        "E4", f"metadata repository at {N_RECORDS:,} datasets",
        [
            ("registration rate", "-", f"{register_rate:,.0f} records/s"),
            ("query (full scan)", "-", f"{scan_time * 1e3:.1f} ms -> {len(scan_hits)} hits"),
            ("query (plate index)", "faster",
             f"{indexed_time * 1e3:.1f} ms ({scan_time / indexed_time:.0f}x speedup)"),
        ],
    )
    assert indexed_hits == scan_hits
    assert indexed_time < scan_time
    assert len(scan_hits) == N_RECORDS // 40 // 3


def test_e4_range_query_pruning(benchmark, report):
    """Ordered-index range predicates: bisect pruning vs the full scan.

    ``timepoint >= cutoff`` selects the newest ~7% of a campaign — the
    shape of every reprocessing selection — and must return the exact
    full-scan answer while touching only the matching tail of the
    ordered index.
    """
    store = benchmark.pedantic(_populate, rounds=1, iterations=1)
    # timepoint = i // 4000 spans 0..7; >= 7 selects the last 2,000 records.
    query = Q.project("zebrafish") & (Q.field("timepoint") >= 7)

    t0 = time.perf_counter()
    scan_hits = store.query(query)
    scan_time = time.perf_counter() - t0

    store.index_field("timepoint")
    t0 = time.perf_counter()
    pruned_hits = store.query(query)
    pruned_time = time.perf_counter() - t0

    candidates = (Q.field("timepoint") >= 7).candidates(store)
    report(
        "E4e", f"range-query pruning at {N_RECORDS:,} datasets",
        [
            ("range query (full scan)", "-",
             f"{scan_time * 1e3:.1f} ms -> {len(scan_hits)} hits"),
            ("range query (ordered index)", "faster",
             f"{pruned_time * 1e3:.1f} ms "
             f"({scan_time / pruned_time:.0f}x speedup)"),
            ("candidate set vs corpus", "tail only",
             f"{len(candidates)} of {N_RECORDS:,} records considered"),
        ],
    )
    assert pruned_hits == scan_hits
    assert pruned_time < scan_time
    assert len(candidates) == 2_000
    assert len(scan_hits) == 2_000


def test_e4_findability_with_vs_without_metadata(benchmark, report):
    """'Invisible (not-found, no-metadata) data is lost data': how much of a
    content-criteria cohort can be found with only paths vs with metadata?"""

    store = benchmark.pedantic(lambda: _populate(10_000), rounds=1, iterations=1)
    # Cohort: frames of plates 0-4 at wavelength 480 after timepoint 1 — the
    # kind of reprocessing selection slide 3 motivates.
    cohort = Q.project("zebrafish") & (Q.field("plate") < 5) \
        & (Q.field("wavelength") == 480) & (Q.field("timepoint") >= 1)
    with_metadata = store.query(cohort)

    # Without metadata, only the URL is known; wavelength/timepoint are not
    # in the path, so a path-only search finds nothing for this cohort.
    findable_by_path = [
        r for r in store.datasets() if "wavelength=480" in r.url and cohort.matches(r)
    ]
    report(
        "E4b", "findability: metadata DB vs bare file paths",
        [
            ("cohort size (with metadata)", "all of it", str(len(with_metadata))),
            ("found by path search alone", "lost data", str(len(findable_by_path))),
        ],
    )
    assert len(with_metadata) > 0
    assert len(findable_by_path) == 0


def test_e4_processing_chain_reconstruction(benchmark, report):
    """Chained METADATA 1..N records (the slide-8 figure) stay cheap to
    reconstruct even for deep chains."""

    def run():
        store = _populate(100)
        parent = None
        for step in range(200):
            record = store.add_processing(
                "img-000000", f"step-{step}", {"iteration": step},
                {"value": step * 1.5}, float(step), float(step) + 0.5,
                parent=parent,
            )
            parent = record.step_id
        return store, parent

    store, leaf = benchmark.pedantic(run, rounds=1, iterations=1)
    t0 = time.perf_counter()
    chain = store.get("img-000000").chain(leaf)
    elapsed = time.perf_counter() - t0
    report(
        "E4c", "processing-chain reconstruction (200 chained steps)",
        [("chain walk", "-", f"{elapsed * 1e3:.2f} ms for {len(chain)} records")],
    )
    assert len(chain) == 200
    assert [s.name for s in chain[:3]] == ["step-0", "step-1", "step-2"]


def test_e4_persistence_round_trip(benchmark, report, tmp_path):
    store = _populate(5_000)
    path = tmp_path / "repo.jsonl"

    def run():
        store.save(path)
        return MetadataStore.load(path)

    t0 = time.perf_counter()
    loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    report(
        "E4d", "save+load 5,000 records (JSONL)",
        [("round trip", "-", f"{elapsed:.2f} s, "
          f"{path.stat().st_size / 1e6:.1f} MB on disk")],
    )
    assert len(loaded) == 5_000
    assert loaded.stats() == store.stats()
