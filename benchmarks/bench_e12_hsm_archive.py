"""E12 — slide 14 outlook: managed data (iRODS), tape backend, "archival
quality" storage for the climate community.

Measured on the HSM subsystem: watermark migration keeping the pool under
its high-water mark during sustained ingest; recall-on-access latency
(mount + seek + stream) vs disk; batched vs interleaved recall (lazy
dismount ablation); write-through vs watermark mode (ablation).
"""

import pytest

from repro.simkit import Simulator
from repro.simkit.units import GB, HOUR, MB, TB, fmt_bytes, fmt_duration
from repro.storage import (
    DiskArray,
    HsmConfig,
    HsmSystem,
    StoragePool,
    TapeLibrary,
)


def _system(sim, mode="watermark", disk_capacity=200 * GB, lazy=True,
            scan_interval=600.0, daemon=True):
    array = DiskArray(sim, "disk", disk_capacity, bandwidth=3e9, op_overhead=0.002)
    pool = StoragePool(sim, [array])
    tape = TapeLibrary(sim, drives=4, drive_bw=120 * MB,
                       cartridge_capacity=1 * TB, mount_time=45.0,
                       dismount_time=25.0, lazy_dismount=lazy)
    # NOTE: the periodic daemon never terminates; only start it in scenarios
    # that run with an explicit horizon (sim.run(until=...)).
    hsm = HsmSystem(sim, pool, tape,
                    HsmConfig(high_water=0.80, low_water=0.60,
                              scan_interval=scan_interval, mode=mode),
                    start_daemon=daemon)
    return pool, tape, hsm


def test_e12_watermark_keeps_pool_bounded(benchmark, report):
    def run():
        sim = Simulator(seed=12)
        pool, tape, hsm = _system(sim)
        peak = {"fill": 0.0}

        def ingest():
            for i in range(400):  # 400 x 1 GB into a 200 GB pool
                yield hsm.store(f"f{i:04d}", 1 * GB)
                peak["fill"] = max(peak["fill"], pool.fill_fraction)
                yield sim.timeout(60.0)

        p = sim.process(ingest())
        sim.run(until=500 * 60.0)
        assert not p.failed, p.exception
        return pool, tape, hsm, peak["fill"]

    pool, tape, hsm, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12", "sustained ingest at 2x disk capacity (watermark HSM)",
        [
            ("data ingested", "2x the pool", "400 GB into 200 GB of disk"),
            ("peak pool fill", "<= ~high water (80%)", f"{peak:.0%}"),
            ("final pool fill", "<= low water after drains", f"{pool.fill_fraction:.0%}"),
            ("migrated to tape", "the cold majority",
             f"{int(hsm.migrations.value)} files, "
             f"{fmt_bytes(tape.bytes_archived.value)}"),
            ("tape cartridges", "-", str(tape.cartridge_count)),
        ],
    )
    assert peak <= 0.86  # one scan interval of slack over high water
    assert hsm.migrations.value > 0
    assert tape.bytes_archived.value > 150 * GB


def test_e12_recall_latency_vs_disk(benchmark, report):
    def run():
        sim = Simulator(seed=13)
        pool, tape, hsm = _system(sim, daemon=False)
        holder = {}

        def scenario():
            yield hsm.store("hot", 2 * GB)
            yield hsm.store("cold", 2 * GB)
            yield sim.timeout(10.0)
            yield sim.process(hsm._migrate_one(pool.lookup("cold")))
            t0 = sim.now
            yield hsm.access("hot")
            holder["disk"] = sim.now - t0
            t0 = sim.now
            yield hsm.access("cold")
            holder["tape"] = sim.now - t0

        p = sim.process(scenario())
        sim.run()
        assert not p.failed, p.exception
        return holder

    holder = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12b", "access latency: disk tier vs tape recall (2 GB file)",
        [
            ("disk-resident access", "sub-second-ish", fmt_duration(holder["disk"])),
            ("tape recall + stage + read", "mount+seek+stream",
             fmt_duration(holder["tape"])),
            ("asymmetry", ">10x", f"{holder['tape'] / holder['disk']:.0f}x"),
        ],
    )
    assert holder["tape"] > 10 * holder["disk"]


def test_e12_ablation_lazy_dismount_for_batched_recall(benchmark, report):
    def run(lazy):
        sim = Simulator(seed=14)
        pool, tape, hsm = _system(sim, lazy=lazy, daemon=False)
        holder = {}

        def scenario():
            # Archive 20 files (they land on few cartridges), then recall all.
            for i in range(20):
                yield hsm.store(f"f{i:02d}", 2 * GB)
                yield sim.timeout(1.0)
            for i in range(20):
                yield sim.process(hsm._migrate_one(pool.lookup(f"f{i:02d}")))
            t0 = sim.now
            for i in range(20):
                yield hsm.access(f"f{i:02d}")
            holder["recall_all"] = sim.now - t0
            holder["mounts"] = tape.mounts.value

        p = sim.process(scenario())
        sim.run()
        assert not p.failed, p.exception
        return holder

    lazy = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    eager = run(False)
    report(
        "E12c", "ablation: lazy vs eager cartridge dismount (20-file recall)",
        [
            ("batched recall (lazy)", "few mounts",
             f"{fmt_duration(lazy['recall_all'])}, {lazy['mounts']:.0f} mounts"),
            ("batched recall (eager)", "remounts every file",
             f"{fmt_duration(eager['recall_all'])}, {eager['mounts']:.0f} mounts"),
        ],
    )
    assert lazy["recall_all"] < eager["recall_all"]
    assert lazy["mounts"] < eager["mounts"]


def test_e12_ablation_write_through_vs_watermark(benchmark, report):
    """Write-through (the 'archival quality' mode for climate data) doubles
    ingest work but makes migration free and guarantees a tape copy."""

    def run(mode):
        sim = Simulator(seed=15)
        pool, tape, hsm = _system(sim, mode=mode, daemon=False)
        holder = {}

        def scenario():
            t0 = sim.now
            for i in range(30):
                yield hsm.store(f"f{i:02d}", 2 * GB)
            holder["ingest"] = sim.now - t0
            t0 = sim.now
            for i in range(20):
                yield sim.process(hsm._migrate_one(pool.lookup(f"f{i:02d}")))
            holder["migrate"] = sim.now - t0
            holder["tape_copies"] = sum(
                1 for i in range(30) if tape.contains(f"f{i:02d}")
            )

        p = sim.process(scenario())
        sim.run()
        assert not p.failed, p.exception
        return holder

    wt = benchmark.pedantic(lambda: run("write_through"), rounds=1, iterations=1)
    wm = run("watermark")
    report(
        "E12d", "ablation: write-through vs watermark HSM",
        [
            ("ingest time (write-through)", "slower (tape copy inline)",
             fmt_duration(wt["ingest"])),
            ("ingest time (watermark)", "faster", fmt_duration(wm["ingest"])),
            ("migration of 20 files (write-through)", "~free (drop replica)",
             fmt_duration(wt["migrate"])),
            ("migration of 20 files (watermark)", "pays the tape write",
             fmt_duration(wm["migrate"])),
            ("files with tape copy", "30 vs 20",
             f"{wt['tape_copies']} vs {wm['tape_copies']}"),
        ],
    )
    assert wt["ingest"] > wm["ingest"]
    assert wt["migrate"] < wm["migrate"]
    assert wt["tape_copies"] == 30
    assert wm["tape_copies"] == 20
