"""E1 — slide 5: high-throughput microscopy ingest.

Paper: "~200k images per day, 2 TB/day" (4 MB frames).  Note the paper's
internal inconsistency (200k x 4 MB = 0.8 TB); both parameterisations run.
Shape checks: the facility sustains the paper's rate with no frame drops
and sub-minute ingest latency; the DAQ buffer never grows unbounded.
"""

import pytest

from repro.core import Facility
from repro.simkit.units import HOUR, TB, fmt_bytes, fmt_duration
from repro.workloads import zebrafish_microscopes

_SIM_HOURS = 3.0


def _run(rate: str):
    facility = Facility(seed=11)
    pipeline = facility.ingest_pipeline(zebrafish_microscopes(instruments=4, rate=rate))
    rep = pipeline.run(duration=_SIM_HOURS * HOUR)
    return facility, rep


@pytest.mark.parametrize("rate,paper_volume", [("frames", "0.8 TB/day *"),
                                               ("volume", "2 TB/day")])
def test_e1_paper_rate_sustained(benchmark, report, rate, paper_volume):
    facility, rep = benchmark.pedantic(lambda: _run(rate), rounds=1, iterations=1)
    report(
        "E1", f"microscopy ingest ({rate} parameterisation, "
              f"{_SIM_HOURS:.0f} simulated hours)",
        [
            ("frames per day", "~200,000", f"{rep.frames_per_day:,.0f}"),
            ("volume per day", paper_volume, fmt_bytes(rep.bytes_per_day) + "/day"),
            ("frames dropped", "0 (lossless)", str(rep.frames_dropped)),
            ("ingest latency mean", "-", fmt_duration(rep.latency_mean)),
            ("ingest latency p95", "-", fmt_duration(rep.latency_p95)),
            ("DAQ backlog peak", "bounded", fmt_bytes(rep.backlog_peak_bytes)),
            ("metadata records", "= frames", f"{len(facility.metadata):,}"),
        ],
    )
    # Shape: paper rate sustained within 5%, losslessly, and every frame
    # became *visible* (registered with basic metadata).
    assert rep.frames_per_day == pytest.approx(200_000, rel=0.05)
    assert rep.frames_dropped == 0
    assert rep.frames_ingested == rep.frames_acquired
    assert len(facility.metadata) == rep.frames_ingested
    assert rep.latency_p95 < 60.0
    if rate == "volume":
        assert rep.bytes_per_day == pytest.approx(2 * TB, rel=0.06)


def test_e1_headroom_at_projected_2012_rate(benchmark, report):
    """The 2011 facility still keeps up at the 2012 projection (~3.4x volume,
    1 PB/yr) — the bottleneck is capacity (E2), not ingest bandwidth."""

    def run():
        facility = Facility(seed=12)
        configs = zebrafish_microscopes(instruments=8, rate="volume", scale=1.37)
        pipeline = facility.ingest_pipeline(configs, agents=8)
        return pipeline.run(duration=2 * HOUR)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E1b", "ingest headroom at the 2012 projection (1 PB/year)",
        [
            ("volume per day", "2.74 TB/day (1 PB/yr)",
             fmt_bytes(rep.bytes_per_day) + "/day"),
            ("frames dropped", "0", str(rep.frames_dropped)),
            ("latency p95", "-", fmt_duration(rep.latency_p95)),
        ],
    )
    assert rep.bytes_per_day == pytest.approx(1e15 / 365, rel=0.08)
    assert rep.frames_dropped == 0
