"""E7 — slide 11: "dedicated 60 nodes cluster, Hadoop environment + 110 TB
Hadoop filesystem, extreme scalability on commodity hardware".

Measured:

* map-phase scaling of one job across 15/30/45/60 nodes (near-linear);
* the locality machinery that makes it possible (delay scheduling vs
  greedy; rack-aware vs random placement — DESIGN.md ablations);
* speculative execution vs stragglers (ablation);
* re-replication keeping the FS healthy after a node loss.
"""

import pytest

from repro.simkit import Simulator
from repro.simkit.units import GB, TB, fmt_duration
from repro.hdfs import HdfsCluster
from repro.mapreduce import JobSpec, MapReduceSim

_JOB_BYTES = 60 * GB


def _run_cluster(nodes_per_rack, racks=4, scheduler="delay", placement="rack_aware",
                 speculation=True, straggler_prob=0.03, straggler_factor=5.0,
                 node_speed_cv=0.10, reduces=16, seed=17):
    sim = Simulator(seed=seed)
    cluster = HdfsCluster.build(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                                node_capacity=2 * TB, placement=placement)
    mr = MapReduceSim(sim, cluster, scheduler=scheduler, speculation=speculation,
                      straggler_prob=straggler_prob,
                      straggler_factor=straggler_factor,
                      node_speed_cv=node_speed_cv)
    holder = {}

    def scenario():
        # Load the input from the core switch (an off-cluster loader), so
        # block placement is spread rather than writer-pinned.
        yield cluster.write_file("/data/job-in", _JOB_BYTES, "core")
        holder["result"] = yield mr.submit(
            JobSpec("scale", "/data/job-in", map_cpu_per_byte=5e-8,
                    map_output_ratio=0.05, reduces=reduces)
        )

    p = sim.process(scenario())
    sim.run()
    assert not p.failed, p.exception
    return holder["result"]


def test_e7_scaling_to_60_nodes(benchmark, report):
    def run():
        # Map-phase scaling (reduces=0), no stragglers: the clean
        # "commodity scalability" claim.
        return {
            n * 4: _run_cluster(n, reduces=0, straggler_prob=0.0)
            for n in (4, 8, 11, 15)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base_nodes = min(results)
    base = results[base_nodes].duration
    rows = []
    for nodes, result in sorted(results.items()):
        speedup = base / result.duration
        ideal = nodes / base_nodes
        rows.append((f"{nodes} nodes",
                     f"ideal {ideal:.2f}x",
                     f"{fmt_duration(result.duration)} "
                     f"({speedup:.2f}x, locality {result.locality_fraction:.0%})"))
    report("E7", f"MapReduce scaling, {_JOB_BYTES / GB:.0f} GB job", rows)
    durations = [results[n].duration for n in sorted(results)]
    # Monotone speedup and at least ~60% parallel efficiency at 60 nodes.
    assert durations == sorted(durations, reverse=True)
    assert base / durations[-1] > 0.6 * (60 / base_nodes)


def test_e7_ablation_delay_vs_greedy_scheduling(benchmark, report):
    def run():
        delay = _run_cluster(15, scheduler="delay", straggler_prob=0.0)
        greedy = _run_cluster(15, scheduler="greedy", straggler_prob=0.0)
        return delay, greedy

    delay, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7b", "ablation: delay scheduling vs greedy",
        [
            ("node-local fraction (delay)", "high", f"{delay.locality_fraction:.0%}"),
            ("node-local fraction (greedy)", "lower", f"{greedy.locality_fraction:.0%}"),
            ("job time delay vs greedy", "-",
             f"{fmt_duration(delay.duration)} vs {fmt_duration(greedy.duration)}"),
        ],
    )
    assert delay.locality_fraction >= greedy.locality_fraction


def test_e7_ablation_rack_aware_vs_random_placement(benchmark, report):
    def run():
        rack = _run_cluster(15, placement="rack_aware", straggler_prob=0.0)
        rand = _run_cluster(15, placement="random", straggler_prob=0.0)
        return rack, rand

    rack, rand = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7c", "ablation: rack-aware vs random block placement",
        [
            ("job time (rack-aware)", "-", fmt_duration(rack.duration)),
            ("job time (random)", "similar or worse", fmt_duration(rand.duration)),
            ("locality rack/random", "-",
             f"{rack.locality_fraction:.0%} / {rand.locality_fraction:.0%}"),
        ],
    )
    # Random placement must not *beat* rack-aware by a meaningful margin;
    # rack-awareness buys fault-domain diversity at ~no performance cost.
    assert rack.duration <= rand.duration * 1.15


def test_e7_ablation_speculation_vs_stragglers(benchmark, report):
    def run():
        kwargs = dict(speculation=True, straggler_prob=0.08,
                      straggler_factor=20.0, node_speed_cv=0.0,
                      reduces=0, seed=23)
        on = _run_cluster(15, **kwargs)
        off = _run_cluster(15, **{**kwargs, "speculation": False})
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7d", "ablation: speculative execution under 8% x20 stragglers",
        [
            ("map phase (speculation on)", "shorter", fmt_duration(on.duration)),
            ("map phase (speculation off)", "straggler-bound", fmt_duration(off.duration)),
            ("speculative attempts/wins", "-",
             f"{on.speculative_launched}/{on.speculative_wins}"),
        ],
    )
    assert on.duration < off.duration


def test_e7_rereplication_after_node_loss(benchmark, report):
    def run():
        sim = Simulator(seed=31)
        cluster = HdfsCluster.build(sim, racks=4, nodes_per_rack=15,
                                    node_capacity=2 * TB)
        holder = {}

        def scenario():
            yield cluster.write_file("/data/set", 20 * GB, "r00h00")
            victim = cluster.namenode.file_blocks("/data/set")[0].replicas[0]
            lost = len([
                b for b in cluster.namenode.file_blocks("/data/set")
                if victim in b.replicas
            ])
            start = sim.now
            yield cluster.fail_datanode(victim)
            holder.update(lost=lost, recovery=sim.now - start)

        p = sim.process(scenario())
        sim.run()
        assert not p.failed, p.exception
        return holder, cluster

    holder, cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E7e", "datanode failure: re-replication",
        [
            ("replicas lost", "-", str(holder["lost"])),
            ("recovery time", "background, bounded",
             fmt_duration(holder["recovery"])),
            ("under-replicated after", "0", str(len(cluster.namenode.under_replicated))),
        ],
    )
    assert len(cluster.namenode.under_replicated) == 0


def test_e7_ablation_fifo_vs_fair_multi_job(benchmark, report):
    """Multi-tenancy ablation: a short interactive job submitted behind a
    long batch job — FIFO head-of-line blocking vs fair sharing (the
    scenario that motivated the Hadoop Fair Scheduler and delay
    scheduling)."""

    def run(policy):
        sim = Simulator(seed=41)
        cluster = HdfsCluster.build(sim, racks=2, nodes_per_rack=4,
                                    node_capacity=2 * TB)
        mr = MapReduceSim(sim, cluster, straggler_prob=0.0, node_speed_cv=0.0,
                          job_policy=policy)
        holder = {}

        def scenario():
            yield cluster.write_file("/long", 4 * GB, "core")
            yield cluster.write_file("/short", 0.25 * GB, "core")
            long_job = mr.submit(JobSpec("long", "/long", reduces=0,
                                         map_cpu_per_byte=5e-8))
            yield sim.timeout(10.0)
            short_job = mr.submit(JobSpec("short", "/short", reduces=0,
                                          map_cpu_per_byte=5e-8))
            holder["short"] = yield short_job
            holder["long"] = yield long_job

        p = sim.process(scenario())
        sim.run()
        assert not p.failed, p.exception
        return holder

    fifo = benchmark.pedantic(lambda: run("fifo"), rounds=1, iterations=1)
    fair = run("fair")
    report(
        "E7f", "ablation: FIFO vs fair sharing (short job behind batch job)",
        [
            ("short-job response (FIFO)", "head-of-line blocked",
             fmt_duration(fifo["short"].duration)),
            ("short-job response (fair)", "interleaved, much faster",
             fmt_duration(fair["short"].duration)),
            ("long-job time (FIFO/fair)", "fair costs the batch job little",
             f"{fmt_duration(fifo['long'].duration)} / "
             f"{fmt_duration(fair['long'].duration)}"),
        ],
    )
    assert fair["short"].duration < fifo["short"].duration
    assert fair["long"].duration < fifo["long"].duration * 1.5
