#!/usr/bin/env python3
"""Policy-managed archival storage for the climate community (slide 14).

The paper's outlook: onboard meteorology/climate research with "'archival'
quality" data management, using an iRODS-style rule system.  This example
runs that future: climate observation files are ingested and registered;
declarative rules guarantee a tape copy for everything, pin the station
calibration files to disk, migrate aged observations off disk, and flag
suspicious files for review — with every rule application audited.

Run:  python examples/climate_archival.py
"""

from repro.core import Facility
from repro.metadata import FieldSpec, Q, Schema
from repro.rules import (
    ArchiveAction,
    MigrateAction,
    PinAction,
    Rule,
    TagAction,
)
from repro.simkit.units import GB, MB, fmt_bytes, fmt_duration


def main() -> None:
    facility = Facility(seed=2026)
    sim = facility.sim
    store = facility.metadata
    store.register_project(
        "climate",
        Schema("climate-basic", [
            FieldSpec("station", "str", required=True),
            FieldSpec("kind", "str", choices=("observation", "calibration"),
                      required=True),
            FieldSpec("year", "int", required=True),
        ]),
    )

    # -- declare the community's data-management policy -----------------------
    engine = facility.rules
    engine.register(Rule(
        "climate-archival-quality", "on_register", Q.project("climate"),
        [ArchiveAction(), TagAction("tape-protected")],
    ))
    engine.register(Rule(
        "pin-calibrations", "on_register",
        Q.project("climate") & (Q.field("kind") == "calibration"),
        [PinAction(True), TagAction("pinned")],
    ))
    engine.register(Rule(
        "age-out-observations", "periodic",
        Q.project("climate") & (Q.field("kind") == "observation")
        & (Q.field("year") <= 2009),
        [MigrateAction(), TagAction("on-tape")],
    ))
    engine.register(Rule(
        "flag-suspect", "on_tag", Q.project("climate"),
        [TagAction("needs-review")], tag="suspect",
    ))

    # -- ingest a few years of station data --------------------------------------
    def ingest():
        for i in range(60):
            station = f"ST{i % 5:02d}"
            kind = "calibration" if i % 20 == 0 else "observation"
            year = 2008 + (i % 4)
            file_id = f"cl-{i:03d}"
            size = 50 * MB if kind == "observation" else 5 * MB
            yield facility.hsm.store(file_id, size)
            store.register_dataset(
                file_id, "climate", f"adal://lsdf/climate/{station}/{year}/{file_id}.nc",
                int(size), f"sum{i}", {"station": station, "kind": kind, "year": year},
                created=sim.now,
            )
            engine.on_register(file_id)  # rules fire at ingest
            yield sim.timeout(30.0)

    proc = sim.process(ingest())
    facility.run()
    assert not proc.failed, proc.exception
    print(f"ingested 60 climate files; tape copies: "
          f"{int(facility.hsm.archive_copies.value + facility.tape.bytes_archived.events)}")

    # -- the nightly policy sweep ages old observations off disk -------------------
    applications = engine.run_periodic()
    facility.run()
    aged = [a for a in applications if a.rule == "age-out-observations"]
    print(f"nightly sweep: {len(aged)} observations migrated to tape")

    # -- an operator flags a suspect file -------------------------------------------
    store.tag("cl-007", "suspect")
    engine.on_tag("cl-007", "suspect")
    print(f"suspect flow: cl-007 tags = {sorted(store.get('cl-007').tags)}")

    # -- verify the policy held --------------------------------------------------------
    protected = store.query(Q.project("climate") & Q.tag("tape-protected"))
    pinned = store.query(Q.tag("pinned"))
    on_tape = [r for r in store.datasets()
               if facility.pool.contains(r.dataset_id)
               and facility.pool.lookup(r.dataset_id).tier == "tape"]
    print(f"\npolicy outcome:")
    print(f"  tape-protected        {len(protected)}/60")
    print(f"  calibration pinned    {len(pinned)} (never migration victims)")
    print(f"  aged off disk         {len(on_tape)} files "
          f"({fmt_bytes(sum(r.size for r in on_tape))})")
    print(f"  tape cartridges       {facility.tape.cartridge_count}")
    print(f"  rule applications     {engine.stats()['applications']} "
          f"({engine.stats()['per_rule']})")
    print("\naudit trail (last 3):")
    for app in engine.log[-3:]:
        print(f"  [{fmt_duration(app.when):>8}] {app.rule} on {app.dataset_id}: "
              f"{'; '.join(app.outcomes)}")


if __name__ == "__main__":
    main()
