#!/usr/bin/env python3
"""Capacity planning for the LSDF roadmap (slides 5 and 14).

Reproduces the storage arithmetic behind "currently 2 PB", "6 PB in 2012",
and the community growth to "1+ PB/year in 2012, 6 PB/year in 2014": per
year, aggregate community ingest, cumulative disk and tape demand under the
HSM archiving policy, and whether the procurement schedule keeps up.  Also
shows what happens if the 2012 procurement slips — the planner flags the
shortfall year.

Run:  python examples/capacity_planning.py
"""

from repro.core import CapacityPlanner, LSDF_PROCUREMENT
from repro.simkit import units
from repro.workloads import COMMUNITIES

YEARS = range(2010, 2015)


def main() -> None:
    print("== communities (paper slides 5 & 14) ==")
    for key, community in COMMUNITIES.items():
        first = min(community.yearly_ingest) if community.yearly_ingest else "-"
        peak = max(community.yearly_ingest.values(), default=0.0)
        print(f"  {community.name:28s} onboard {first}  "
              f"peak {units.fmt_bytes(peak)}/yr  "
              f"archive {community.archive_fraction:.0%}")

    print("\n== capacity table, paper procurement schedule ==")
    planner = CapacityPlanner()
    for row in planner.table(YEARS):
        print(f"  {row.fmt()}")
    print(f"  first shortfall: {planner.first_shortfall(YEARS) or 'none'}")

    print("\n== what if the 6 PB (2012) procurement slips? ==")
    slipped = dict(LSDF_PROCUREMENT)
    slipped.pop(2012)
    slipped.pop(2013)
    late = CapacityPlanner(procurement=slipped)
    for row in late.table(YEARS):
        print(f"  {row.fmt()}")
    print(f"  first shortfall: {late.first_shortfall(YEARS)}")

    print("\n== procurement needed for 20% headroom ==")
    for year in YEARS:
        need = planner.required_capacity(year, headroom=0.2)
        have = planner.installed_disk(year)
        flag = "ok" if have >= need else "buy more"
        print(f"  {year}: need {units.fmt_bytes(need):>10}, "
              f"installed {units.fmt_bytes(have):>10}  [{flag}]")


if __name__ == "__main__":
    main()
