#!/usr/bin/env python3
"""KATRIN onboarding: archival detector data and a reprocessing campaign.

Slide 14 announces the KATRIN neutrino-mass experiment as a 2011 community.
Its profile is the opposite of microscopy: few, large run files; 100%
archival retention (write-through tape copies); and analysis passes that
re-read long ranges of historical runs — the workload where tape behaviour
(batched recalls, lazy dismount) decides usability.

Run:  python examples/katrin_archive.py
"""

from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.metadata import Q
from repro.simkit.units import GB, TB, fmt_bytes, fmt_duration
from repro.storage import HsmConfig
from repro.workloads import (
    KATRIN_PROJECT,
    KatrinConfig,
    KatrinDaq,
    katrin_basic_schema,
    reprocessing_campaign,
)

N_RUNS = 40


def main() -> None:
    # A small disk estate forces the archive tier to matter.
    facility = Facility(
        FacilityConfig(arrays=[ArraySpec("ddn", 15 * GB, 3e9),
                               ArraySpec("ibm", 15 * GB, 5e9)],
                       cluster_racks=2, nodes_per_rack=4),
        seed=314,
    )
    # KATRIN data is archival quality: write-through tape copies.
    facility.hsm.config = HsmConfig(high_water=0.80, low_water=0.50,
                                    scan_interval=3600.0, mode="write_through")
    facility.metadata.register_project(KATRIN_PROJECT, katrin_basic_schema())
    sim = facility.sim

    # -- 1. take runs; each is ingested (disk + tape copy) and registered ----
    daq = KatrinDaq(sim, KatrinConfig())

    def ingest_run(run):
        def flow():
            yield facility.net.transfer(facility.names.daq[1],
                                        facility.array_nodes["ibm"], run.size)
            yield facility.hsm.store(run.run_id, run.size)
            facility.metadata.register_dataset(
                run.run_id, KATRIN_PROJECT,
                f"adal://lsdf/katrin/{run.run_id}.dat",
                run.size, f"cs-{run.run_number}", run.basic_metadata(),
                created=sim.now,
            )

        return sim.process(flow())

    proc = daq.run(ingest_run, n_runs=N_RUNS)
    facility.run()
    assert not proc.failed, proc.exception
    took = sim.now
    print(f"took {N_RUNS} runs in {fmt_duration(took)} "
          f"({fmt_bytes(facility.hsm.pool.used + facility.tape.bytes_archived.value)} "
          f"acquired, every run tape-protected: "
          f"{int(facility.hsm.archive_copies.value)}/{N_RUNS})")

    # -- 2. disk pressure: migrate cold runs (free — copies already on tape) --
    migrated = sim.run(until=facility.hsm.migrate_now())
    on_tape = [r for r in facility.pool.files() if r.tier == "tape"]
    print(f"disk pressure: {migrated} runs dropped to tape-only "
          f"(pool now {facility.pool.fill_fraction:.0%} full)")

    # -- 3. an analysis pass re-reads a historical run range -------------------
    campaign = [rid for rid in reprocessing_campaign(0, 19)
                if facility.pool.contains(rid)]
    recalled_from_tape = sum(
        1 for rid in campaign if facility.hsm.tier_of(rid) == "tape"
    )

    def reprocess():
        t0 = sim.now
        for rid in campaign:
            yield facility.hsm.access(rid)
        return sim.now - t0

    p = sim.process(reprocess())
    facility.run()
    assert not p.failed, p.exception
    print(f"reprocessing campaign: {len(campaign)} runs "
          f"({recalled_from_tape} staged back from tape) in "
          f"{fmt_duration(p.value)}; tape mounts: {int(facility.tape.mounts.value)}")

    # -- 4. metadata answers the physics questions -------------------------------
    good = facility.metadata.query(
        Q.project(KATRIN_PROJECT) & (Q.field("quality") == "good")
    )
    calib = facility.metadata.query(
        Q.project(KATRIN_PROJECT) & (Q.field("quality") == "calibration")
    )
    total_events = sum(r.basic["events"] for r in good)
    print(f"metadata: {len(good)} good runs ({total_events:,} events), "
          f"{len(calib)} calibration runs")


if __name__ == "__main__":
    main()
