#!/usr/bin/env python3
"""ADAL in anger: one API over heterogeneous stores, with auth (slide 9).

Demonstrates the unified access layer exactly as the paper motivates it:
"not all components accessible through all methods — need a unified access
layer".  Four very different backends (an in-memory scratch space, a real
POSIX directory, an HSM-style tiered store, and the simulated HDFS) are
mounted under one namespace; a token-authenticated community user works
across them with a single client, inside ACL boundaries, with end-to-end
checksums.

Run:  python examples/unified_access.py
"""

import tempfile

from repro.adal import (
    AclAuthorizer,
    AdalClient,
    BackendRegistry,
    Credentials,
    HdfsBackend,
    MemoryBackend,
    PermissionDeniedError,
    PosixBackend,
    TieredBackend,
    TokenAuth,
)
from repro.hdfs import NameNode
from repro.simkit import RandomSource
from repro.simkit.units import KiB


def build_registry() -> BackendRegistry:
    registry = BackendRegistry()
    registry.register("scratch", MemoryBackend(capacity=64 * KiB))
    registry.register("posix", PosixBackend(tempfile.mkdtemp(prefix="lsdf-")))
    registry.register(
        "hsm", TieredBackend(MemoryBackend(), MemoryBackend(), hot_capacity=8 * KiB)
    )
    namenode = NameNode(block_size=4 * KiB, replication=3, rng=RandomSource(1))
    for rack in range(2):
        for host in range(4):
            namenode.add_datanode(f"r{rack}h{host}", f"rack{rack}", 10_000_000)
    registry.register("hdfs", HdfsBackend(namenode, writer_node="r0h0"))
    return registry


def main() -> None:
    registry = build_registry()
    print(f"mounted stores: {registry.stores}")

    # -- security context: token auth + per-community ACLs --------------------
    auth = TokenAuth()
    auth.register("ana", token="zebra-2011", groups=["zebrafish"])
    acl = AclAuthorizer()
    acl.grant("adal://scratch", "*", ["read", "write", "delete"])
    for store in ("posix", "hsm", "hdfs"):
        acl.grant(f"adal://{store}/zebrafish", "zebrafish", ["read", "write"])
    client = AdalClient(registry, auth, Credentials("ana", "zebra-2011"), acl)

    # -- same API everywhere ----------------------------------------------------
    frame = bytes(range(256)) * 32  # a pretend 8 KiB microscopy frame
    for store in ("scratch", "posix", "hsm", "hdfs"):
        url = f"adal://{store}/zebrafish/plate1/A01.tif" if store != "scratch" \
            else "adal://scratch/A01.tif"
        info = client.put(url, frame)
        verified = client.get(url, verify=True)
        assert verified == frame
        print(f"  {store:8s} put+verified {info.size} B  "
              f"checksum {info.checksum[:12]}…")

    # -- backend-specific behaviour under the same namespace ------------------------
    hdfs_backend = registry.resolve("hdfs")
    replicas = hdfs_backend.replicas_of("zebrafish/plate1/A01.tif")
    print(f"\nHDFS placement for the frame's {len(replicas)} blocks "
          f"(rack-aware, first block): {replicas[0]}")

    tiered = registry.resolve("hsm")
    client.put("adal://hsm/zebrafish/plate1/A02.tif", frame)  # evicts A01 to cold
    print(f"HSM tiering: A01 is now {tiered.tier_of('zebrafish/plate1/A01.tif')}; "
          f"reading it back...")
    client.get("adal://hsm/zebrafish/plate1/A01.tif")
    print(f"  -> recalled to {tiered.tier_of('zebrafish/plate1/A01.tif')} "
          f"(recalls={tiered.recalls})")

    # -- ACLs hold the community boundary ----------------------------------------------
    try:
        client.put("adal://posix/katrin/run1.dat", b"not yours")
    except PermissionDeniedError as exc:
        print(f"\nACL enforced: {exc}")

    # -- copy across stores with one call -------------------------------------------------
    client.copy("adal://posix/zebrafish/plate1/A01.tif",
                "adal://scratch/backup-A01.tif")
    print("cross-store copy done; audit trail:")
    for who, op, url in client.auth.audit_log[-3:]:
        print(f"  {who} {op:6s} {url}")


if __name__ == "__main__":
    main()
