#!/usr/bin/env python3
"""An ANKA beamtime shift: bursty tomography ingest + online reconstruction.

Slide 14 names the ANKA synchrotron as an incoming community.  Its pattern
stresses the facility differently from the 24x7 microscopes: an 8-hour
shift produces ~10 GB scans back-to-back; each scan should be staged onto
the analysis cluster and *reconstructed while the shift continues*, so the
scientists see volumes before their beamtime ends.  Reconstruction jobs
share the cluster fairly with whatever batch work is running.

Run:  python examples/anka_beamtime.py
"""

from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.simkit.units import GB, HOUR, TB, fmt_bytes, fmt_duration
from repro.workloads import (
    ANKA_PROJECT,
    AnkaBeamline,
    AnkaConfig,
    anka_basic_schema,
    tomo_reconstruction_job,
)


def main() -> None:
    facility = Facility(
        FacilityConfig(arrays=[ArraySpec("ddn", 50 * TB, 3e9),
                               ArraySpec("ibm", 100 * TB, 5e9)],
                       mr_scheduler="delay"),
        seed=777,
    )
    facility.metadata.register_project(ANKA_PROJECT, anka_basic_schema())
    sim = facility.sim
    results = []

    def reconstruct(scan):
        """Stage the scan into HDFS and run FBP; record provenance."""
        def flow():
            # Detector -> storage over the backbone, register metadata.
            yield facility.net.transfer(facility.names.daq[2],
                                        facility.array_nodes["ddn"], scan.size)
            yield facility.pool.write(scan.scan_id, scan.size)
            facility.metadata.register_dataset(
                scan.scan_id, ANKA_PROJECT,
                f"adal://lsdf/anka/{scan.sample}/{scan.scan_id}.h5",
                scan.size, f"cs-{scan.scan_id}", scan.basic_metadata(),
                created=sim.now,
            )
            # Storage -> HDFS, then the reconstruction job.
            yield facility.load_into_hdfs(f"/anka/{scan.scan_id}", scan.size,
                                          array_name="ddn")
            job = yield facility.mapreduce.submit(
                tomo_reconstruction_job(f"/anka/{scan.scan_id}",
                                        name=f"recon-{scan.scan_id}")
            )
            results.append((scan, job))
            facility.metadata.add_processing(
                scan.scan_id, "tomo-reconstruction",
                {"algorithm": "FBP"},
                {"volume_bytes": int(job.bytes_output),
                 "job_seconds": job.duration},
                job.submitted, job.finished,
            )
            facility.metadata.tag(scan.scan_id, "reconstructed")

        # Fire-and-forget: reconstruction overlaps further acquisition.
        sim.process(flow())
        return None

    beamline = AnkaBeamline(sim, AnkaConfig())
    proc = beamline.run(reconstruct, shifts=1)
    facility.run()
    assert not proc.failed, proc.exception

    print(f"shift complete: {proc.value} scans acquired "
          f"({fmt_bytes(facility.pool.used)} ingested)")
    turnarounds = []
    for scan, job in sorted(results, key=lambda pair: pair[0].acquired):
        turnaround = job.finished - scan.acquired
        turnarounds.append(turnaround)
        print(f"  {scan.scan_id} ({scan.sample}, {scan.energy_kev:.0f} keV, "
              f"{fmt_bytes(scan.size)}): reconstructed "
              f"{fmt_duration(turnaround)} after acquisition "
              f"(job {fmt_duration(job.duration)}, "
              f"{job.locality_fraction:.0%} node-local)")
    if turnarounds:
        print(f"\nmedian acquisition->volume turnaround: "
              f"{fmt_duration(sorted(turnarounds)[len(turnarounds) // 2])} "
              f"(within the shift: "
              f"{sum(1 for t, (s, _j) in zip(turnarounds, results) if s.acquired + t <= 8 * HOUR)}"
              f"/{len(turnarounds)})")
    reconstructed = facility.metadata.tagged("reconstructed")
    print(f"metadata: {len(reconstructed)} scans tagged 'reconstructed', "
          f"each with a provenance record")


if __name__ == "__main__":
    main()
