#!/usr/bin/env python3
"""DNA sequencing with Hadoop tools (slide 13) — for real and at scale.

Part 1 runs a *real* k-mer counting MapReduce (the first stage of de-novo
assembly) over synthetic shotgun reads with the in-process engine — actual
strings through the full map/combine/partition/sort/reduce data path.

Part 2 runs the same job shape at facility scale on the simulated 60-node
Hadoop cluster and reports the schedule (duration, locality, shuffle).

Run:  python examples/dna_sequencing.py
"""

from collections import Counter

from repro.core import Facility
from repro.mapreduce import run_local
from repro.simkit import RandomSource
from repro.simkit.units import GB, fmt_bytes, fmt_duration
from repro.workloads import (
    dna_cluster_job,
    generate_genome,
    generate_reads,
    kmer_count_job,
    reads_to_splits,
)


def real_kmer_pipeline() -> None:
    """Laptop-scale, genuinely executed."""
    print("== part 1: real k-mer counting (in-process MapReduce) ==")
    rng = RandomSource(2024)
    genome = generate_genome(20_000, rng)
    reads = generate_reads(genome, n_reads=8_000, read_length=100,
                           error_rate=0.01, rng=rng)
    k = 21
    result = run_local(kmer_count_job(k), reads_to_splits(reads, 500), reducers=8)

    counts = Counter(dict(result.output))
    coverage = len(reads) * 100 / len(genome)
    solid = sum(1 for c in counts.values() if c >= 3)
    print(f"  reads: {len(reads)} x 100 bp (~{coverage:.0f}x coverage), k={k}")
    print(f"  distinct k-mers: {len(counts):,} "
          f"(solid, >=3x: {solid:,} — error k-mers are low-multiplicity)")
    print(f"  map records in/out: {result.map_input_records:,} / "
          f"{result.map_output_records:,}; "
          f"shuffled after combine: {result.shuffle_records:,}")
    top = counts.most_common(1)[0]
    print(f"  most frequent k-mer: {top[0]} x{top[1]}")

    # The "reconstruction" half of the slide: assemble contigs from the
    # thresholded spectrum (de Bruijn graph, Contrail-style).
    from repro.workloads import assemble

    # Threshold well above the error-recurrence level (~coverage/5): we have
    # no tip-clipping/bubble-popping, so surviving error k-mers break paths.
    result = assemble(counts, min_multiplicity=8)
    identity = result.longest / len(genome)
    print(f"  reconstruction: {len(result.contigs)} contigs, "
          f"N50={result.n50():,} bp, longest {result.longest:,} bp "
          f"({identity:.1%} of the genome), "
          f"{result.dropped_kmers:,} error k-mers discarded")


def cluster_scale_run() -> None:
    """Facility-scale, simulated on the 60-node cluster."""
    print("\n== part 2: the same job at facility scale (simulated cluster) ==")
    facility = Facility(seed=13)
    dataset_bytes = 200 * GB  # a sequencing run's worth of reads

    def scenario():
        yield facility.load_into_hdfs("/data/run-042/reads", dataset_bytes)
        result = yield facility.mapreduce.submit(
            dna_cluster_job("/data/run-042/reads", reduces=32)
        )
        return result

    proc = facility.sim.process(scenario())
    facility.run()
    result = proc.value
    print(f"  input: {fmt_bytes(dataset_bytes)} of reads in HDFS "
          f"({result.maps} blocks -> {result.maps} map tasks)")
    print(f"  job time: {fmt_duration(result.duration)} "
          f"(map phase {fmt_duration(result.map_phase_end - result.submitted)})")
    print(f"  node-local maps: {result.locality_fraction:.0%}; "
          f"shuffled {fmt_bytes(result.bytes_shuffled)} "
          f"(k-mer expansion before combine)")
    print(f"  speculative attempts: {result.speculative_launched} "
          f"({result.speculative_wins} won)")


def main() -> None:
    real_kmer_pipeline()
    cluster_scale_run()


if __name__ == "__main__":
    main()
