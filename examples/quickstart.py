#!/usr/bin/env python3
"""Quickstart: stand up the LSDF and touch every subsystem once.

Builds the canonical 2011 facility, ingests ten minutes of zebrafish
microscopy, registers the data in the metadata repository, stages a dataset
into the simulated HDFS, runs a MapReduce job on it, deploys a cloud VM,
and prints a facility report.

Run:  python examples/quickstart.py
"""

from repro.core import Facility
from repro.cloud import VMTemplate
from repro.mapreduce import JobSpec
from repro.metadata import Q
from repro.simkit.units import GB, MINUTE, fmt_bytes, fmt_duration
from repro.workloads import zebrafish_microscopes


def main() -> None:
    facility = Facility(seed=42)
    print("== The Large Scale Data Facility (simulated, 2011 configuration) ==")
    print(f"storage : {fmt_bytes(facility.pool.capacity)} in "
          f"{len(facility.arrays)} systems ({', '.join(a.name for a in facility.arrays)})")
    print(f"cluster : {len(facility.names.cluster)} nodes, "
          f"{fmt_bytes(facility.hdfs.namenode.total_capacity)} raw HDFS")

    # -- 1. ingest: high-throughput microscopy -> storage + metadata ----------
    pipeline = facility.ingest_pipeline(zebrafish_microscopes(instruments=4))
    report = pipeline.run(duration=10 * MINUTE)
    print("\n-- ingest (10 simulated minutes of zebrafish screening) --")
    for label, value in report.rows():
        print(f"  {label:22s} {value}")

    # -- 2. metadata: find data by acquisition parameters ----------------------
    hits = facility.metadata.query(
        Q.project("zebrafish") & (Q.field("wavelength") >= 480)
    )
    print(f"\n-- metadata query: wavelength >= 480 nm -> {len(hits)} frames --")

    # -- 3. analysis: stage into HDFS and MapReduce over it -------------------------
    def analysis():
        yield facility.load_into_hdfs("/data/screen-day1", 5 * GB)
        result = yield facility.mapreduce.submit(
            JobSpec("screen-analysis", "/data/screen-day1",
                    map_cpu_per_byte=2e-8, map_output_ratio=0.05, reduces=8)
        )
        return result

    proc = facility.sim.process(analysis())
    facility.run()
    result = proc.value
    print("\n-- MapReduce on the 60-node cluster --")
    print(f"  job duration          {fmt_duration(result.duration)}")
    print(f"  map tasks             {result.maps} "
          f"({result.locality_fraction:.0%} node-local)")
    print(f"  shuffled              {fmt_bytes(result.bytes_shuffled)}")

    # -- 4. cloud: a user's customised processing VM ---------------------------------
    vm_proc = facility.cloud.deploy(
        VMTemplate("user-vm", cpus=4, mem=8 * GB, image_name="sl5-custom",
                   image_size=4 * GB)
    )
    facility.run()
    vm = vm_proc.value
    print("\n-- OpenNebula-style cloud --")
    print(f"  VM deployed on {vm.host} in {fmt_duration(vm.deploy_latency)}")

    # -- 5. the facility snapshot ----------------------------------------------------------
    stats = facility.stats()
    print("\n-- facility snapshot --")
    print(f"  pool used             {fmt_bytes(stats['pool_used'])} "
          f"({stats['pool_fill']:.2%})")
    print(f"  datasets registered   {stats['metadata']['datasets']}")
    print(f"  network delivered     {fmt_bytes(stats['net_bytes'])}")


if __name__ == "__main__":
    main()
