#!/usr/bin/env python3
"""A day in the life of the facility: failures, archive pressure, cloud.

An operations-flavoured scenario exercising the resilience machinery the
paper's infrastructure slide implies: a router failure mid-ingest (the
redundant backbone reroutes), a datanode loss during an analysis campaign
(HDFS re-replicates), the HSM responding to a filling pool, and a burst of
user VMs on the cloud.

Run:  python examples/facility_operations.py
"""

from repro.cloud import VMTemplate
from repro.core import Facility, FacilityConfig
from repro.core.config import ArraySpec
from repro.mapreduce import JobSpec
from repro.simkit.units import GB, HOUR, MINUTE, TB, fmt_bytes, fmt_duration
from repro.workloads import zebrafish_microscopes


def main() -> None:
    # A deliberately small estate so archive pressure appears within the run.
    config = FacilityConfig(
        arrays=[ArraySpec("ddn", 25 * GB, 3e9), ArraySpec("ibm", 50 * GB, 5e9)],
        cluster_racks=4,
        nodes_per_rack=15,
        hsm_high_water=0.70,
        hsm_low_water=0.50,
    )
    facility = Facility(config, seed=99, hsm_daemon=True)
    sim = facility.sim

    # -- ingest runs all along -------------------------------------------------
    pipeline = facility.ingest_pipeline(zebrafish_microscopes(instruments=4))
    for scope in pipeline.microscopes:
        scope.run(pipeline.buffer, duration=2 * HOUR)
    for agent in pipeline.agents:
        agent.start()

    # -- scripted incidents ------------------------------------------------------
    log: list[str] = []

    def note(msg: str) -> None:
        log.append(f"[{fmt_duration(sim.now):>9}] {msg}")

    def incidents():
        yield sim.timeout(20 * MINUTE)
        note("router-1 FAILS — backbone fails over to router-2")
        facility.net.fail_node("router-1")

        yield sim.timeout(20 * MINUTE)
        note("router-1 repaired")
        facility.net.repair_node("router-1")

        # An analysis campaign starts on the cluster.
        yield facility.load_into_hdfs("/data/campaign", 20 * GB)
        note("20 GB campaign dataset staged into HDFS")
        job = facility.mapreduce.submit(
            JobSpec("campaign", "/data/campaign", map_cpu_per_byte=5e-8, reduces=8)
        )

        yield sim.timeout(2 * MINUTE)
        victim = facility.hdfs.namenode.file_blocks("/data/campaign")[0].replicas[0]
        note(f"datanode {victim} DIES mid-job — re-replication starts")
        rerep = facility.hdfs.fail_datanode(victim)

        result = yield job
        note(f"campaign finished in {fmt_duration(result.duration)} "
             f"({result.locality_fraction:.0%} node-local)")
        copies = yield rerep
        note(f"re-replication restored {copies} blocks")

        # Users bring their own VMs while all this is going on.
        template = VMTemplate("user", 4, 8 * GB, "custom-env", 3 * GB)
        vms = [facility.cloud.deploy(template) for _ in range(6)]
        results = yield sim.all_of(vms)
        latencies = sorted(vm.deploy_latency for vm in results.values())
        note(f"6 user VMs running (deploy {fmt_duration(latencies[0])}"
             f"..{fmt_duration(latencies[-1])})")

    sim.process(incidents())
    sim.run(until=2 * HOUR + 30 * MINUTE)
    for agent in pipeline.agents:
        agent.stop()

    report = pipeline.report(2 * HOUR)
    print("== incident log ==")
    for line in log:
        print(" ", line)

    print("\n== after 2.5 simulated hours ==")
    print(f"  frames ingested       {report.frames_ingested} "
          f"(p95 latency {fmt_duration(report.latency_p95)}, "
          f"{report.frames_dropped} dropped)")
    print(f"  pool fill             {facility.pool.fill_fraction:.1%} "
          f"(HSM migrated {int(facility.hsm.migrations.value)} files to tape, "
          f"{facility.tape.cartridge_count} cartridges)")
    hdfs_stats = facility.hdfs.stats()
    print(f"  HDFS                  {hdfs_stats['files']} files, "
          f"under-replicated={hdfs_stats['under_replicated']}")
    print(f"  network delivered     {fmt_bytes(facility.net.bytes_delivered.value)} "
          f"({facility.net.failed_flows} flows lost to failures)")


if __name__ == "__main__":
    main()
