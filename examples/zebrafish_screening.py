#!/usr/bin/env python3
"""The zebrafish screening workflow, end to end (slides 5, 8, 12).

The production loop the paper describes for the Institute of Toxicology and
Genetics: high-throughput microscopes stream 4 MB embryo images into the
facility; each frame is registered with its acquisition parameters as basic
metadata; a biologist tags frames of interest in the DataBrowser, which
triggers the segmentation/counting workflow; results land back in the
metadata repository as chained processing records.

Run:  python examples/zebrafish_screening.py
"""

from repro.core import Facility
from repro.databrowser import TriggerRule
from repro.metadata import Q
from repro.simkit.units import MINUTE, fmt_bytes
from repro.workflow import FunctionActor, WorkflowGraph
from repro.workloads import zebrafish_microscopes


def build_analysis_workflow() -> WorkflowGraph:
    """Segment -> count-cells -> classify, the standard screen analysis."""
    g = WorkflowGraph("zf-analysis")
    g.add(FunctionActor(
        "segment",
        lambda data_url, threshold: {"mask_url": data_url + ".mask"},
        inputs=("data_url",), outputs=("mask_url",),
        params={"threshold": 0.35},
    ))
    g.add(FunctionActor(
        "count",
        # A stand-in for the real cell counter: deterministic per-URL count.
        lambda mask_url: {"cells": 20 + hash(mask_url) % 40},
        inputs=("mask_url",), outputs=("cells",),
    ))
    g.add(FunctionActor(
        "classify",
        lambda cells: {"phenotype": "abnormal" if cells < 30 else "normal"},
        inputs=("cells",), outputs=("phenotype",),
    ))
    g.connect("segment", "mask_url", "count", "mask_url")
    g.connect("count", "cells", "classify", "cells")
    return g


def main() -> None:
    facility = Facility(seed=7)

    # -- acquire 15 minutes of screening data --------------------------------
    pipeline = facility.ingest_pipeline(zebrafish_microscopes(instruments=4))
    report = pipeline.run(duration=15 * MINUTE)
    print(f"acquired {report.frames_ingested} frames "
          f"({fmt_bytes(report.bytes_ingested)}) -> all registered")

    # -- register the tag-triggered analysis ------------------------------------
    graph = build_analysis_workflow()
    facility.triggers.register(TriggerRule(
        tag="analyze",
        graph=graph,
        inputs_fn=lambda record: {("segment", "data_url"): record.url},
        done_tag="analyzed",
        project="zebrafish",
    ))

    # -- a biologist finds one plate's images and tags them ----------------------
    browser = facility.browser
    cohort = browser.find(Q.project("zebrafish") & (Q.field("plate") == 0)
                          & (Q.field("channel") == 0))
    print(f"plate 0, channel 0: {len(cohort)} frames; tagging for analysis...")
    for record in cohort[:50]:
        browser.tag(record.dataset_id, "analyze")

    # -- inspect the outcome -----------------------------------------------------------
    analyzed = browser.tagged("analyzed")
    abnormal = [
        r for r in analyzed
        if r.latest_result("zf-analysis/classify").results["phenotype"] == "abnormal"
    ]
    print(f"workflows executed: {facility.triggers.stats()['executions']} "
          f"({facility.triggers.stats()['succeeded']} succeeded)")
    print(f"analyzed: {len(analyzed)} frames, {len(abnormal)} abnormal phenotypes")

    sample = analyzed[0]
    print(f"\nprocessing history of {sample.dataset_id}:")
    for line in browser.history(sample.dataset_id):
        print(f"  {line}")
    chain = sample.chain(sample.processing[-1].step_id)
    print("chain:", " -> ".join(step.name.split("/")[1] for step in chain))


if __name__ == "__main__":
    main()
